//! Zygote-style FaaS worker pre-warming (paper §5.1, Figure 6): a warm
//! coordinator forks a fresh worker per request; throughput is bounded by
//! fork latency, which is where μFork shines.
//!
//! ```text
//! cargo run --release --example faas_zygote
//! ```

use ufork_repro::abi::{CopyStrategy, ImageSpec, IsolationLevel};
use ufork_repro::baselines::{mono, BaselineConfig};
use ufork_repro::exec::{Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::faas::{FaasConfig, Zygote};

const WORKER_CORES: u32 = 3;
const WINDOW_NS: f64 = 0.5e9; // half a simulated second

fn machine_config() -> MachineConfig {
    MachineConfig {
        cores: WORKER_CORES as usize + 1,
        // Coordinator on core 0; workers fan out to the rest (paper:
        // "1 is used for the coordinating thread").
        child_affinity: Some((1..=WORKER_CORES as usize).collect()),
        ..MachineConfig::default()
    }
}

fn run<O: MemOs>(label: &str, os: O) -> f64 {
    let mut machine = Machine::new(os, machine_config());
    let mut cfg = FaasConfig::for_cores(WORKER_CORES);
    cfg.window_ns = WINDOW_NS;
    let img = ImageSpec::with_heap("micropython", 2 << 20);
    let pid = machine
        .spawn(&img, Box::new(Zygote::new(cfg)))
        .expect("spawn");
    machine.set_affinity(pid, vec![0]);
    machine.run();
    assert_eq!(machine.exit_code(pid), Some(0));
    let z = machine.program::<Zygote>(pid).expect("zygote");
    let rate = z.completed as f64 / (WINDOW_NS / 1e9);
    println!(
        "{label:<10} {} functions in {:.1} s simulated -> {:.0} functions/s \
         (mean fork latency {:.1} µs)",
        z.completed,
        WINDOW_NS / 1e9,
        rate,
        machine.fork_log().iter().map(|f| f.latency_ns).sum::<f64>()
            / machine.fork_log().len() as f64
            / 1e3,
    );
    rate
}

fn main() {
    println!("FaaS Zygote warm-fork throughput, {WORKER_CORES} worker cores:\n");
    let u = run(
        "μFork",
        UforkOs::new(UforkConfig {
            strategy: CopyStrategy::CoPA,
            isolation: IsolationLevel::Fault,
            phys_mib: 512,
            ..UforkConfig::default()
        }),
    );
    let m = run(
        "CheriBSD",
        mono(BaselineConfig {
            phys_mib: 512,
            ..BaselineConfig::default()
        }),
    );
    println!(
        "\nμFork handles {:.0}% more requests (paper: 24% more).",
        (u / m - 1.0) * 100.0
    );
}
