//! Isolation demo: every attack the μFork threat model (paper §3.3,
//! §4.3–4.4) defends against, attempted and refused.
//!
//! ```text
//! cargo run --example isolation_demo
//! ```

use ufork_repro::abi::{Errno, ImageSpec, Pid};
use ufork_repro::cheri::{Capability, OType, Perms};
use ufork_repro::exec::{Ctx, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};

fn main() {
    let mut os = UforkOs::new(UforkConfig::default());
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
    println!("booted μFork; parent Pid(1) forked child Pid(2)\n");

    // Attack 1: the child uses a stale capability into the parent region
    // (a pointer smuggled around the relocation machinery).
    let parent_root = os.reg(Pid(1), 0).unwrap();
    let r = os.load(&mut ctx, Pid(2), &parent_root, &mut [0u8; 8]);
    println!("1. child dereferences parent capability      -> {r:?}");
    assert_eq!(r.unwrap_err(), Errno::Fault);

    // Attack 2: forging a capability to kernel memory. (In Rust we can
    // construct the value, as an attacker with an arbitrary-write gadget
    // might try; the kernel's confinement check is what stops it — on
    // hardware the tag would never be set in the first place.)
    let forged = Capability::new_root(0xffff_0000_0000, 4096, Perms::kernel());
    let r = os.store(&mut ctx, Pid(2), &forged, b"pwn");
    println!("2. child dereferences forged kernel pointer  -> {r:?}");
    assert_eq!(r.unwrap_err(), Errno::Fault);

    // Attack 3: widening a legitimate capability (monotonicity).
    let child_root = os.reg(Pid(2), 0).unwrap();
    let widened = child_root.with_bounds(child_root.base() - 4096, child_root.len() + 8192);
    println!("3. child widens its own root capability      -> {widened:?}");
    assert!(widened.is_err());

    // Attack 4: jumping into the kernel anywhere but the syscall gate.
    let gate = os.gate().clone();
    let entry = gate.user_entry();
    println!(
        "4a. legitimate sealed syscall entry           -> {:?}",
        gate.enter(&entry)
    );
    let retarget = entry.with_addr(0xffff_0000_2000);
    println!("4b. retargeting the sealed entry capability   -> {retarget:?}");
    assert!(retarget.is_err());

    // Attack 5: privileged instructions — user capabilities never carry
    // the SYSTEM permission.
    println!(
        "5. child root has SYSTEM permission?          -> {}",
        child_root.perms().contains(Perms::SYSTEM)
    );
    assert!(!child_root.perms().contains(Perms::SYSTEM));

    // Attack 6: leaking a capability through shared memory — shm mappings
    // carry no capability-store permission.
    let shm = os.shm_open(&mut ctx, Pid(1), "leak", 4096).unwrap();
    let secret = os.malloc(&mut ctx, Pid(1), 64).unwrap();
    let r = os.store_cap(&mut ctx, Pid(1), &shm, &secret);
    println!("6. storing a capability into shared memory   -> {r:?}");
    assert_eq!(r.unwrap_err(), Errno::Fault);

    // Attack 7: sealing mischief — unsealing with an authority whose
    // otype range does not cover the gate's otype. (An authority that
    // *does* cover it can only be minted by `new_root`, which is the
    // kernel's boot-time privilege: on hardware no μprocess can ever hold
    // one, as capabilities are unforgeable.)
    let wrong_range =
        Capability::new_root(u64::from(OType::SYSCALL_ENTRY.raw()) + 1, 64, Perms::UNSEAL);
    let r = entry.unseal(&wrong_range);
    println!("7. unsealing the gate with wrong authority    -> {r:?}");
    assert!(r.is_err());

    println!(
        "\n{} isolation violations recorded by the kernel; audits: parent {} / child {}",
        ctx.counters.isolation_violations,
        os.audit_isolation(Pid(1)),
        os.audit_isolation(Pid(2)),
    );
    println!("All attacks refused.");
}
