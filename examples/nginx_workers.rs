//! Nginx multi-worker deployment (paper §5.1, Figure 7): a master forks
//! workers that serve a wrk-style closed-loop request stream; extra
//! workers on one core raise throughput by filling I/O wait gaps.
//!
//! ```text
//! cargo run --release --example nginx_workers
//! ```

use ufork_repro::abi::{CopyStrategy, Fd, ImageSpec, IsolationLevel};
use ufork_repro::exec::{ConnTemplate, Machine, MachineConfig};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::nginx::{Nginx, NginxConfig};

const WINDOW_NS: f64 = 0.2e9;

fn run(workers: u32) -> f64 {
    let os = UforkOs::new(UforkConfig {
        strategy: CopyStrategy::CoPA,
        isolation: IsolationLevel::Fault,
        phys_mib: 256,
        ..UforkConfig::default()
    });
    let mut machine = Machine::new(
        os,
        MachineConfig {
            cores: 1, // the paper's single-core μFork configuration
            time_limit: Some(WINDOW_NS),
            ..MachineConfig::default()
        },
    );
    let img = ImageSpec::with_heap("nginx", 4 << 20);
    let cfg = NginxConfig {
        workers,
        ..NginxConfig::default()
    };
    let pid = machine
        .spawn(&img, Box::new(Nginx::new(cfg, Fd(3))))
        .expect("spawn nginx");
    machine
        .install_listener(
            pid,
            ConnTemplate {
                requests_per_conn: 64,
                req_bytes: 128,
                think_ns: 4_500.0,
            },
            u64::MAX / 2,
        )
        .expect("listener");
    machine.run();
    machine.vfs().total_served as f64 / (WINDOW_NS / 1e9)
}

fn main() {
    println!("Nginx on μFork, one core, scaling workers:\n");
    let mut base = 0.0;
    for workers in 1..=3 {
        let rps = run(workers);
        if workers == 1 {
            base = rps;
        }
        println!(
            "  {workers} worker(s): {rps:>9.0} req/s  ({:+.1}% vs 1 worker)",
            (rps / base - 1.0) * 100.0
        );
    }
    println!(
        "\nExtra workers help on a single core because a worker blocked on\n\
         its connection yields to a runnable sibling (paper: +15.6%)."
    );
}
