//! Redis background snapshot (paper §5.1, U2+U4): fork, serialize in the
//! child while the parent keeps writing, and verify the dump is an exact
//! point-in-time snapshot.
//!
//! Runs the same workload under all three copy strategies and prints what
//! each one actually copied.
//!
//! ```text
//! cargo run --example redis_snapshot
//! ```

use ufork_repro::abi::{CopyStrategy, ImageSpec};
use ufork_repro::exec::{Machine, MachineConfig};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::redis::{rdb_parse, RedisConfig, RedisServer};

fn main() {
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        let mut rcfg = RedisConfig::sized(100, 8 * 1024); // 100 × 8 KB
        rcfg.parent_writes_during_save = 25; // parent dirties 25 keys mid-save

        let os = UforkOs::new(UforkConfig {
            strategy,
            phys_mib: 512,
            ..UforkConfig::default()
        });
        let mut machine = Machine::new(os, MachineConfig::default());
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let pid = machine
            .spawn(&img, Box::new(RedisServer::new(rcfg)))
            .expect("spawn redis");
        machine.run();
        assert_eq!(machine.exit_code(pid), Some(0));

        let server = machine.program::<RedisServer>(pid).expect("state");
        let dump = machine.vfs().file_contents("dump.rdb").expect("dump.rdb");
        let (entries, checksum_ok) = rdb_parse(dump).expect("valid dump");
        assert!(checksum_ok);
        assert_eq!(entries.len(), 100);
        // The snapshot must show at-fork values even though the parent
        // overwrote 25 of them with 0xEE during the save.
        for (k, v) in &entries {
            let i: u64 = String::from_utf8_lossy(&k[4..]).parse().expect("key id");
            let b = (i as u8).wrapping_mul(31).wrapping_add(7);
            assert!(
                v.iter()
                    .enumerate()
                    .all(|(j, x)| *x == b.wrapping_add((j % 251) as u8)),
                "entry {i} must hold its at-fork payload"
            );
        }

        let c = machine.counters();
        println!("strategy {strategy:?}:");
        println!(
            "  BGSAVE took {:.2} ms (dump: {} entries, {} bytes, checksum ok)",
            (server.bgsave_finished - server.bgsave_started) / 1e6,
            entries.len(),
            dump.len()
        );
        println!(
            "  pages copied: {} ({} eagerly at fork) | faults: {} CoW, {} CoA, {} cap-load",
            c.pages_copied, c.pages_copied_eager, c.cow_faults, c.coa_faults, c.cap_load_faults
        );
        println!(
            "  capabilities relocated: {} | granules scanned: {}\n",
            c.caps_relocated, c.granules_scanned
        );
    }
    println!("All three strategies produced byte-identical point-in-time snapshots.");
}
