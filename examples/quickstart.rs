//! Quickstart: boot a μFork machine, run a program that forks, and watch
//! what the kernel did.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ufork_repro::abi::{ImageSpec, Pid};
use ufork_repro::exec::{Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::hello::HelloWorld;

fn main() {
    // 1. Boot a μFork kernel: one address space, CoPA fork, full
    //    (adversarial) isolation — all defaults.
    let os = UforkOs::new(UforkConfig::default());
    let mut machine = Machine::new(os, MachineConfig::default());

    // 2. Spawn a minimal μprocess that forks once.
    let pid = machine
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .expect("spawn");

    // 3. Step until the fork completes so we can observe the child while
    //    it is alive, then run to completion.
    while machine.fork_log().is_empty() && machine.step() {}
    let fork = machine.fork_log()[0];
    let child_mem = machine.os.mem_stats(fork.child);
    // The isolation invariant holds right after fork...
    assert_eq!(machine.os.audit_isolation(pid), 0);
    assert_eq!(machine.os.audit_isolation(fork.child), 0);
    machine.run();

    // 4. Inspect.
    assert_eq!(machine.exit_code(pid), Some(0));
    println!(
        "μFork machine finished at t = {:.1} µs",
        machine.now() / 1e3
    );
    println!(
        "fork(2): parent {:?} -> child {:?} in {:.1} µs",
        fork.parent,
        fork.child,
        fork.latency_ns / 1e3
    );
    println!(
        "child memory right after fork: {:.3} MB (proportional resident set, \
         {} private / {} shared frames)",
        child_mem.prs_mib(),
        child_mem.private_frames,
        child_mem.shared_frames
    );
    println!("\nkernel operation counters:\n{}", machine.counters());
    println!(
        "\nisolation audit: clean for {:?} and {:?}",
        Pid(1),
        fork.child
    );
}
