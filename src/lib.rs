//! Umbrella crate for the μFork reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! use a single dependency. See `README.md` for an overview and
//! `DESIGN.md` for the system inventory.

pub use ufork;
pub use ufork_abi as abi;
pub use ufork_baselines as baselines;
pub use ufork_cheri as cheri;
pub use ufork_exec as exec;
pub use ufork_mem as mem;
pub use ufork_sim as sim;
pub use ufork_vmem as vmem;
pub use ufork_workloads as workloads;
