#!/usr/bin/env python3
"""Regression gate over BENCH_fork.json.

Compares a freshly generated BENCH_fork.json against the committed one and
fails (exit 1) if a metric present in *both* files regressed beyond its
allowed fraction.

Three metric families are compared, with different thresholds:

* ``fork_scaling[]`` — *simulated* fork latencies, keyed by
  ``(heap, mode)``. These are deterministic and machine-independent
  (same seed + worker count => bit-identical ns on any host), so the
  strict threshold (default 15%) applies: any drift is a real cost-model
  or walk-code change.
* ``fork_phases[]`` — per-phase *simulated* totals from the trace layer
  (schema v3+), keyed by ``(mode, phase)``. Deterministic like
  ``fork_scaling``, and strictly finer-grained: an end-to-end latency can
  stay within its gate while one phase silently doubles at another's
  expense, so each phase is gated at the strict threshold too.
* ``fork_admission[]`` — *simulated* latency of an uncontended fork per
  admission fallback policy (schema v4+), keyed by ``policy``.
  Deterministic, gated at the strict threshold: the admission pre-flight
  must stay a fixed per-fork charge, never grow with the fork's size.
* ``fork_storm[]`` — the event-driven scheduler's fork storm (schema
  v5+), keyed by ``(mode, children, metric)`` for the two bigger-is-worse
  metrics ``sim_p99_ns`` (p99 fork latency under 10k live μprocesses) and
  ``sim_ns_per_fork`` (storm makespan per fork). Deterministic, strict
  threshold. ``children`` is part of the key because both metrics move
  with the storm's scale: a reduced-N smoke run must not be compared
  against the committed full-scale baseline.
* ``fork_pressure[]`` — the churning storm across allocator occupancy ×
  reclaim daemon (schema v9+), keyed by
  ``(occupancy, daemon, children, metric)`` for ``sim_p50_ns`` and
  ``sim_p99_ns``. Deterministic, strict threshold; ``children`` is part
  of the key for the same reason as the overlap storm's. The
  ``daemon=false`` rows are the inline-zeroing ablation baseline.
* ``fork_pipeline[]`` — the pipelined-fork latency frontier (schema
  v6+), keyed by ``(heap, mode, metric)`` for ``sim_commit_ns`` (latency
  until the child runs) and ``sim_copy_done_ns`` (latency until its span
  is fully copied). Deterministic, strict threshold.
* ``fork_snapshot_train[]`` — the dirty-scope snapshot train (schema
  v7+), keyed by ``(system, scope, walk, snapshot, metric)`` for
  ``sim_fork_ns`` and ``sim_copy_done_ns``. Deterministic, strict
  threshold.
* ``fork_zygote[]`` — resident frames of the zygote fleet (schema v7+),
  keyed by ``(variant, metric)`` for ``frames_fleet`` (bigger is worse).
  Deterministic, strict threshold.
* ``fork_ring[]`` — the ring fork probe (schema v8+), keyed by
  ``(mode, setup)`` for ``sim_fork_ns``: one fork holding four pipes
  (``setup=pipes``) or four live sealed ring endpoints
  (``setup=rings``). Deterministic, strict threshold.
* ``fork_ring_service[]`` — the multi-tier ring-fabric service (schema
  v8+), keyed by ``(mode, requests)`` for ``sim_final_ns`` (simulated
  makespan). ``requests`` is part of the key for the same reason as the
  storm's ``children``: smoke scales must not gate against the
  committed full-scale baseline.

On top of the baseline comparison, two *cross-metric* invariants are
checked inside the fresh file alone (schema v6+):

* the pipelined fork's commit latency stays within 1.5x the CoPA fork on
  every heap shape (``fork_pipeline``),
* the pipelined storm's fork p99 beats the widest synchronous parallel
  walk (``full_pipelined`` vs ``full_par8`` in ``fork_storm``),
* every steady-state (snapshot >= 2) ``DirtySince`` fork in the snapshot
  train completes its copy within 0.25x the matching
  ``Everything``-scope fork, serial and pipelined
  (``fork_snapshot_train``, schema v7+), and
* with cross-child dedup or dirty tracking on, the warm zygote fleet's
  resident frames stay within 1.2x a single child's
  (``fork_zygote``, schema v7+), and
* in every mode, a fork carrying live sealed ring endpoints stays
  within 1.2x the pipe-only fork (``fork_ring``, schema v8+), and
* with the background reclaim daemon on, the churning storm's fork p99
  across the high pressure watermark stays within 1.25x the
  low-occupancy p99 at the same scale (``fork_pressure``, schema v9+).
* ``results[]`` — host wall-clock best-of-samples, keyed by ``name``.
  These depend on the machine that produced them; the committed baseline
  and a CI runner are different hardware, and even same-host runs swing
  by double-digit percentages. The host threshold (default +200%) is a
  catastrophic-regression backstop only — e.g. an accidental
  O(n) -> O(n^2), not micro-drift.

Metrics present in only one file (added or retired benches) are reported
but never fail the gate.

Usage:
    bench_gate.py COMMITTED_JSON FRESH_JSON [--max-regress 0.15]
                  [--max-regress-host 2.0]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def results_map(doc):
    # "best_ns" (min over samples) since schema v2; older files carried
    # the noisier "median_ns".
    return {
        r["name"]: float(r.get("best_ns", r.get("median_ns")))
        for r in doc.get("results", [])
    }


def scaling_map(doc):
    return {
        (r["heap"], r["mode"]): float(r["sim_fork_ns"])
        for r in doc.get("fork_scaling", [])
    }


def phase_map(doc):
    # Absent before schema v3; compare() treats one-sided metrics as
    # informational, so gating against an older baseline still works.
    return {
        (r["mode"], r["phase"]): float(r["sim_total_ns"])
        for r in doc.get("fork_phases", [])
    }


def admission_map(doc):
    # Absent before schema v4.
    return {
        r["policy"]: float(r["sim_fork_ns"])
        for r in doc.get("fork_admission", [])
    }


def storm_map(doc):
    # Absent before schema v5.
    return {
        (r["mode"], str(r["children"]), metric): float(r[metric])
        for r in doc.get("fork_storm", [])
        for metric in ("sim_p99_ns", "sim_ns_per_fork")
    }


def pressure_map(doc):
    # Absent before schema v9. ``daemon`` is a JSON bool; str() it so the
    # key renders in compare()'s "/".join.
    return {
        (r["occupancy"], str(r["daemon"]).lower(), str(r["children"]), metric): float(
            r[metric]
        )
        for r in doc.get("fork_pressure", [])
        for metric in ("sim_p50_ns", "sim_p99_ns")
    }


def pipeline_map(doc):
    # Absent before schema v6.
    return {
        (r["heap"], r["mode"], metric): float(r[metric])
        for r in doc.get("fork_pipeline", [])
        for metric in ("sim_commit_ns", "sim_copy_done_ns")
    }


def snapshot_train_map(doc):
    # Absent before schema v7.
    return {
        (r["system"], r["scope"], r["walk"], str(r["snapshot"]), metric): float(
            r[metric]
        )
        for r in doc.get("fork_snapshot_train", [])
        for metric in ("sim_fork_ns", "sim_copy_done_ns")
    }


def zygote_map(doc):
    # Absent before schema v7. Frames, not nanoseconds, but the same
    # bigger-is-worse comparison applies.
    return {
        (r["variant"], "frames_fleet"): float(r["frames_fleet"])
        for r in doc.get("fork_zygote", [])
    }


def ring_map(doc):
    # Absent before schema v8.
    return {
        (r["mode"], r["setup"]): float(r["sim_fork_ns"])
        for r in doc.get("fork_ring", [])
    }


def ring_service_map(doc):
    # Absent before schema v8.
    return {
        (r["mode"], str(r["requests"])): float(r["sim_final_ns"])
        for r in doc.get("fork_ring_service", [])
    }


def cross_checks(doc):
    """Intra-file invariants of the pipelined fork (schema v6+)."""
    failures = []
    frontier = doc.get("fork_pipeline", [])
    by_mode = {}
    for r in frontier:
        by_mode[(r["heap"], r["mode"])] = float(r["sim_commit_ns"])
    for (heap, mode), commit in sorted(by_mode.items()):
        if mode != "pipelined":
            continue
        copa = by_mode.get((heap, "copa"))
        if copa is None or copa <= 0:
            continue
        ratio = commit / copa
        verdict = "ok" if ratio <= 1.5 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_pipeline {heap}: pipelined commit "
            f"{commit:.0f} ns vs copa {copa:.0f} ns ({ratio:.3f}x, limit 1.5x)"
        )
        if ratio > 1.5:
            failures.append(
                f"cross fork_pipeline {heap}: pipelined commit {commit:.0f} ns "
                f"is {ratio:.3f}x CoPA ({copa:.0f} ns), limit 1.5x"
            )
    storm = {
        (r["mode"], str(r["children"])): float(r["sim_p99_ns"])
        for r in doc.get("fork_storm", [])
    }
    for (mode, children), p99 in sorted(storm.items()):
        if mode != "full_pipelined":
            continue
        par8 = storm.get(("full_par8", children))
        if par8 is None:
            continue
        verdict = "ok" if p99 < par8 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_storm n={children}: pipelined p99 "
            f"{p99:.0f} ns vs full_par8 {par8:.0f} ns"
        )
        if p99 >= par8:
            failures.append(
                f"cross fork_storm n={children}: pipelined fork p99 {p99:.0f} ns "
                f"does not beat full_par8 ({par8:.0f} ns)"
            )
    train = {
        (r["scope"], r["walk"], int(r["snapshot"])): float(r["sim_copy_done_ns"])
        for r in doc.get("fork_snapshot_train", [])
        if r["walk"] != "-"  # the multi-AS baseline has no dirty scope
    }
    for (scope, walk, snap), dirty_ns in sorted(train.items()):
        if scope != "dirty" or snap < 2:
            continue
        every = train.get(("everything", walk, snap))
        if every is None or every <= 0:
            continue
        ratio = dirty_ns / every
        verdict = "ok" if ratio <= 0.25 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_snapshot_train {walk}/{snap}: dirty "
            f"copy-done {dirty_ns:.0f} ns vs everything {every:.0f} ns "
            f"({ratio:.3f}x, limit 0.25x)"
        )
        if ratio > 0.25:
            failures.append(
                f"cross fork_snapshot_train {walk}/{snap}: DirtySince copy-done "
                f"{dirty_ns:.0f} ns is {ratio:.3f}x the Everything fork "
                f"({every:.0f} ns), limit 0.25x at 5% writes"
            )
    for r in doc.get("fork_zygote", []):
        variant = r["variant"]
        if not (variant.startswith("dedup/") or variant.startswith("dirty/")):
            continue
        one, fleet = float(r["frames_one_child"]), float(r["frames_fleet"])
        if one <= 0:
            continue
        ratio = fleet / one
        verdict = "ok" if ratio <= 1.2 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_zygote {variant}: fleet {fleet:.0f} "
            f"frames vs single child {one:.0f} ({ratio:.3f}x, limit 1.2x)"
        )
        if ratio > 1.2:
            failures.append(
                f"cross fork_zygote {variant}: fleet of {r['children']} holds "
                f"{fleet:.0f} frames, {ratio:.3f}x a single child's {one:.0f}, "
                f"limit 1.2x"
            )
    pressure = {
        (r["occupancy"], bool(r["daemon"]), str(r["children"])): float(r["sim_p99_ns"])
        for r in doc.get("fork_pressure", [])
    }
    for (occupancy, daemon, children), hi_p99 in sorted(pressure.items()):
        if occupancy != "high" or not daemon:
            continue
        lo_p99 = pressure.get(("low", True, children))
        if lo_p99 is None or lo_p99 <= 0:
            continue
        ratio = hi_p99 / lo_p99
        verdict = "ok" if ratio <= 1.25 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_pressure n={children}: high-watermark "
            f"p99 {hi_p99:.0f} ns vs low {lo_p99:.0f} ns ({ratio:.3f}x, limit 1.25x)"
        )
        if ratio > 1.25:
            failures.append(
                f"cross fork_pressure n={children}: fork p99 across the high "
                f"watermark {hi_p99:.0f} ns is {ratio:.3f}x the low-occupancy "
                f"p99 ({lo_p99:.0f} ns) with the reclaim daemon on, limit 1.25x"
            )
    ring = {
        (r["mode"], r["setup"]): float(r["sim_fork_ns"])
        for r in doc.get("fork_ring", [])
    }
    for (mode, setup), rings_ns in sorted(ring.items()):
        if setup != "rings":
            continue
        pipes_ns = ring.get((mode, "pipes"))
        if pipes_ns is None or pipes_ns <= 0:
            continue
        ratio = rings_ns / pipes_ns
        verdict = "ok" if ratio <= 1.2 else "FAIL"
        print(
            f"  [{verdict:>4}] cross fork_ring {mode}: ring fork {rings_ns:.0f} ns "
            f"vs pipe-only {pipes_ns:.0f} ns ({ratio:.3f}x, limit 1.2x)"
        )
        if ratio > 1.2:
            failures.append(
                f"cross fork_ring {mode}: fork with live ring endpoints "
                f"{rings_ns:.0f} ns is {ratio:.3f}x the pipe-only fork "
                f"({pipes_ns:.0f} ns), limit 1.2x"
            )
    return failures


def compare(kind, old, new, max_regress):
    """Returns the list of failure strings for one metric family."""
    failures = []
    for key in sorted(old.keys() | new.keys(), key=str):
        label = key if isinstance(key, str) else "/".join(key)
        if key not in old:
            print(f"  [new]  {kind} {label}: {new[key]:.0f} ns (no baseline)")
            continue
        if key not in new:
            print(f"  [gone] {kind} {label}: baseline {old[key]:.0f} ns")
            continue
        before, after = old[key], new[key]
        ratio = after / before if before > 0 else 1.0
        verdict = "ok"
        if ratio > 1.0 + max_regress:
            verdict = "REGRESSED"
            failures.append(
                f"{kind} {label}: {before:.0f} ns -> {after:.0f} ns "
                f"(+{(ratio - 1.0) * 100:.1f}%, limit +{max_regress * 100:.0f}%)"
            )
        print(
            f"  [{verdict:>4}] {kind} {label}: "
            f"{before:.0f} -> {after:.0f} ns ({(ratio - 1.0) * 100:+.1f}%)"
        )
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("committed", help="baseline BENCH_fork.json (from the repo)")
    ap.add_argument("fresh", help="freshly generated BENCH_fork.json")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="max fractional regression for deterministic simulated metrics "
        "(default 0.15 = +15%%)",
    )
    ap.add_argument(
        "--max-regress-host",
        type=float,
        default=2.0,
        help="max fractional regression for host wall-clock metrics "
        "(default 2.0 = +200%%; backstop against catastrophic blowups, "
        "host numbers are not comparable across machines at fine grain)",
    )
    args = ap.parse_args()

    old_doc, new_doc = load(args.committed), load(args.fresh)
    failures = []
    failures += compare(
        "fork_scaling",
        scaling_map(old_doc),
        scaling_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_phases",
        phase_map(old_doc),
        phase_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_admission",
        admission_map(old_doc),
        admission_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_storm",
        storm_map(old_doc),
        storm_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_pressure",
        pressure_map(old_doc),
        pressure_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_pipeline",
        pipeline_map(old_doc),
        pipeline_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_snapshot_train",
        snapshot_train_map(old_doc),
        snapshot_train_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_zygote",
        zygote_map(old_doc),
        zygote_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_ring",
        ring_map(old_doc),
        ring_map(new_doc),
        args.max_regress,
    )
    failures += compare(
        "fork_ring_service",
        ring_service_map(old_doc),
        ring_service_map(new_doc),
        args.max_regress,
    )
    failures += cross_checks(new_doc)
    failures += compare(
        "results",
        results_map(old_doc),
        results_map(new_doc),
        args.max_regress_host,
    )

    if failures:
        print(f"\n{len(failures)} metric(s) regressed beyond the gate:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench gate: no shared metric regressed beyond its threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
