//! Wires the differential oracle into the ordinary test suite: a small
//! seeded run of all three engines (kernel diff, machine diff, fault
//! injection). The full campaign is the `ufork-oracle` binary
//! (`cargo run -p ufork-oracle -- --seed N --cases M`); this smoke keeps
//! `cargo test` honest without slowing it down.
//!
//! Replay/scale via `ORACLE_SEED` / `ORACLE_CASES`.

use ufork_oracle::{run_kernel_diff, run_machine_diff, OracleReport};
use ufork_testkit::env_u64;

#[test]
fn differential_oracle_smoke() {
    let seed = env_u64("ORACLE_SEED", 1);
    let cases = env_u64("ORACLE_CASES", 20);
    let mut report = OracleReport::default();
    run_kernel_diff(seed, cases, &mut report);
    run_machine_diff(seed, cases.div_ceil(5), &mut report);
    assert!(
        report.ok(),
        "oracle divergences (replay with ORACLE_SEED={seed}):\n{}",
        report.failures.join("\n")
    );
    assert_eq!(report.kernel_cases, cases);
}

#[test]
fn fault_injection_campaign() {
    let mut report = OracleReport::default();
    ufork_oracle::run_faults(&mut report);
    assert!(
        report.ok(),
        "fault campaign failures:\n{}",
        report.failures.join("\n")
    );
    assert!(
        report.fault_points > 100,
        "campaign exercised only {} injection points",
        report.fault_points
    );
}

#[test]
fn journal_chaos_sweep() {
    let mut report = OracleReport::default();
    ufork_oracle::run_chaos(&mut report);
    assert!(
        report.ok(),
        "chaos sweep failures:\n{}",
        report.failures.join("\n")
    );
    assert!(
        report.chaos_points > 50,
        "sweep aborted only {} journal ops",
        report.chaos_points
    );
    assert!(
        report.pipeline_chaos_points > 0,
        "sweep never reached the pipelined background-copy window"
    );
    assert!(
        report.reclaim_chaos_points > 0,
        "sweep never aborted a background-reclaim pass"
    );
    assert!(
        report.oom_chaos_points > 0,
        "sweep never aborted an OOM victim teardown"
    );
}
