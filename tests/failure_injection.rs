//! Failure injection: resource exhaustion and hostile conditions must
//! surface as errors / failed processes, never as panics, hangs, or
//! isolation breaches.

use ufork_repro::abi::{
    BlockingCall, CopyStrategy, Env, Errno, ForkResult, ImageSpec, Pid, Program, Resume,
    StepOutcome,
};
use ufork_repro::exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::redis::{RedisConfig, RedisServer};
use ufork_repro::workloads::ubench::SpawnBench;

#[test]
fn frame_exhaustion_during_cow_fault_is_an_error() {
    // Enough frames to spawn and fork, but not to satisfy all CoW copies.
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 2,
        strategy: CopyStrategy::CoPA,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let img = ImageSpec {
        name: "tight".into(),
        text_bytes: 4096,
        data_bytes: 4096,
        heap_bytes: 1 << 20, // ~256 frames of a 512-frame machine
        stack_bytes: 4096,
        got_slots: 8,
    };
    os.spawn(&mut ctx, Pid(1), &img).unwrap();
    let a = os.malloc(&mut ctx, Pid(1), 1 << 19).unwrap();
    // Dirty the allocation so its pages are real.
    for off in (0..(1u64 << 19)).step_by(4096) {
        os.store(
            &mut ctx,
            Pid(1),
            &a.with_addr(a.base() + off).unwrap(),
            &[1],
        )
        .unwrap();
    }
    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
    // The child dirties everything: at some point the frame pool runs dry.
    let mut failed = false;
    for off in (0..(1u64 << 19)).step_by(4096) {
        if os
            .store(&mut ctx, Pid(2), &a.rebased_for_test(&os), &[0])
            .is_err()
        {
            failed = true;
            break;
        }
        let _ = off;
    }
    // Either the pool was big enough (fine) or the failure was an Err —
    // this test mainly asserts "no panic". Force at least one visible
    // failure by exhausting deliberately:
    while os.mmap_anon(&mut ctx, Pid(1), 1 << 20).is_ok() {}
    let r = os.mmap_anon(&mut ctx, Pid(1), 1 << 20);
    assert_eq!(r.unwrap_err(), Errno::NoMem);
    let _ = failed;
}

// Helper: the test above needs the child's view of `a`; expose via a tiny
// extension trait to keep the test self-contained.
trait RebasedForTest {
    fn rebased_for_test(&self, os: &UforkOs) -> ufork_repro::cheri::Capability;
}

impl RebasedForTest for ufork_repro::cheri::Capability {
    fn rebased_for_test(&self, os: &UforkOs) -> ufork_repro::cheri::Capability {
        let p = os.reg(Pid(1), 0).unwrap();
        let c = os.reg(Pid(2), 0).unwrap();
        let delta = c.base() - p.base();
        c.with_bounds(self.base() + delta, self.len())
            .unwrap()
            .with_addr(self.base() + delta)
            .unwrap()
    }
}

#[test]
fn region_exhaustion_fails_fork_gracefully() {
    // A μprocess area that fits the parent but not a single child region.
    let img = ImageSpec::hello_world();
    let region_len = ufork_repro::ufork::ProcLayout::for_image(&img).region_len();
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        uproc_area_len: region_len + (1 << 20), // one region + change
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &img).unwrap();
    assert_eq!(os.fork(&mut ctx, Pid(1), Pid(2)).unwrap_err(), Errno::NoMem);
    // The parent is unharmed and can still work.
    let a = os.malloc(&mut ctx, Pid(1), 64).unwrap();
    os.store(&mut ctx, Pid(1), &a, b"still alive").unwrap();
    assert_eq!(os.audit_isolation(Pid(1)), 0);
}

#[test]
fn fork_failure_reaches_the_program_as_an_error() {
    // Machine-level: fork fails (region exhaustion) -> program sees
    // Ret(Err) and can exit cleanly.
    #[derive(Clone)]
    struct TryFork;
    impl Program for TryFork {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Fork,
                Resume::Forked(ForkResult::Child) => StepOutcome::Exit(0),
                Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
                Resume::Ret(Err(Errno::NoMem)) => StepOutcome::Exit(7),
                Resume::Ret(_) => StepOutcome::Exit(0),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let img = ImageSpec::hello_world();
    let region_len = ufork_repro::ufork::ProcLayout::for_image(&img).region_len();
    let os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        uproc_area_len: region_len + (1 << 20),
        ..UforkConfig::default()
    });
    let mut m = Machine::new(os, MachineConfig::default());
    let pid = m.spawn(&img, Box::new(TryFork)).unwrap();
    m.run();
    assert_eq!(
        m.exit_code(pid),
        Some(7),
        "program observed ENOMEM from fork"
    );
}

#[test]
fn redis_survives_physical_pressure() {
    // Physical memory sized so the run either completes or fails with a
    // clean nonzero exit — never a hang or panic.
    for phys_mib in [4, 8, 16, 64] {
        let rcfg = RedisConfig::sized(30, 64 * 1024);
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let os = UforkOs::new(UforkConfig {
            phys_mib,
            ..UforkConfig::default()
        });
        let mut m = Machine::new(os, MachineConfig::default());
        match m.spawn(&img, Box::new(RedisServer::new(rcfg))) {
            Ok(pid) => {
                m.run();
                assert!(m.is_finished(pid), "phys={phys_mib}MiB: must terminate");
            }
            Err(e) => assert_eq!(e, Errno::NoMem),
        }
    }
}

#[test]
fn deep_fork_chain_relocates_across_generations() {
    // Ten generations, each forking before touching the shared data: every
    // generation's pages still point at ancestors and must relocate.
    #[derive(Clone)]
    struct Chain {
        depth: u32,
        max: u32,
    }
    impl Program for Chain {
        fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => {
                    let cell = env.malloc(64).unwrap();
                    env.store_u64(&cell.with_addr(cell.base()).unwrap(), 0xC0FFEE)
                        .unwrap();
                    let slot = env.malloc(16).unwrap();
                    env.store_cap(&slot.with_addr(slot.base()).unwrap(), &cell)
                        .unwrap();
                    env.set_reg(4, slot).unwrap();
                    StepOutcome::Fork
                }
                Resume::Forked(ForkResult::Child) => {
                    self.depth += 1;
                    // Verify through the pointer chain BEFORE forking on.
                    let slot = env.reg(4).unwrap();
                    let cell = env
                        .load_cap(&slot.with_addr(slot.base()).unwrap())
                        .unwrap()
                        .expect("pointer survived relocation");
                    let v = env.load_u64(&cell.with_addr(cell.base()).unwrap()).unwrap();
                    if v != 0xC0FFEE {
                        return StepOutcome::Exit(13);
                    }
                    if self.depth < self.max {
                        StepOutcome::Fork
                    } else {
                        StepOutcome::Exit(0)
                    }
                }
                Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
                Resume::Ret(Ok(status)) => StepOutcome::Exit(((status >> 32) & 0xff) as i32),
                Resume::Ret(Err(_)) => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(os, MachineConfig::default());
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Chain { depth: 0, max: 10 }),
        )
        .unwrap();
    m.run();
    // Exit codes propagate failure up the chain: 0 means all ten
    // generations saw 0xC0FFEE through relocated pointers.
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.counters().forks, 10);
    assert_eq!(m.counters().isolation_violations, 0);
}

#[test]
fn fork_tree_all_descendants_exit() {
    // Breadth-2, depth-3 fork tree: 2^3 leaves; everything terminates.
    #[derive(Clone)]
    struct Tree {
        depth: u32,
        pending: u32,
    }
    impl Program for Tree {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start | Resume::Forked(ForkResult::Child) => {
                    if let Resume::Forked(ForkResult::Child) = input {
                        self.depth += 1;
                        self.pending = 0;
                    }
                    if self.depth < 3 {
                        self.pending += 1;
                        StepOutcome::Fork
                    } else {
                        StepOutcome::Exit(0)
                    }
                }
                Resume::Forked(ForkResult::Parent(_)) => {
                    if self.pending < 2 {
                        self.pending += 1;
                        StepOutcome::Fork
                    } else {
                        StepOutcome::Block(BlockingCall::Wait)
                    }
                }
                Resume::Ret(Ok(_)) => {
                    self.pending -= 1;
                    if self.pending > 0 {
                        StepOutcome::Block(BlockingCall::Wait)
                    } else {
                        StepOutcome::Exit(0)
                    }
                }
                Resume::Ret(Err(_)) => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores: 2,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Tree {
                depth: 0,
                pending: 0,
            }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // Every forked process exited.
    assert_eq!(m.exit_log().len() as u64, m.counters().forks + 1);
    assert_eq!(m.counters().isolation_violations, 0);
}

#[test]
fn region_reuse_after_childless_exits_does_not_leak() {
    // 200 fork+exit cycles in a small area: regions must be recycled
    // (childless procs free their regions).
    let img = ImageSpec::hello_world();
    let region_len = ufork_repro::ufork::ProcLayout::for_image(&img).region_len();
    let os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        // Room for the parent + 3 children at a time only.
        uproc_area_len: region_len * 4 + (1 << 20),
        ..UforkConfig::default()
    });
    let mut m = Machine::new(os, MachineConfig::default());
    let pid = m.spawn(&img, Box::new(SpawnBench::new(200))).unwrap();
    m.run();
    assert_eq!(
        m.exit_code(pid),
        Some(0),
        "region recycling keeps spawn alive"
    );
    assert_eq!(m.counters().forks, 200);
}

#[test]
fn copy_failure_during_cow_fault_leaks_no_frames() {
    // Regression: resolve_fault used to leak the freshly allocated frame
    // when the subsequent frame copy failed — alloc_frame succeeded, the
    // error path returned without dropping the new frame's reference.
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 16,
        strategy: CopyStrategy::CoPA,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let a = os.malloc(&mut ctx, Pid(1), 4 * 4096).unwrap();
    for off in (0..4u64 * 4096).step_by(4096) {
        os.store(
            &mut ctx,
            Pid(1),
            &a.with_addr(a.base() + off).unwrap(),
            &[7],
        )
        .unwrap();
    }
    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();

    let frames_before = os.allocated_frames();
    // Fail the next frame copy: the child's first CoW resolution allocates
    // a fresh frame and then hits the injected copy failure.
    os.inject_frame_copy_failure(os.frame_copy_attempts());
    let child_a = a.rebased_for_test(&os);
    assert_eq!(
        os.store(&mut ctx, Pid(2), &child_a, &[9]).unwrap_err(),
        Errno::Fault
    );
    // The fresh frame was released: frames balance, no dangling PTEs.
    assert_eq!(
        os.allocated_frames(),
        frames_before,
        "failed CoW copy leaked its fresh frame"
    );
    assert_eq!(os.audit_kernel(), (0, 0));
    // The shared mapping is still intact, so retrying the store succeeds
    // and performs exactly the one page copy.
    os.store(&mut ctx, Pid(2), &child_a, &[9]).unwrap();
    assert_eq!(os.allocated_frames(), frames_before + 1);
    assert_eq!(os.audit_kernel(), (0, 0));
}

#[test]
fn capload_on_cow_page_resolves_in_one_fault_without_retry_exhaustion() {
    // The CapLoad-on-CoW path: a CoPA child's page carries both the
    // LC_FAULT and CoW bits. One resolution must clear both (the segment's
    // *final* flags are mapped), so the access retries at most once and
    // the retry-exhaustion counter stays untouched.
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 16,
        strategy: CopyStrategy::CoPA,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let a = os.malloc(&mut ctx, Pid(1), 4096).unwrap();
    // A tagged granule, so the CapLoad tag peek sees a real capability and
    // the strategy fault fires.
    os.store_cap(&mut ctx, Pid(1), &a, &a).unwrap();
    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();

    let mut fctx = Ctx::new();
    let child_a = a.rebased_for_test(&os);
    let got = os
        .load_cap(&mut fctx, Pid(2), &child_a)
        .unwrap()
        .expect("tagged granule must load a capability");
    assert_eq!(fctx.counters.cap_load_faults, 1, "one strategy fault");
    assert_eq!(fctx.counters.cow_faults, 0, "no residual CoW fault");
    assert_eq!(fctx.counters.fault_retries_exhausted, 0);
    // The loaded capability was relocated into the child's region.
    let child_root = os.reg(Pid(2), 0).unwrap();
    assert!(got.confined_to(child_root.base(), child_root.len()));
    // The resolution mapped the final (writable) flags, so a CapStore to
    // the same page takes no further fault of any kind.
    os.store_cap(&mut fctx, Pid(2), &child_a, &got).unwrap();
    assert_eq!(fctx.counters.cap_load_faults, 1);
    assert_eq!(fctx.counters.cow_faults + fctx.counters.coa_faults, 0);
    assert_eq!(fctx.counters.fault_retries_exhausted, 0);
}

#[test]
fn rollback_and_reclaim_counters_match_trace_phases() {
    // Counter/trace consistency for the transactional fork journal: every
    // rollback leaves exactly one `fork/rollback` phase span, every fork
    // reclaim pass one `fork/reclaim` span, each fork attempt opens one
    // `fork/admission` span, and the `journal_ops` counter equals the
    // kernel's boot-cumulative journal record delta across the fork.
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 64,
        strategy: CopyStrategy::Full,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let a = os.malloc(&mut ctx, Pid(1), 8 * 4096).unwrap();
    for off in (0..8u64 * 4096).step_by(4096) {
        os.store(
            &mut ctx,
            Pid(1),
            &a.with_addr(a.base() + off).unwrap(),
            &[5],
        )
        .unwrap();
    }

    let mut fctx = Ctx::traced(4096);
    // Fail the fourth allocation of the fork walk: the journal rolls the
    // attempt back, reclaims, and the in-kernel retry succeeds.
    os.inject_frame_alloc_failure(os.frame_alloc_attempts() + 3);
    let j0 = os.journal_ops_recorded();
    os.fork(&mut fctx, Pid(1), Pid(2)).unwrap();

    let c = &fctx.counters;
    assert!(c.fork_rollbacks >= 1, "injected failure must roll back");
    assert!(
        c.reclaim_inline >= 1,
        "rollback must be followed by reclaim"
    );
    assert!(c.fork_backoff_ns > 0, "reclaim charges simulated backoff");
    assert_eq!(
        c.journal_ops,
        os.journal_ops_recorded() - j0,
        "journal_ops counter tracks every recorded op"
    );
    let span_count = |name: &str| {
        fctx.trace
            .phases()
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.count)
    };
    assert_eq!(
        c.fork_rollbacks,
        span_count("fork/rollback"),
        "one trace span per rollback"
    );
    assert_eq!(
        c.reclaim_inline,
        span_count("fork/reclaim"),
        "one trace span per reclaim pass"
    );
    assert_eq!(
        span_count("fork/admission"),
        c.fork_rollbacks + 1,
        "one admission span per fork attempt"
    );
    assert_eq!(os.audit_kernel(), (0, 0));
}

#[test]
fn fault_counters_match_trace_events_and_page_motion() {
    // Counter-consistency property: every resolved transparent fault
    // leaves exactly one trace instant, and every resolution either
    // copied a page or reclaimed one (refcount == 1) — nothing silent.
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 32,
        strategy: CopyStrategy::CoPA,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let pages = 8u64;
    let a = os.malloc(&mut ctx, Pid(1), pages * 4096).unwrap();
    for off in (0..pages * 4096).step_by(4096) {
        let slot = a.with_addr(a.base() + off).unwrap();
        os.store_cap(&mut ctx, Pid(1), &slot, &slot).unwrap();
    }
    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();

    // All fault-path work lands on one fresh traced context, so the
    // counters below are pure deltas of this access pattern.
    let mut fctx = Ctx::traced(4096);
    let child_a = a.rebased_for_test(&os);
    // The child cap-loads the first half: CoPA strategy faults (copies).
    for i in 0..pages / 2 {
        let slot = child_a.with_addr(child_a.base() + i * 4096).unwrap();
        os.load_cap(&mut fctx, Pid(2), &slot).unwrap();
    }
    // The parent dirties the second half: CoW copies, dropping the shared
    // frames' refcounts to 1 with the child as last sharer...
    for i in pages / 2..pages {
        let slot = a.with_addr(a.base() + i * 4096).unwrap();
        os.store(&mut fctx, Pid(1), &slot, &[3]).unwrap();
    }
    // ...so the child's own writes hit the reclaim-in-place branch.
    for i in pages / 2..pages {
        let slot = child_a.with_addr(child_a.base() + i * 4096).unwrap();
        os.store(&mut fctx, Pid(2), &slot, &[4]).unwrap();
    }

    let c = &fctx.counters;
    let resolutions = c.cow_faults + c.coa_faults + c.cap_load_faults;
    assert!(resolutions > 0, "the pattern must fault");
    assert!(c.pages_reclaimed > 0, "reclaim branch must be exercised");
    assert_eq!(
        resolutions,
        fctx.trace.instant_count("fault/cow")
            + fctx.trace.instant_count("fault/coa")
            + fctx.trace.instant_count("fault/capload"),
        "each resolved fault records exactly one trace instant"
    );
    assert_eq!(
        c.pages_copied + c.pages_reclaimed,
        resolutions,
        "every resolution copies or reclaims exactly one page"
    );
    assert_eq!(c.fault_retries_exhausted, 0);
}
