//! End-to-end tests of the paper's fork usage patterns U1/U3/U5 and the
//! new kernel features behind them (exec, mmap, kill), on all systems.

use ufork_repro::abi::{CopyStrategy, ImageSpec, IsolationLevel, Pid};
use ufork_repro::baselines::{mono, BaselineConfig};
use ufork_repro::exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::forkserver::{ForkServer, ForkServerConfig};
use ufork_repro::workloads::privsep::{Privsep, PrivsepConfig};
use ufork_repro::workloads::shell::{Command, Shell};

fn ufork_machine() -> Machine<UforkOs> {
    let cfg = UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    };
    Machine::new(UforkOs::new(cfg), MachineConfig::default())
}

// ---------------------------------------------------------------------------
// U1: fork + exec (shell).
// ---------------------------------------------------------------------------

#[test]
fn shell_runs_commands_via_fork_exec() {
    let mut m = ufork_machine();
    let commands = vec![
        Command {
            output: "out/a.txt".into(),
            ops: 1000,
            code: 0,
        },
        Command {
            output: "out/b.txt".into(),
            ops: 2000,
            code: 3,
        },
    ];
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Shell::new(commands)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // Both commands ran in fresh images and wrote their output files.
    let a = m.vfs().file_contents("out/a.txt").expect("a.txt written");
    assert!(a.starts_with(b"done by pid "));
    assert!(m.vfs().file_contents("out/b.txt").is_some());
    // Exit statuses were collected through wait (incl. the non-zero one).
    let shell = m.program::<Shell>(pid).unwrap();
    assert_eq!(shell.statuses, vec![0, 3]);
    // fork + exec each time.
    assert_eq!(m.counters().forks, 2);
    assert_eq!(m.counters().execs, 2);
}

#[test]
fn shell_works_on_the_monolithic_baseline_too() {
    let mut m = Machine::new(mono(BaselineConfig::default()), MachineConfig::default());
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Shell::new(vec![Command {
                output: "x".into(),
                ops: 10,
                code: 0,
            }])),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert!(m.vfs().file_contents("x").is_some());
}

// ---------------------------------------------------------------------------
// U5: fork server with contained crashes.
// ---------------------------------------------------------------------------

#[test]
fn fork_server_contains_crashes() {
    let mut m = ufork_machine();
    let cfg = ForkServerConfig {
        executions: 21,
        crash_every: 7,
        ..ForkServerConfig::default()
    };
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(ForkServer::new(cfg)))
        .unwrap();
    m.run();
    // Exit 42 would mean the parent observed corrupted state; 0 = all
    // crashes stayed in their children.
    assert_eq!(m.exit_code(pid), Some(0));
    let fs = m.program::<ForkServer>(pid).unwrap();
    assert_eq!(fs.completed, 21);
    assert_eq!(fs.crashes, 3, "every 7th input crashes");
    // The crashing children exited with the contained-crash code.
    let crash_exits = m
        .exit_log()
        .iter()
        .filter(|e| e.pid != pid && e.code == 139)
        .count();
    assert_eq!(crash_exits, 3);
}

#[test]
fn fork_server_works_under_all_strategies() {
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        let cfg = UforkConfig {
            strategy,
            phys_mib: 256,
            ..UforkConfig::default()
        };
        let mut m = Machine::new(UforkOs::new(cfg), MachineConfig::default());
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(ForkServer::new(ForkServerConfig {
                    executions: 10,
                    ..ForkServerConfig::default()
                })),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0), "{strategy:?}");
    }
}

// ---------------------------------------------------------------------------
// U3: privilege separation.
// ---------------------------------------------------------------------------

#[test]
fn privsep_contains_hostile_messages() {
    let mut m = ufork_machine();
    let cfg = PrivsepConfig {
        messages: 15,
        hostile_every: 5,
        ..PrivsepConfig::default()
    };
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Privsep::new(cfg)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    let p = m.program::<Privsep>(pid).unwrap();
    assert_eq!(p.parsed, 12);
    assert_eq!(p.contained, 3, "every 5th message is hostile and contained");
    // No parser ever escaped (exit 66 would mean it read outside its
    // region).
    assert!(m.exit_log().iter().all(|e| e.code != 66));
    // The kernel refused the escape attempts.
    assert!(m.counters().isolation_violations >= 3);
}

#[test]
fn privsep_breach_succeeds_only_with_isolation_disabled() {
    // Sanity-check the attack is real: with IsolationLevel::None the
    // parser CAN read outside its region (the capability still bounds
    // it... so actually even unchecked mode confines via page mappings
    // only if pages are unmapped — adjacent regions may be mapped).
    let cfg = UforkConfig {
        isolation: IsolationLevel::None,
        phys_mib: 256,
        ..UforkConfig::default()
    };
    let mut m = Machine::new(UforkOs::new(cfg), MachineConfig::default());
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Privsep::new(PrivsepConfig {
                messages: 5,
                hostile_every: 5,
                ..PrivsepConfig::default()
            })),
        )
        .unwrap();
    m.run();
    // Whether the wild read lands on a mapped page depends on layout; the
    // broker must still terminate cleanly either way, and no violation is
    // *recorded* because checking is off.
    assert!(m.is_finished(pid));
    assert_eq!(m.counters().isolation_violations, 0);
}

// ---------------------------------------------------------------------------
// mmap and kill.
// ---------------------------------------------------------------------------

#[test]
fn mmap_memory_is_forked_with_cow_and_relocation() {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    let map = os.mmap_anon(&mut ctx, Pid(1), 8192).unwrap();
    os.store(&mut ctx, Pid(1), &map, b"mapped!").unwrap();
    // Store a pointer INTO the mapping, inside the mapping (relocation
    // must fix it in the child).
    let slot = map.with_addr(map.base() + 16).unwrap();
    let target = map.with_bounds(map.base(), 8).unwrap();
    os.store_cap(&mut ctx, Pid(1), &slot, &target).unwrap();

    os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
    let c_root = os.reg(Pid(2), 0).unwrap();
    let p_root = os.reg(Pid(1), 0).unwrap();
    let delta = c_root.base() - p_root.base();
    let c_map = c_root.with_bounds(map.base() + delta, map.len()).unwrap();

    // Child reads the data through its own region.
    let mut b = [0u8; 7];
    os.load(
        &mut ctx,
        Pid(2),
        &c_map.with_addr(c_map.base()).unwrap(),
        &mut b,
    )
    .unwrap();
    assert_eq!(&b, b"mapped!");
    // And the embedded pointer was relocated into the child's region.
    let c_slot = c_map.with_addr(c_map.base() + 16).unwrap();
    let reloc = os.load_cap(&mut ctx, Pid(2), &c_slot).unwrap().unwrap();
    assert!(reloc.confined_to(c_root.base(), c_root.len()));
    assert_eq!(reloc.base(), c_map.base());
    // Writes are isolated.
    os.store(
        &mut ctx,
        Pid(2),
        &c_map.with_addr(c_map.base()).unwrap(),
        b"childed",
    )
    .unwrap();
    os.load(
        &mut ctx,
        Pid(1),
        &map.with_addr(map.base()).unwrap(),
        &mut b,
    )
    .unwrap();
    assert_eq!(&b, b"mapped!");
}

#[test]
fn mmap_window_exhaustion_is_an_error() {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 512,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    // The window is 16 MiB; the second of these must fail.
    assert!(os.mmap_anon(&mut ctx, Pid(1), 12 << 20).is_ok());
    assert!(os.mmap_anon(&mut ctx, Pid(1), 12 << 20).is_err());
}

#[test]
fn kill_terminates_a_running_worker() {
    use ufork_repro::abi::{BlockingCall, Env, ForkResult, Program, Resume, StepOutcome};

    // A master that forks a long-sleeping worker, kills it, then reaps it.
    #[derive(Clone)]
    struct KillDemo {
        victim: Option<Pid>,
        phase: u8,
    }
    impl Program for KillDemo {
        fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
            match (self.phase, input) {
                (0, Resume::Start) => {
                    self.phase = 1;
                    StepOutcome::Fork
                }
                (1, Resume::Forked(ForkResult::Child)) => {
                    // The worker would run for a simulated hour.
                    StepOutcome::Block(BlockingCall::Sleep { ns: 3.6e12 })
                }
                (1, Resume::Forked(ForkResult::Parent(c))) => {
                    self.victim = Some(c);
                    self.phase = 2;
                    env.sys_kill(c).expect("kill");
                    StepOutcome::Block(BlockingCall::Wait)
                }
                (2, Resume::Ret(Ok(status))) => {
                    assert_eq!((status >> 32) as i32, 137, "SIGKILL exit code");
                    StepOutcome::Exit(0)
                }
                _ => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let mut m = ufork_machine();
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(KillDemo {
                victim: None,
                phase: 0,
            }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // The machine finished WELL before the worker's hour-long sleep.
    assert!(m.now() < 1e9);
}
