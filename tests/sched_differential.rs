//! Differential scheduler regression suite: every scenario runs under
//! BOTH engines — the legacy lockstep linear scan and the event-driven
//! run queue — and must produce *bitwise identical* machine histories:
//! exit codes, fork/exit event logs (times and latencies to the bit),
//! op counters, final simulated time, VFS file contents and residual
//! pipe bytes.
//!
//! The event-driven scheduler's default configuration (no time slice,
//! uniform priority) is specified to replay the lockstep schedule
//! exactly; this suite is the executable form of that contract across
//! the fork-pattern (U1/U3/U5) and multi-threading scenarios of the
//! tier-1 tests.

use std::any::Any;

use ufork_repro::abi::{
    BlockingCall, Env, ForkResult, ImageSpec, Pid, Program, ProgramBox, Resume, StepOutcome,
};
use ufork_repro::exec::{Machine, MachineConfig, SchedEngine};
use ufork_repro::sim::OpCounters;
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::forkserver::{ForkServer, ForkServerConfig};
use ufork_repro::workloads::mtkv::{MtKv, MtKvConfig};
use ufork_repro::workloads::privsep::{Privsep, PrivsepConfig};
use ufork_repro::workloads::shell::{Command, Shell};

/// Everything observable about a finished machine, with every float
/// captured as raw bits so comparisons are exact.
#[derive(Debug, PartialEq)]
struct History {
    exit_code: Option<i32>,
    now_bits: u64,
    forks: Vec<(Pid, Pid, u64, u64)>,
    exits: Vec<(Pid, u64, i32)>,
    /// Closed pipelined-fork copy windows (child, commit, done, pages).
    pipelines: Vec<(Pid, u64, u64, u64)>,
    counters: OpCounters,
    files: Vec<(String, Vec<u8>)>,
    pipes: Vec<(usize, Vec<u8>)>,
    total_served: u64,
}

/// One differential scenario: a root program plus machine shape.
struct Scenario {
    name: &'static str,
    cores: usize,
    time_limit: Option<f64>,
    make: fn() -> Box<dyn Program>,
}

fn run_engine(s: &Scenario, engine: SchedEngine) -> History {
    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    });
    run_machine(
        os,
        &ImageSpec::hello_world(),
        s.cores,
        s.time_limit,
        engine,
        (s.make)(),
    )
}

fn run_machine(
    os: UforkOs,
    image: &ImageSpec,
    cores: usize,
    time_limit: Option<f64>,
    engine: SchedEngine,
    program: Box<dyn Program>,
) -> History {
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores,
            time_limit,
            engine,
            ..MachineConfig::default()
        },
    );
    let pid = m.spawn(image, program).unwrap();
    m.run();
    let (files, pipes) = m.vfs().state_snapshot();
    History {
        exit_code: m.exit_code(pid),
        now_bits: m.now().to_bits(),
        forks: m
            .fork_log()
            .iter()
            .map(|f| (f.parent, f.child, f.at.to_bits(), f.latency_ns.to_bits()))
            .collect(),
        exits: m
            .exit_log()
            .iter()
            .map(|e| (e.pid, e.at.to_bits(), e.code))
            .collect(),
        pipelines: m
            .pipeline_log()
            .iter()
            .map(|p| {
                (
                    p.child,
                    p.committed_at.to_bits(),
                    p.done_at.to_bits(),
                    p.pages,
                )
            })
            .collect(),
        counters: *m.counters(),
        files,
        pipes,
        total_served: m.vfs().total_served,
    }
}

fn assert_engines_agree(s: &Scenario) {
    let lockstep = run_engine(s, SchedEngine::Lockstep);
    let event = run_engine(s, SchedEngine::EventDriven);
    assert_eq!(
        lockstep, event,
        "engines diverged on scenario `{}` ({} cores)",
        s.name, s.cores
    );
    // A scenario that never forks or never exits exercises nothing;
    // guard against silently-degenerate comparisons.
    assert!(
        !lockstep.exits.is_empty(),
        "scenario `{}` recorded no exits",
        s.name
    );
}

// ---------------------------------------------------------------------------
// Inline programs mirroring the tier-1 thread tests.
// ---------------------------------------------------------------------------

/// Worker thread: adds `value` into the shared cell in reg 10.
#[derive(Clone)]
struct Adder {
    value: u64,
    code: i32,
}

impl Program for Adder {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        let cell = env.reg(10).expect("shared accumulator");
        let cur = env
            .load_u64(&cell.with_addr(cell.base()).expect("cursor"))
            .expect("readable");
        env.cpu_ops(500);
        env.store_u64(
            &cell.with_addr(cell.base()).expect("cursor"),
            cur + self.value,
        )
        .expect("writable");
        StepOutcome::Exit(self.code)
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Main thread: spawn `n` adders, join them all, verify the sum.
#[derive(Clone)]
struct PoolMain {
    n: u64,
    spawned: u64,
    tids: Vec<u64>,
    joined: u64,
}

impl Program for PoolMain {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                let cell = env.malloc(16).expect("cell");
                env.store_u64(&cell.with_addr(cell.base()).expect("cursor"), 0)
                    .expect("init");
                env.set_reg(10, cell).expect("register");
                self.spawned += 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(Adder {
                        value: self.spawned,
                        code: self.spawned as i32,
                    })),
                })
            }
            Resume::Ret(Ok(v)) => {
                if self.spawned <= self.n && self.tids.len() < self.spawned as usize {
                    self.tids.push(v);
                    if self.spawned < self.n {
                        self.spawned += 1;
                        return StepOutcome::Block(BlockingCall::SpawnThread {
                            program: ProgramBox(Box::new(Adder {
                                value: self.spawned,
                                code: self.spawned as i32,
                            })),
                        });
                    }
                    return StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[0] });
                }
                self.joined += 1;
                if (self.joined as usize) < self.tids.len() {
                    return StepOutcome::Block(BlockingCall::JoinThread {
                        tid: self.tids[self.joined as usize],
                    });
                }
                let cell = env.reg(10).expect("cell");
                let sum = env
                    .load_u64(&cell.with_addr(cell.base()).expect("cursor"))
                    .expect("readable");
                let expect = self.n * (self.n + 1) / 2;
                StepOutcome::Exit(if sum == expect { 0 } else { 1 })
            }
            _ => StepOutcome::Exit(2),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Sibling thread that sleeps past any test horizon.
#[derive(Clone)]
struct Sleeper;
impl Program for Sleeper {
    fn resume(&mut self, _env: &mut dyn Env, _input: Resume) -> StepOutcome {
        StepOutcome::Block(BlockingCall::Sleep { ns: 1e15 })
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// fork from a multi-threaded process: only the calling thread crosses.
#[derive(Clone)]
struct ForkFromPool {
    phase: u8,
}

impl Program for ForkFromPool {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (0, Resume::Start) => {
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(Sleeper)),
                })
            }
            (1, Resume::Ret(Ok(_))) => {
                self.phase = 2;
                StepOutcome::Fork
            }
            (2, Resume::Forked(ForkResult::Child)) => {
                env.cpu_ops(100);
                StepOutcome::Exit(0)
            }
            (2, Resume::Forked(ForkResult::Parent(_))) => {
                self.phase = 3;
                StepOutcome::Block(BlockingCall::Wait)
            }
            (3, Resume::Ret(Ok(_))) => StepOutcome::Exit(0),
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Join on a tid that never existed: must error, not hang.
#[derive(Clone)]
struct BadJoin;
impl Program for BadJoin {
    fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => StepOutcome::Block(BlockingCall::JoinThread { tid: 99 }),
            Resume::Ret(Err(_)) => StepOutcome::Exit(0),
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Master forks a long-sleeping worker, kills it, reaps the SIGKILL code.
#[derive(Clone)]
struct KillDemo {
    phase: u8,
}

impl Program for KillDemo {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (0, Resume::Start) => {
                self.phase = 1;
                StepOutcome::Fork
            }
            (1, Resume::Forked(ForkResult::Child)) => {
                StepOutcome::Block(BlockingCall::Sleep { ns: 3.6e12 })
            }
            (1, Resume::Forked(ForkResult::Parent(c))) => {
                self.phase = 2;
                env.sys_kill(c).expect("kill");
                StepOutcome::Block(BlockingCall::Wait)
            }
            (2, Resume::Ret(Ok(status))) => {
                StepOutcome::Exit(if (status >> 32) as i32 == 137 { 0 } else { 1 })
            }
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// The differential matrix.
// ---------------------------------------------------------------------------

fn fork_pattern_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "shell_fork_exec",
            cores: 1,
            time_limit: None,
            make: || {
                Box::new(Shell::new(vec![
                    Command {
                        output: "out/a.txt".into(),
                        ops: 1000,
                        code: 0,
                    },
                    Command {
                        output: "out/b.txt".into(),
                        ops: 2000,
                        code: 3,
                    },
                ]))
            },
        },
        Scenario {
            name: "fork_server",
            cores: 2,
            time_limit: None,
            make: || {
                Box::new(ForkServer::new(ForkServerConfig {
                    executions: 21,
                    crash_every: 7,
                    ..ForkServerConfig::default()
                }))
            },
        },
        Scenario {
            name: "privsep",
            cores: 1,
            time_limit: None,
            make: || {
                Box::new(Privsep::new(PrivsepConfig {
                    messages: 15,
                    hostile_every: 5,
                    ..PrivsepConfig::default()
                }))
            },
        },
        Scenario {
            name: "kill_demo",
            cores: 2,
            time_limit: None,
            make: || Box::new(KillDemo { phase: 0 }),
        },
    ]
}

fn thread_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "thread_pool_1core",
            cores: 1,
            time_limit: None,
            make: || {
                Box::new(PoolMain {
                    n: 6,
                    spawned: 0,
                    tids: Vec::new(),
                    joined: 0,
                })
            },
        },
        Scenario {
            name: "thread_pool_4core",
            cores: 4,
            time_limit: None,
            make: || {
                Box::new(PoolMain {
                    n: 6,
                    spawned: 0,
                    tids: Vec::new(),
                    joined: 0,
                })
            },
        },
        Scenario {
            name: "fork_from_pool_with_time_limit",
            cores: 2,
            time_limit: Some(1e9),
            make: || Box::new(ForkFromPool { phase: 0 }),
        },
        Scenario {
            name: "bad_join",
            cores: 1,
            time_limit: None,
            make: || Box::new(BadJoin),
        },
        Scenario {
            name: "mtkv_snapshot",
            cores: 2,
            time_limit: None,
            make: || {
                Box::new(MtKv::new(MtKvConfig {
                    workers: 4,
                    rounds: 8,
                    dump_path: "mtkv.snap".into(),
                }))
            },
        },
    ]
}

#[test]
fn engines_agree_on_fork_pattern_programs() {
    for s in fork_pattern_scenarios() {
        assert_engines_agree(&s);
    }
}

#[test]
fn engines_agree_on_thread_programs() {
    for s in thread_scenarios() {
        assert_engines_agree(&s);
    }
}

// ---------------------------------------------------------------------------
// Pipelined fork: the child runs INSIDE the background-copy window, so
// the replay contract must additionally cover copy-engine firings and
// demand-priority jumps interleaving with thread execution.
// ---------------------------------------------------------------------------

const TOUCH_PAGES: u64 = 80;
const TOUCH_PAGE: u64 = 4096;

/// Parent populates an 80-page heap and forks (pipelined). The child
/// strides across the heap while the copy engine streams it in — some
/// touches land on already-copied pages, some jump the queue — and the
/// parent dirties pages behind the window (CoW off the shared frames).
#[derive(Clone)]
struct PipeTouch {
    phase: u8,
    step: u64,
}

impl Program for PipeTouch {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (0, Resume::Start) => {
                let arr = env.malloc(TOUCH_PAGES * TOUCH_PAGE).expect("heap");
                for p in 0..TOUCH_PAGES {
                    env.store_u64(
                        &arr.with_addr(arr.base() + p * TOUCH_PAGE).expect("cursor"),
                        0xC0DE + p,
                    )
                    .expect("init");
                }
                env.set_reg(4, arr).expect("register");
                self.phase = 1;
                StepOutcome::Fork
            }
            (1, Resume::Forked(ForkResult::Child)) => {
                self.phase = 2;
                StepOutcome::Block(BlockingCall::Yield)
            }
            (1, Resume::Forked(ForkResult::Parent(_))) => {
                self.phase = 3;
                StepOutcome::Block(BlockingCall::Yield)
            }
            (2, Resume::Ret(Ok(_))) => {
                // One scattered touch per step, yielding in between so
                // copy-engine firings interleave with the reads.
                let arr = env.reg(4).expect("heap register");
                let p = (self.step * 37 + 11) % TOUCH_PAGES;
                let v = env
                    .load_u64(&arr.with_addr(arr.base() + p * TOUCH_PAGE).expect("cursor"))
                    .expect("readable");
                if v != 0xC0DE + p {
                    return StepOutcome::Exit(1);
                }
                // Enough per-step work that the child outlives the
                // background stream: the window must CLOSE while the
                // child still runs, or no PipelineEvent is ever logged.
                env.cpu_ops(5000);
                self.step += 1;
                if self.step < 64 {
                    StepOutcome::Block(BlockingCall::Yield)
                } else {
                    StepOutcome::Exit(0)
                }
            }
            (3, Resume::Ret(Ok(_))) => {
                let arr = env.reg(4).expect("heap register");
                for p in (0..TOUCH_PAGES).step_by(5) {
                    env.store_u64(
                        &arr.with_addr(arr.base() + p * TOUCH_PAGE).expect("cursor"),
                        p,
                    )
                    .expect("writable");
                }
                self.phase = 4;
                StepOutcome::Block(BlockingCall::Wait)
            }
            (4, Resume::Ret(Ok(status))) => {
                StepOutcome::Exit(if (status >> 32) as i32 == 0 { 0 } else { 1 })
            }
            _ => StepOutcome::Exit(9),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn engines_agree_on_pipelined_fork() {
    use ufork_repro::abi::CopyStrategy;
    use ufork_repro::ufork::WalkMode;
    for cores in [1usize, 2, 4] {
        let run = |engine| {
            let os = UforkOs::new(UforkConfig {
                phys_mib: 256,
                strategy: CopyStrategy::Full,
                walk: WalkMode::Pipelined,
                ..UforkConfig::default()
            });
            run_machine(
                os,
                &ImageSpec::with_heap("pipe-diff", TOUCH_PAGES * TOUCH_PAGE + 64 * 1024),
                cores,
                None,
                engine,
                Box::new(PipeTouch { phase: 0, step: 0 }),
            )
        };
        let lockstep = run(SchedEngine::Lockstep);
        let event = run(SchedEngine::EventDriven);
        assert_eq!(
            lockstep, event,
            "engines diverged on pipelined fork ({cores} cores)"
        );
        assert_eq!(lockstep.exit_code, Some(0), "workload failed");
        assert!(
            !lockstep.pipelines.is_empty(),
            "no background-copy window was opened and closed"
        );
        assert!(
            lockstep.counters.pipeline_chunks_jumped > 0,
            "child touches never jumped the copy queue"
        );
        for (_, committed, done, pages) in &lockstep.pipelines {
            assert!(
                f64::from_bits(*done) >= f64::from_bits(*committed),
                "copy completed before its fork committed"
            );
            assert!(*pages > 0, "empty pipeline window was logged");
        }
    }
}

#[test]
fn engines_agree_across_core_counts() {
    // The same fork-heavy scenario swept over machine widths: the
    // replay contract must hold regardless of how many lanes exist.
    for cores in [1, 2, 4] {
        let s = Scenario {
            name: "fork_server_cores_sweep",
            cores,
            time_limit: None,
            make: || {
                Box::new(ForkServer::new(ForkServerConfig {
                    executions: 10,
                    ..ForkServerConfig::default()
                }))
            },
        };
        assert_engines_agree(&s);
    }
}
