//! End-to-end tests: full workloads on the full machine, on all three
//! operating systems.

use ufork_repro::abi::{ImageSpec, IsolationLevel, Pid};
use ufork_repro::baselines::{mono, nephele, BaselineConfig};
use ufork_repro::exec::{Machine, MachineConfig};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::hello::HelloWorld;
use ufork_repro::workloads::redis::{rdb_parse, RedisConfig, RedisServer};
use ufork_repro::workloads::ubench::{Context1, SpawnBench};

fn ufork_machine(cores: usize) -> Machine<UforkOs> {
    let cfg = UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    };
    Machine::new(
        UforkOs::new(cfg),
        MachineConfig {
            cores,
            ..MachineConfig::default()
        },
    )
}

#[test]
fn hello_world_forks_on_ufork() {
    let mut m = ufork_machine(1);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.fork_log().len(), 1);
    assert_eq!(m.exit_log().len(), 2);
    let f = m.fork_log()[0];
    assert!(f.latency_ns > 0.0);
    // The paper's anchor: ~54 μs for a minimal μFork fork.
    assert!(
        f.latency_ns > 30_000.0 && f.latency_ns < 90_000.0,
        "μFork hello fork latency {}ns should be in the tens of µs",
        f.latency_ns
    );
}

#[test]
fn hello_world_forks_on_all_oses() {
    // μFork.
    let mut mu = ufork_machine(1);
    let p1 = mu
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .unwrap();
    mu.run();
    assert_eq!(mu.exit_code(p1), Some(0));
    let lat_ufork = mu.fork_log()[0].latency_ns;

    // CheriBSD-like.
    let mut mc = Machine::new(mono(BaselineConfig::default()), MachineConfig::default());
    let p2 = mc
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .unwrap();
    mc.run();
    assert_eq!(mc.exit_code(p2), Some(0));
    let lat_mono = mc.fork_log()[0].latency_ns;

    // Nephele-like.
    let mut mn = Machine::new(nephele(BaselineConfig::default()), MachineConfig::default());
    let p3 = mn
        .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
        .unwrap();
    mn.run();
    assert_eq!(mn.exit_code(p3), Some(0));
    let lat_neph = mn.fork_log()[0].latency_ns;

    // Paper ordering: μFork ≪ CheriBSD ≪ Nephele.
    assert!(lat_ufork < lat_mono, "{lat_ufork} !< {lat_mono}");
    assert!(lat_mono < lat_neph, "{lat_mono} !< {lat_neph}");
    assert!(
        lat_neph / lat_ufork > 50.0,
        "Nephele should be orders of magnitude slower"
    );
}

#[test]
fn spawn_bench_runs_to_completion() {
    let mut m = ufork_machine(1);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(50)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.fork_log().len(), 50);
    assert_eq!(m.exit_log().len(), 51);
    assert!(m.now() > 0.0);
}

#[test]
fn context1_bounces_the_counter() {
    let mut m = ufork_machine(1);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(Context1::new(200)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "parent must exit cleanly");
    assert_eq!(m.exit_log().len(), 2);
    // Parent sees even values, child odd: one of the two observed ≥ limit.
    let parent_seen = m.program::<Context1>(pid).unwrap().seen;
    assert!(
        parent_seen >= 199,
        "counter must have reached the limit: {parent_seen}"
    );
    // Each round trip context-switches.
    assert!(m.counters().ctx_switches >= 100);
}

#[test]
fn redis_snapshot_dump_is_exact_under_all_strategies() {
    use ufork_repro::abi::CopyStrategy;
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        let rcfg = RedisConfig::sized(40, 2048);
        let ucfg = UforkConfig {
            strategy,
            phys_mib: 256,
            ..UforkConfig::default()
        };
        let mut m = Machine::new(UforkOs::new(ucfg), MachineConfig::default());
        let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
        let pid = m
            .spawn(&img, Box::new(RedisServer::new(rcfg.clone())))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0), "{strategy:?}");
        let dump = m
            .vfs()
            .file_contents("dump.rdb")
            .unwrap_or_else(|| panic!("{strategy:?}: dump.rdb missing"));
        let (entries, checksum_ok) = rdb_parse(dump).expect("parseable dump");
        assert!(checksum_ok, "{strategy:?}: checksum");
        assert_eq!(entries.len(), 40, "{strategy:?}");
        // Every key present with the expected deterministic payload.
        let mut keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k, format!("key:{i:012}").as_bytes());
        }
        for (k, v) in &entries {
            let i: u64 = String::from_utf8_lossy(&k[4..]).parse().unwrap();
            let b = (i as u8).wrapping_mul(31).wrapping_add(7);
            assert_eq!(v.len(), 2048);
            assert!(v
                .iter()
                .enumerate()
                .all(|(j, x)| *x == b.wrapping_add((j % 251) as u8)));
        }
    }
}

#[test]
fn redis_snapshot_is_consistent_despite_parent_writes() {
    // The parent dirties values WHILE the child saves; the dump must
    // reflect the at-fork state (CoW semantics), i.e. still parse with a
    // valid checksum and original payloads.
    let mut rcfg = RedisConfig::sized(20, 4096);
    rcfg.parent_writes_during_save = 10;
    let ucfg = UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    };
    let mut m = Machine::new(UforkOs::new(ucfg), MachineConfig::default());
    let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
    let pid = m.spawn(&img, Box::new(RedisServer::new(rcfg))).unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    let dump = m.vfs().file_contents("dump.rdb").expect("dump exists");
    let (entries, checksum_ok) = rdb_parse(dump).expect("parseable");
    assert!(checksum_ok);
    assert_eq!(entries.len(), 20);
    for (k, v) in &entries {
        let i: u64 = String::from_utf8_lossy(&k[4..]).parse().unwrap();
        let b = (i as u8).wrapping_mul(31).wrapping_add(7);
        assert!(
            v.iter()
                .enumerate()
                .all(|(j, x)| *x == b.wrapping_add((j % 251) as u8)),
            "value of {} must be the at-fork snapshot, not the parent's 0xEE overwrite",
            String::from_utf8_lossy(k)
        );
    }
}

#[test]
fn redis_dump_identical_across_oses() {
    let rcfg = RedisConfig::sized(25, 1024);
    let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());

    let mut mu = ufork_machine(1);
    let p1 = mu
        .spawn(&img, Box::new(RedisServer::new(rcfg.clone())))
        .unwrap();
    mu.run();
    assert_eq!(mu.exit_code(p1), Some(0));
    let d1 = mu.vfs().file_contents("dump.rdb").unwrap().to_vec();

    let bc = BaselineConfig {
        phys_mib: 256,
        ..BaselineConfig::default()
    };
    let mut mc = Machine::new(mono(bc), MachineConfig::default());
    let p2 = mc.spawn(&img, Box::new(RedisServer::new(rcfg))).unwrap();
    mc.run();
    assert_eq!(mc.exit_code(p2), Some(0));
    let d2 = mc.vfs().file_contents("dump.rdb").unwrap().to_vec();

    assert_eq!(d1, d2, "identical workload must produce identical dumps");
}

#[test]
fn isolation_violations_never_occur_in_normal_runs() {
    let mut m = ufork_machine(2);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(20)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    assert_eq!(m.counters().isolation_violations, 0);
}

#[test]
fn tocttou_protection_costs_show_up() {
    // Same Redis run, Full vs Fault isolation: Full must be slower and
    // must have copied TOCTTOU bytes.
    let rcfg = RedisConfig::sized(20, 4096);
    let img = ImageSpec::with_heap("redis", rcfg.heap_bytes());
    let mut times = Vec::new();
    let mut toct = Vec::new();
    for iso in [IsolationLevel::Full, IsolationLevel::Fault] {
        let ucfg = UforkConfig {
            isolation: iso,
            phys_mib: 256,
            ..UforkConfig::default()
        };
        let mut m = Machine::new(UforkOs::new(ucfg), MachineConfig::default());
        let pid = m
            .spawn(&img, Box::new(RedisServer::new(rcfg.clone())))
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        times.push(m.now());
        toct.push(m.counters().tocttou_bytes);
    }
    assert!(times[0] > times[1], "TOCTTOU protection must cost time");
    assert!(toct[0] > 0 && toct[1] == 0);
}

#[test]
fn fork_failure_surfaces_as_error_not_crash() {
    // Tiny physical memory: fork cannot allocate its eager pages.
    let ucfg = UforkConfig {
        phys_mib: 1,
        ..UforkConfig::default()
    };
    let mut m = Machine::new(UforkOs::new(ucfg), MachineConfig::default());
    // Spawn may already fail; if it succeeds, fork must fail gracefully.
    if let Ok(pid) = m.spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking())) {
        m.run();
        // The program exits (possibly with an error code) — no panic, no
        // hang.
        assert!(m.is_finished(pid));
    }
}

#[test]
fn machine_accounting_is_deterministic() {
    let run = || {
        let mut m = ufork_machine(2);
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(10)))
            .unwrap();
        m.run();
        (m.now(), *m.counters(), m.exit_code(pid))
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn pids_are_distinct_and_sequential() {
    let mut m = ufork_machine(1);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(3)))
        .unwrap();
    assert_eq!(pid, Pid(1));
    m.run();
    let children: Vec<Pid> = m.fork_log().iter().map(|f| f.child).collect();
    assert_eq!(children, vec![Pid(2), Pid(3), Pid(4)]);
}
