//! Stress/determinism property test: random programs over the full
//! machine + μFork kernel must always terminate, produce identical
//! results on re-run (determinism), and never breach isolation.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use std::any::Any;

use ufork_repro::abi::CopyStrategy;
use ufork_repro::abi::{BlockingCall, Env, ForkResult, ImageSpec, Program, Resume, StepOutcome};
use ufork_repro::exec::{Machine, MachineConfig};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_testkit::{forall, shrink_vec, PropConfig, Rng};

/// The random program's instruction set. Each process executes the same
/// script but branches on fork results, giving tree-shaped executions.
#[derive(Clone, Copy, Debug)]
enum Instr {
    Compute(u16),
    Alloc(u16),
    WriteHeap(u16),
    StorePtr,
    LoadPtr,
    Fork,
    Sleep(u16),
    YieldNow,
    WriteFile,
}

fn gen_instr(rng: &mut Rng) -> Instr {
    match rng.below(9) {
        0 => Instr::Compute(rng.next_u64() as u16),
        1 => Instr::Alloc(rng.range(16, 2048) as u16),
        2 => Instr::WriteHeap(rng.next_u64() as u16),
        3 => Instr::StorePtr,
        4 => Instr::LoadPtr,
        5 => Instr::Fork,
        6 => Instr::Sleep(rng.range(1, 1000) as u16),
        7 => Instr::YieldNow,
        _ => Instr::WriteFile,
    }
}

#[derive(Clone)]
struct Script {
    instrs: Vec<Instr>,
    pc: usize,
    depth: u8,
    outstanding: u32,
}

const SLOT_REG: usize = 12;
const LAST_REG: usize = 13;

impl Script {
    fn new(instrs: Vec<Instr>) -> Script {
        Script {
            instrs,
            pc: 0,
            depth: 0,
            outstanding: 0,
        }
    }

    fn run_from(&mut self, env: &mut dyn Env) -> StepOutcome {
        while self.pc < self.instrs.len() {
            let i = self.instrs[self.pc];
            self.pc += 1;
            match i {
                Instr::Compute(n) => env.cpu_ops(u64::from(n)),
                Instr::Alloc(n) => {
                    if let Ok(c) = env.malloc(u64::from(n)) {
                        let _ = env.set_reg(LAST_REG, c);
                    }
                }
                Instr::WriteHeap(v) => {
                    if let Ok(c) = env.reg(LAST_REG) {
                        let at = c.with_addr(c.base()).expect("cursor");
                        let _ = env.store_u64(&at, u64::from(v));
                    }
                }
                Instr::StorePtr => {
                    if let (Ok(slotless), Ok(val)) = (env.malloc(16), env.reg(LAST_REG)) {
                        let at = slotless.with_addr(slotless.base()).expect("cursor");
                        if env.store_cap(&at, &val).is_ok() {
                            let _ = env.set_reg(SLOT_REG, slotless);
                        }
                    }
                }
                Instr::LoadPtr => {
                    if let Ok(slot) = env.reg(SLOT_REG) {
                        let at = slot.with_addr(slot.base()).expect("cursor");
                        if let Ok(Some(v)) = env.load_cap(&at) {
                            // Touch the target to exercise CoW/CoPA.
                            let t = v.with_addr(v.base()).expect("cursor");
                            let _ = env.load_u64(&t);
                        }
                    }
                }
                Instr::Fork if self.depth >= 2 => {}
                Instr::Fork => {
                    self.outstanding += 1;
                    return StepOutcome::Fork;
                }
                Instr::Sleep(ns) => {
                    return StepOutcome::Block(BlockingCall::Sleep { ns: f64::from(ns) })
                }
                Instr::YieldNow => return StepOutcome::Block(BlockingCall::Yield),
                Instr::WriteFile => {
                    if let Ok(c) = env.reg(LAST_REG) {
                        if let Ok(fd) = env.sys_open("stress.log", true) {
                            let at = c.with_addr(c.base()).expect("cursor");
                            let _ = env.sys_write(fd, &at, c.len().min(64));
                            let _ = env.sys_close(fd);
                        }
                    }
                }
            }
        }
        if self.outstanding > 0 {
            return StepOutcome::Block(BlockingCall::Wait);
        }
        StepOutcome::Exit(0)
    }
}

impl Program for Script {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => self.run_from(env),
            Resume::Forked(ForkResult::Child) => {
                self.depth += 1;
                self.outstanding = 0;
                // The child skips ahead a little (diverging executions).
                self.pc = (self.pc + 1).min(self.instrs.len());
                self.run_from(env)
            }
            Resume::Forked(ForkResult::Parent(_)) => self.run_from(env),
            Resume::Ret(Ok(_)) => {
                if self.pc >= self.instrs.len() {
                    self.outstanding = self.outstanding.saturating_sub(1);
                    if self.outstanding > 0 {
                        return StepOutcome::Block(BlockingCall::Wait);
                    }
                    return StepOutcome::Exit(0);
                }
                self.run_from(env)
            }
            Resume::Ret(Err(_)) => {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.run_from(env)
            }
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn run_machine(
    instrs: &[Instr],
    strategy: CopyStrategy,
    cores: usize,
) -> (Option<i32>, f64, u64, u64, usize) {
    let os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        strategy,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(Script::new(instrs.to_vec())),
        )
        .unwrap();
    m.run();
    (
        m.exit_code(pid),
        m.now(),
        m.counters().forks,
        m.counters().isolation_violations,
        m.exit_log().len(),
    )
}

#[test]
fn random_programs_terminate_deterministically() {
    forall(
        "random_programs_terminate_deterministically",
        &PropConfig::from_env(48),
        |rng| {
            let n = rng.range(1, 24) as usize;
            let instrs: Vec<Instr> = (0..n).map(|_| gen_instr(rng)).collect();
            let strategy_ix = rng.below(3) as u8;
            let cores = rng.range(1, 4) as usize;
            (instrs, strategy_ix, cores)
        },
        |(instrs, ix, cores)| {
            shrink_vec(instrs)
                .into_iter()
                .map(|i| (i, *ix, *cores))
                .collect()
        },
        |(instrs, strategy_ix, cores)| {
            let strategy = match strategy_ix % 3 {
                0 => CopyStrategy::Full,
                1 => CopyStrategy::CoA,
                _ => CopyStrategy::CoPA,
            };
            let a = run_machine(instrs, strategy, *cores);
            let b = run_machine(instrs, strategy, *cores);
            // Terminates (run() returned) with the root exited; blocking
            // forever is impossible: the script always ends in Exit.
            if a.0 != Some(0) {
                return Err(format!("root must exit cleanly, got {:?}", a.0));
            }
            // Deterministic: identical timing, forks, and exits.
            if a.1 != b.1 {
                return Err(format!("end time not reproducible: {} vs {}", a.1, b.1));
            }
            if a.2 != b.2 || a.4 != b.4 {
                return Err("fork/exit counts not reproducible".into());
            }
            // Never an isolation violation from a well-behaved program.
            if a.3 != 0 {
                return Err(format!("{} isolation violations", a.3));
            }
            // All forked processes exited.
            if a.4 as u64 != a.2 + 1 {
                return Err(format!("{} exits for {} forks", a.4, a.2));
            }
            Ok(())
        },
    );
}

/// Fork-storm soak under memory pressure with `FallbackPolicy::Degrade`:
/// on a small machine, every fork must either succeed at the requested
/// strategy, succeed with a degraded strategy (visible in the
/// `forks_degraded` counter), or fail with a clean `NoMem` — never
/// anything else, and never a crash. Tearing the storm down must restore
/// the exact pre-storm frame count.
#[test]
fn fork_storm_under_pressure_degrades_then_fails_cleanly() {
    use ufork_repro::abi::{Errno, ImageSpec, Pid};
    use ufork_repro::exec::{Ctx, MemOs};
    use ufork_repro::mem::PAGE_SIZE;
    use ufork_repro::ufork::FallbackPolicy;

    const HEAP_PAGES: u64 = 16;
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 4,
        strategy: CopyStrategy::Full,
        fallback: FallbackPolicy::Degrade,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let image = ImageSpec::with_heap("storm", HEAP_PAGES * PAGE_SIZE + 64 * 1024);
    os.spawn(&mut ctx, Pid(1), &image).unwrap();
    // A touched, capability-dense parent heap: Full forks are expensive,
    // so the ladder has real frame demand to degrade away from.
    let arr = os.malloc(&mut ctx, Pid(1), HEAP_PAGES * PAGE_SIZE).unwrap();
    for p in 0..HEAP_PAGES {
        let at = arr.with_addr(arr.base() + p * PAGE_SIZE).unwrap();
        os.store(&mut ctx, Pid(1), &at, &(0xBEEF + p).to_le_bytes())
            .unwrap();
        let slot = arr.with_addr(arr.base() + p * PAGE_SIZE + 64).unwrap();
        os.store_cap(&mut ctx, Pid(1), &slot, &at).unwrap();
    }
    let baseline = os.allocated_frames();

    let mut children = Vec::new();
    let mut hit_nomem = false;
    for n in 2..=1024u32 {
        match os.fork(&mut ctx, Pid(1), Pid(n)) {
            Ok(()) => children.push(Pid(n)),
            Err(Errno::NoMem) => {
                hit_nomem = true;
                break;
            }
            Err(e) => panic!("fork #{n} under pressure: expected Ok or NoMem, got {e:?}"),
        }
    }
    assert!(
        hit_nomem,
        "storm of {} forks never exhausted memory",
        children.len()
    );
    assert!(
        ctx.counters.forks_degraded > 0,
        "no fork degraded before exhaustion (storm size {})",
        children.len()
    );
    assert!(
        !children.is_empty(),
        "not a single fork fit before exhaustion"
    );
    // The refused fork left nothing behind.
    let (dangling, unaccounted) = os.audit_kernel();
    assert_eq!((dangling, unaccounted), (0, 0), "audit after refused fork");

    // Every surviving child is a real, readable process.
    let last = *children.last().unwrap();
    let c_root = os.reg(last, 0).unwrap();
    let p_root = os.reg(Pid(1), 0).unwrap();
    let delta = c_root.base() as i64 - p_root.base() as i64;
    let c_arr = arr.rebase(delta, &c_root).unwrap();
    let mut b = [0u8; 8];
    os.load(
        &mut ctx,
        last,
        &c_arr.with_addr(c_arr.base()).unwrap(),
        &mut b,
    )
    .unwrap();
    assert_eq!(u64::from_le_bytes(b), 0xBEEF, "child heap after storm");

    // Teardown releases every frame the storm took.
    for pid in children {
        os.destroy(&mut ctx, pid);
    }
    assert_eq!(
        os.allocated_frames(),
        baseline,
        "storm teardown did not restore the frame count"
    );
    assert_eq!(os.audit_kernel(), (0, 0), "audit after storm teardown");
    // And the parent still works.
    os.load(
        &mut ctx,
        Pid(1),
        &arr.with_addr(arr.base()).unwrap(),
        &mut b,
    )
    .unwrap();
    assert_eq!(u64::from_le_bytes(b), 0xBEEF, "parent heap after storm");
}

/// The same program observes the same OUTPUT (file contents) under every
/// copy strategy — strategies must be semantically invisible.
#[test]
fn strategies_agree_on_program_output() {
    forall(
        "strategies_agree_on_program_output",
        &PropConfig::from_env(48),
        |rng| {
            let n = rng.range(1, 20) as usize;
            (0..n).map(|_| gen_instr(rng)).collect::<Vec<Instr>>()
        },
        |instrs| shrink_vec(instrs),
        |instrs| {
            let mut dumps = Vec::new();
            for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
                let os = UforkOs::new(UforkConfig {
                    phys_mib: 128,
                    strategy,
                    ..UforkConfig::default()
                });
                let mut m = Machine::new(os, MachineConfig::default());
                let pid = m
                    .spawn(
                        &ImageSpec::hello_world(),
                        Box::new(Script::new(instrs.clone())),
                    )
                    .unwrap();
                m.run();
                if m.exit_code(pid) != Some(0) {
                    return Err(format!("{strategy:?}: root exit {:?}", m.exit_code(pid)));
                }
                dumps.push(m.vfs().file_contents("stress.log").map(<[u8]>::to_vec));
            }
            if dumps[0] != dumps[1] {
                return Err("Full vs CoA output diverged".into());
            }
            if dumps[1] != dumps[2] {
                return Err("CoA vs CoPA output diverged".into());
            }
            Ok(())
        },
    );
}
