//! Property tests of the fork-storm determinism contract (runs on the
//! in-repo `ufork-testkit` harness; default-on `props` feature):
//!
//! * same seed + same core count ⇒ the storm's complete event history is
//!   bit-identical — fork/exit log digest, final simulated time, and the
//!   p50/p99 fork percentiles all match to the bit;
//! * a different core count may (and generally does) produce a different
//!   schedule, but the storm must still complete every child and tear
//!   down leak-free.
#![cfg(feature = "props")]

use ufork_repro::abi::{CopyStrategy, ImageSpec};
use ufork_repro::exec::{Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs};
use ufork_repro::workloads::storm::{summarize, StormConfig, StormReport, StormZygote};
use ufork_testkit::{forall, no_shrink, PropConfig, Rng};

#[derive(Clone, Copy, Debug)]
struct Case {
    seed: u64,
    children: u32,
    cores: usize,
    strategy: CopyStrategy,
}

fn gen_case(rng: &mut Rng) -> Case {
    Case {
        seed: rng.next_u64(),
        children: 50 + (rng.below(151) as u32),
        cores: [1, 2, 4][rng.below(3) as usize],
        strategy: [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA]
            [rng.below(3) as usize],
    }
}

/// Runs one storm; returns the report and the post-teardown frame count.
fn run_once(c: &Case, cores: usize) -> (StormReport, u32) {
    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy: c.strategy,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(StormZygote::new(StormConfig::standard(c.children, c.seed))),
        )
        .expect("spawn zygote");
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "zygote failed: {c:?}");
    let z = m.program::<StormZygote>(pid).expect("zygote state");
    let report = summarize(pid, m.fork_log(), m.exit_log(), z, m.now());
    (report, m.os.allocated_frames())
}

#[test]
fn same_seed_same_cores_is_bit_identical() {
    forall(
        "same_seed_same_cores_is_bit_identical",
        &PropConfig::from_env(24),
        gen_case,
        no_shrink,
        |c| {
            let (a, leaked_a) = run_once(c, c.cores);
            let (b, leaked_b) = run_once(c, c.cores);
            if a.completed != c.children {
                return Err(format!("lost children: {} of {}", a.completed, c.children));
            }
            if (leaked_a, leaked_b) != (0, 0) {
                return Err(format!("leaked frames: {leaked_a} / {leaked_b}"));
            }
            if a.digest != b.digest {
                return Err(format!(
                    "event-log digest diverged: {:016x} vs {:016x}",
                    a.digest, b.digest
                ));
            }
            if a.final_ns.to_bits() != b.final_ns.to_bits() {
                return Err(format!(
                    "final sim time diverged: {} vs {}",
                    a.final_ns, b.final_ns
                ));
            }
            if a.p50_fork_ns.to_bits() != b.p50_fork_ns.to_bits()
                || a.p99_fork_ns.to_bits() != b.p99_fork_ns.to_bits()
            {
                return Err(format!(
                    "percentiles diverged: p50 {} vs {}, p99 {} vs {}",
                    a.p50_fork_ns, b.p50_fork_ns, a.p99_fork_ns, b.p99_fork_ns
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn different_core_count_still_completes_leak_free() {
    forall(
        "different_core_count_still_completes_leak_free",
        &PropConfig::from_env(12),
        gen_case,
        no_shrink,
        |c| {
            let other = if c.cores == 1 { 2 } else { c.cores / 2 };
            let (a, leaked_a) = run_once(c, c.cores);
            let (b, leaked_b) = run_once(c, other);
            if a.completed != c.children || b.completed != c.children {
                return Err(format!(
                    "lost children: {} / {} of {}",
                    a.completed, b.completed, c.children
                ));
            }
            if (leaked_a, leaked_b) != (0, 0) {
                return Err(format!(
                    "leaked frames: {leaked_a} ({} cores) / {leaked_b} ({other} cores)",
                    c.cores
                ));
            }
            Ok(())
        },
    );
}
