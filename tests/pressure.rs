//! Memory-pressure survival tier: end-to-end properties of the
//! background reclaim daemon and the OOM last resort.
//!
//! * **Victim determinism** — with `oom_kill` on and physical memory too
//!   small for the storm, the machine kills victims; the same seed must
//!   produce the bit-identical kill sequence (victims, times, resident
//!   sizes) and event history.
//! * **Kill equivalence** — after an OOM reap, the surviving system must
//!   be indistinguishable from one in which the victim was never forked:
//!   same allocated frames, bitwise-equal heaps, balanced audit.
//! * **Scrub invisibility** — a run that interleaves background reclaim
//!   passes with fork/destroy churn must end with the exact same heap
//!   bytes and frame counts as one that never scrubbed: pre-zeroing is
//!   a latency optimization, never a semantic one.
//! * **High-occupancy soak** — a churning storm swept across physical
//!   sizes that keep the allocator Normal, push it over the high
//!   watermark, and pin it near exhaustion must complete every child
//!   with zero storm-visible fork failures, leak nothing, and keep the
//!   new counters consistent with the logs (`oom_kills == oom_log`,
//!   kills all visible as code-137 exits).
//! * **Counter/trace consistency** — driving the daemon and a reap under
//!   a traced context must produce exactly one `mem/reclaim_bg` span per
//!   background pass and one `fork/oom` span per reap, with span time
//!   matching the kernel charges.

use ufork_repro::abi::{CopyStrategy, ImageSpec, Pid};
use ufork_repro::cheri::Capability;
use ufork_repro::exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_repro::ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_repro::workloads::storm::{StormConfig, StormZygote};

/// Heap slots the OS-level tests allocate and stamp in the parent.
const SLOTS: u64 = 6;

fn build(phys_mib: u32, reclaim_daemon: bool) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib,
        strategy: CopyStrategy::Full,
        walk: WalkMode::Serial,
        reclaim_daemon,
        ..UforkConfig::default()
    })
}

/// Spawns Pid(1) and stamps `SLOTS` heap slots with recognizable values.
fn setup(os: &mut UforkOs, ctx: &mut Ctx) -> Vec<Capability> {
    os.spawn(ctx, Pid(1), &ImageSpec::hello_world())
        .expect("spawn");
    let mut caps = Vec::new();
    for i in 0..SLOTS {
        let c = os.malloc(ctx, Pid(1), 512).expect("malloc");
        os.store(ctx, Pid(1), &c, &(0xB00 + i).to_le_bytes())
            .expect("store");
        caps.push(c);
    }
    caps
}

/// Reads one slot of `pid`'s heap through the parent capability,
/// rebased into the child's region.
fn read_slot(os: &mut UforkOs, ctx: &mut Ctx, pid: Pid, cap: &Capability) -> u64 {
    let cc = if pid == Pid(1) {
        *cap
    } else {
        let p_root = os.reg(Pid(1), 0).expect("parent root");
        let c_root = os.reg(pid, 0).expect("child root");
        let delta = c_root.base() as i64 - p_root.base() as i64;
        cap.rebase(delta, &c_root).expect("rebase")
    };
    let mut b = [0u8; 8];
    os.load(ctx, pid, &cc, &mut b).expect("load");
    u64::from_le_bytes(b)
}

/// Full observable state of a process's stamped heap.
fn heap_image(os: &mut UforkOs, ctx: &mut Ctx, pid: Pid, caps: &[Capability]) -> Vec<u64> {
    caps.iter().map(|c| read_slot(os, ctx, pid, c)).collect()
}

// ---- kill equivalence ---------------------------------------------------

/// After `oom_reap`, the system must be indistinguishable from one where
/// the victim was never forked: frames, audit, and every survivor's heap
/// agree with a run that skipped the victim entirely.
#[test]
fn post_kill_state_equals_victim_never_forked() {
    // Run A: fork victim (Pid 2), fork survivor (Pid 3), reap the
    // victim, fork one more child (Pid 4).
    let mut os_a = build(64, false);
    let mut ctx_a = Ctx::new();
    let caps_a = setup(&mut os_a, &mut ctx_a);
    os_a.fork(&mut ctx_a, Pid(1), Pid(2)).expect("fork victim");
    os_a.fork(&mut ctx_a, Pid(1), Pid(3))
        .expect("fork survivor");
    os_a.oom_reap(&mut ctx_a, Pid(2)).expect("reap victim");
    assert!(
        os_a.region_of(Pid(2)).is_err(),
        "victim still present after reap"
    );
    os_a.fork(&mut ctx_a, Pid(1), Pid(4))
        .expect("fork after kill");

    // Run B: identical, except the victim is never forked.
    let mut os_b = build(64, false);
    let mut ctx_b = Ctx::new();
    let caps_b = setup(&mut os_b, &mut ctx_b);
    os_b.fork(&mut ctx_b, Pid(1), Pid(3))
        .expect("fork survivor");
    os_b.fork(&mut ctx_b, Pid(1), Pid(4)).expect("fork after");

    assert_eq!(
        os_a.allocated_frames(),
        os_b.allocated_frames(),
        "kill did not return the victim's frames exactly"
    );
    for pid in [Pid(1), Pid(3), Pid(4)] {
        assert_eq!(
            heap_image(&mut os_a, &mut ctx_a, pid, &caps_a),
            heap_image(&mut os_b, &mut ctx_b, pid, &caps_b),
            "pid {} heap diverged from the never-forked run",
            pid.0
        );
    }
    for (label, os) in [("killed", &os_a), ("never-forked", &os_b)] {
        let (dangling, unaccounted) = os.audit_kernel();
        assert_eq!(
            (dangling, unaccounted),
            (0, 0),
            "{label} run fails the kernel audit"
        );
    }
}

// ---- scrub invisibility -------------------------------------------------

/// Interleaving background reclaim with fork/destroy churn must be
/// invisible to every observable output — the scrubbed run just serves
/// pre-zeroed frames (and must actually record magazine hits).
#[test]
fn reclaim_daemon_on_equals_daemon_off() {
    let run = |daemon: bool| -> (Vec<u64>, Vec<u64>, u32, u64, u64) {
        let mut os = build(64, daemon);
        let mut ctx = Ctx::new();
        let caps = setup(&mut os, &mut ctx);
        if daemon {
            // Force elevated pressure so the daemon has a reason to run
            // (64 MiB = 16384 frames).
            os.set_pressure_watermarks(8_192, 16_384);
        }
        for round in 0..4u32 {
            let child = Pid(2 + round);
            os.fork(&mut ctx, Pid(1), child).expect("churn fork");
            os.destroy(&mut ctx, child);
            if daemon {
                loop {
                    match os.reclaim_step(&mut ctx) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) => panic!("reclaim pass failed: {e:?}"),
                    }
                }
            }
        }
        os.fork(&mut ctx, Pid(1), Pid(9)).expect("final fork");
        let parent = heap_image(&mut os, &mut ctx, Pid(1), &caps);
        let child = heap_image(&mut os, &mut ctx, Pid(9), &caps);
        let (dangling, unaccounted) = os.audit_kernel();
        assert_eq!((dangling, unaccounted), (0, 0), "audit (daemon={daemon})");
        (
            parent,
            child,
            os.allocated_frames(),
            ctx.counters.magazine_hits,
            ctx.counters.frames_prezeroed,
        )
    };
    let (p_on, c_on, frames_on, hits_on, prezeroed_on) = run(true);
    let (p_off, c_off, frames_off, hits_off, _) = run(false);
    assert_eq!(p_on, p_off, "parent heap diverged under the daemon");
    assert_eq!(c_on, c_off, "child heap diverged under the daemon");
    assert_eq!(frames_on, frames_off, "frame accounting diverged");
    assert_eq!(hits_off, 0, "daemon-off run cannot hit magazines");
    assert!(
        prezeroed_on > 0 && hits_on > 0,
        "daemon run never exercised the magazines \
         (prezeroed {prezeroed_on}, hits {hits_on})"
    );
}

// ---- counter/trace consistency -----------------------------------------

/// One `mem/reclaim_bg` span per background pass, one `fork/oom` span
/// per victim teardown, and the spans' kernel time is real charge time.
#[test]
fn reclaim_and_oom_spans_match_counters() {
    let mut os = build(64, true);
    let mut ctx = Ctx::traced(4096);
    setup(&mut os, &mut ctx);
    os.fork(&mut ctx, Pid(1), Pid(2)).expect("fork");
    os.destroy(&mut ctx, Pid(2));
    os.set_pressure_watermarks(8_192, 16_384);
    loop {
        match os.reclaim_step(&mut ctx) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => panic!("reclaim pass failed: {e:?}"),
        }
    }
    os.fork(&mut ctx, Pid(1), Pid(3)).expect("fork victim");
    os.oom_reap(&mut ctx, Pid(3)).expect("reap");
    ctx.phase_end();

    let phase = |name: &str| ctx.trace.phases().iter().find(|p| p.name == name);
    let bg = phase("mem/reclaim_bg").expect("no mem/reclaim_bg span recorded");
    assert_eq!(
        bg.count, ctx.counters.reclaim_background,
        "reclaim_bg spans vs reclaim_background counter"
    );
    assert!(bg.total_ns > 0.0, "reclaim_bg spans carried no kernel time");
    let oom = phase("fork/oom").expect("no fork/oom span recorded");
    assert_eq!(oom.count, 1, "exactly one reap ran");
    assert!(oom.total_ns > 0.0, "fork/oom span carried no kernel time");
    assert!(
        ctx.counters.frames_prezeroed > 0,
        "drain scrubbed no frames"
    );
}

// ---- OOM victim determinism under the machine ---------------------------

/// One storm run on a machine small enough to force OOM kills.
fn oom_storm(seed: u64) -> (Machine<UforkOs>, Pid, u32) {
    const CHILDREN: u32 = 80;
    let os = UforkOs::new(UforkConfig {
        // Too small for 80 concurrent fully-copied children: the fork
        // path must kill victims to keep admitting.
        phys_mib: 8,
        strategy: CopyStrategy::Full,
        walk: WalkMode::Serial,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores: 2,
            oom_kill: true,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(StormZygote::new(StormConfig::standard(CHILDREN, seed))),
        )
        .expect("spawn zygote");
    m.run();
    (m, pid, CHILDREN)
}

#[test]
fn oom_victim_selection_is_deterministic_per_seed() {
    for seed in [0xDEAD_0001u64, 0xDEAD_0002] {
        let (a, pid_a, children) = oom_storm(seed);
        let (b, pid_b, _) = oom_storm(seed);
        assert_eq!(
            a.exit_code(pid_a),
            Some(0),
            "zygote a failed (seed {seed:#x})"
        );
        assert_eq!(
            b.exit_code(pid_b),
            Some(0),
            "zygote b failed (seed {seed:#x})"
        );
        assert!(
            !a.oom_log().is_empty(),
            "storm never triggered an OOM kill (seed {seed:#x}) — shrink phys_mib"
        );
        let key = |m: &Machine<UforkOs>| {
            m.oom_log()
                .iter()
                .map(|e| (e.victim.0, e.requester.0, e.at.to_bits(), e.resident_pages))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "kill sequence diverged (seed {seed:#x})");
        assert_eq!(
            a.now().to_bits(),
            b.now().to_bits(),
            "final time diverged (seed {seed:#x})"
        );
        // The storm degraded instead of failing: every fork eventually
        // succeeded (the zygote saw no fork errors), and every launched
        // child was reaped — normally or by the killer.
        let z = a.program::<StormZygote>(pid_a).expect("zygote state");
        assert_eq!(z.retries, 0, "a fork failure leaked through the OOM path");
        assert_eq!(z.launched, children, "not every child was admitted");
        assert_eq!(z.completed, children, "not every child was reaped");
        assert_eq!(a.os.allocated_frames(), 0, "frames leaked after drain");
    }
}

// ---- high-occupancy storm soak ------------------------------------------

/// A churning storm (children exit while later ones are still being
/// born) swept across physical sizes: comfortably Normal, across the
/// high watermark, and pinned near exhaustion. Everything must complete
/// with zero storm-visible fork failures, the daemon and killer must
/// engage where expected, and the counters must agree with the logs.
/// One sweep point: which survival mechanisms the regime must engage.
struct Regime {
    label: &'static str,
    phys_mib: u32,
    /// Forced watermarks (`None` keeps the allocator defaults).
    watermarks: Option<(u32, u32)>,
    /// Service time; short services churn (children exit while later
    /// ones are still arriving), long ones pin occupancy at the peak.
    service_base_ns: f64,
    expect_reclaim: bool,
    /// Pre-zeroed frames must actually serve later forks. Only true in
    /// the churning regime: under kill-driven admission the retry fork
    /// consumes the victim's just-freed (still dirty) frames before the
    /// daemon can get to them, so hits are not guaranteed there.
    expect_hits: bool,
    expect_kills: bool,
}

const REGIMES: [Regime; 3] = [
    // Comfortably Normal: neither mechanism may engage.
    Regime {
        label: "normal",
        phys_mib: 256,
        watermarks: None,
        service_base_ns: 4e9,
        expect_reclaim: false,
        expect_hits: false,
        expect_kills: false,
    },
    // Churning across the high watermark: exits interleave with later
    // arrivals, the daemon scrubs each exit's frames during the arrival
    // gaps, and subsequent forks pop them pre-zeroed.
    Regime {
        label: "elevated-churn",
        phys_mib: 24,
        watermarks: Some((64, 5800)),
        service_base_ns: 2e6,
        expect_reclaim: true,
        expect_hits: true,
        expect_kills: false,
    },
    // Pinned far past capacity: admission only through the killer.
    Regime {
        label: "exhausted",
        phys_mib: 10,
        watermarks: None,
        service_base_ns: 4e9,
        expect_reclaim: true,
        expect_hits: false,
        expect_kills: true,
    },
];

#[test]
fn high_occupancy_storm_soak() {
    const CHILDREN: u32 = 120;
    for r in &REGIMES {
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: r.phys_mib,
            strategy: CopyStrategy::Full,
            walk: WalkMode::Serial,
            reclaim_daemon: true,
            ..UforkConfig::default()
        });
        if let Some((low, high)) = r.watermarks {
            os.set_pressure_watermarks(low, high);
        }
        let mut m = Machine::new(
            os,
            MachineConfig {
                cores: 2,
                oom_kill: true,
                ..MachineConfig::default()
            },
        );
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(StormZygote::new(StormConfig {
                    service_base_ns: r.service_base_ns,
                    service_jitter_mean_ns: r.service_base_ns / 4.0,
                    ..StormConfig::standard(CHILDREN, 0x50AC)
                })),
            )
            .expect("spawn zygote");
        m.run();
        let label = format!("soak {}", r.label);
        assert_eq!(m.exit_code(pid), Some(0), "{label}: zygote failed");
        let z = m.program::<StormZygote>(pid).expect("zygote state");
        assert_eq!(z.retries, 0, "{label}: storm-visible fork failure");
        assert_eq!(z.launched, CHILDREN, "{label}: lost admissions");
        assert_eq!(z.completed, CHILDREN, "{label}: lost children");
        assert_eq!(m.os.allocated_frames(), 0, "{label}: leaked frames");
        let c = m.counters();
        if r.expect_reclaim {
            assert!(
                c.reclaim_background > 0 && c.frames_prezeroed > 0,
                "{label}: daemon never ran a background pass \
                 (passes {}, prezeroed {})",
                c.reclaim_background,
                c.frames_prezeroed
            );
        } else {
            assert_eq!(
                c.reclaim_background, 0,
                "{label}: daemon engaged without pressure"
            );
        }
        if r.expect_hits {
            assert!(
                c.magazine_hits > 0,
                "{label}: scrubbed frames never reached a fork \
                 (prezeroed {}, hits {})",
                c.frames_prezeroed,
                c.magazine_hits
            );
        }
        // Counter/log consistency: every kill is counted once and
        // surfaced as a code-137 exit at the same simulated time.
        assert_eq!(
            c.oom_kills,
            m.oom_log().len() as u64,
            "{label}: oom_kills counter vs oom_log"
        );
        for e in m.oom_log() {
            assert!(
                m.exit_log()
                    .iter()
                    .any(|x| x.pid == e.victim && x.code == 137 && x.at == e.at),
                "{label}: kill of pid {} not visible as a 137 exit",
                e.victim.0
            );
        }
        let kills = m.oom_log().len() as u32;
        assert_eq!(
            m.exit_log().iter().filter(|x| x.code == 137).count() as u32,
            kills,
            "{label}: stray 137 exits"
        );
        if r.expect_kills {
            assert!(kills > 0, "{label}: exhaustion regime never killed");
        } else {
            assert_eq!(kills, 0, "{label}: killed without memory pressure");
        }
    }
}
