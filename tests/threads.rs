//! Multi-threaded μprocess tests (paper §3.4: "each μprocess may have
//! many threads ... fork ... copies a single thread").

use std::any::Any;

use ufork_repro::abi::{
    BlockingCall, Env, ForkResult, ImageSpec, Program, ProgramBox, Resume, StepOutcome,
};
use ufork_repro::exec::{Machine, MachineConfig};
use ufork_repro::ufork::{UforkConfig, UforkOs};

fn machine(cores: usize) -> Machine<UforkOs> {
    let cfg = UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    };
    Machine::new(
        UforkOs::new(cfg),
        MachineConfig {
            cores,
            ..MachineConfig::default()
        },
    )
}

/// A worker thread: adds `value` into the shared accumulator cell (whose
/// capability lives in the process's shared register file), then exits
/// with its own code.
#[derive(Clone)]
struct Adder {
    value: u64,
    code: i32,
}

impl Program for Adder {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        let cell = env.reg(10).expect("shared accumulator");
        let cur = env
            .load_u64(&cell.with_addr(cell.base()).expect("cursor"))
            .expect("readable");
        env.cpu_ops(500);
        env.store_u64(
            &cell.with_addr(cell.base()).expect("cursor"),
            cur + self.value,
        )
        .expect("writable");
        StepOutcome::Exit(self.code)
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Main thread: spawn N adders, join them all, verify the sum.
#[derive(Clone)]
struct PoolMain {
    n: u64,
    spawned: u64,
    tids: Vec<u64>,
    joined: u64,
    /// Collected join codes.
    pub codes: Vec<i32>,
}

impl Program for PoolMain {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                let cell = env.malloc(16).expect("cell");
                env.store_u64(&cell.with_addr(cell.base()).expect("cursor"), 0)
                    .expect("init");
                env.set_reg(10, cell).expect("register");
                self.spawned += 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(Adder {
                        value: self.spawned,
                        code: self.spawned as i32,
                    })),
                })
            }
            Resume::Ret(Ok(v)) => {
                if self.spawned <= self.n && self.tids.len() < self.spawned as usize {
                    // Return from SpawnThread: record the tid.
                    self.tids.push(v);
                    if self.spawned < self.n {
                        self.spawned += 1;
                        return StepOutcome::Block(BlockingCall::SpawnThread {
                            program: ProgramBox(Box::new(Adder {
                                value: self.spawned,
                                code: self.spawned as i32,
                            })),
                        });
                    }
                    // All spawned: join the first.
                    return StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[0] });
                }
                // Return from JoinThread.
                self.codes.push(v as i32);
                self.joined += 1;
                if (self.joined as usize) < self.tids.len() {
                    return StepOutcome::Block(BlockingCall::JoinThread {
                        tid: self.tids[self.joined as usize],
                    });
                }
                // Verify the accumulator: 1 + 2 + ... + n.
                let cell = env.reg(10).expect("cell");
                let sum = env
                    .load_u64(&cell.with_addr(cell.base()).expect("cursor"))
                    .expect("readable");
                let expect = self.n * (self.n + 1) / 2;
                StepOutcome::Exit(if sum == expect { 0 } else { 1 })
            }
            _ => StepOutcome::Exit(2),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn thread_pool_shares_memory_and_joins() {
    let mut m = machine(1);
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(PoolMain {
                n: 6,
                spawned: 0,
                tids: Vec::new(),
                joined: 0,
                codes: Vec::new(),
            }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0), "accumulated sum must be 21");
    let main = m.program::<PoolMain>(pid).unwrap();
    assert_eq!(
        main.codes,
        vec![1, 2, 3, 4, 5, 6],
        "join codes in spawn order"
    );
    // Threads do NOT produce process exits.
    assert_eq!(m.exit_log().len(), 1);
}

#[test]
fn threads_run_in_parallel_on_multiple_cores() {
    // Same workload on 1 vs 4 cores: heavier adders should overlap.
    let run = |cores: usize| {
        let mut m = machine(cores);
        let pid = m
            .spawn(
                &ImageSpec::hello_world(),
                Box::new(PoolMain {
                    n: 4,
                    spawned: 0,
                    tids: Vec::new(),
                    joined: 0,
                    codes: Vec::new(),
                }),
            )
            .unwrap();
        m.run();
        assert_eq!(m.exit_code(pid), Some(0));
        m.now()
    };
    // NOTE: adders are quick; the point is correctness on multicore, and
    // that multicore is never SLOWER than 1.5x single core.
    let t1 = run(1);
    let t4 = run(4);
    assert!(t4 <= t1 * 1.5, "multicore must not regress: {t4} vs {t1}");
}

/// fork from a multi-threaded process: only the calling thread crosses.
#[derive(Clone)]
struct ForkFromPool {
    phase: u8,
    is_child: bool,
}

impl Program for ForkFromPool {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (0, Resume::Start) => {
                // Spawn a sibling that sleeps forever (it must NOT be
                // duplicated into the child).
                self.phase = 1;
                StepOutcome::Block(BlockingCall::SpawnThread {
                    program: ProgramBox(Box::new(Sleeper)),
                })
            }
            (1, Resume::Ret(Ok(_))) => {
                self.phase = 2;
                StepOutcome::Fork
            }
            (2, Resume::Forked(ForkResult::Child)) => {
                self.is_child = true;
                env.cpu_ops(100);
                StepOutcome::Exit(0)
            }
            (2, Resume::Forked(ForkResult::Parent(_))) => {
                self.phase = 3;
                StepOutcome::Block(BlockingCall::Wait)
            }
            (3, Resume::Ret(Ok(_))) => StepOutcome::Exit(0),
            _ => StepOutcome::Exit(1),
        }
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone)]
struct Sleeper;
impl Program for Sleeper {
    fn resume(&mut self, _env: &mut dyn Env, _input: Resume) -> StepOutcome {
        StepOutcome::Block(BlockingCall::Sleep { ns: 1e15 })
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn fork_copies_only_the_calling_thread() {
    let mut m = machine(2);
    let mcfg_limit = 1e9; // the sleeper never finishes; bound the run
    let mut cfg = MachineConfig {
        cores: 2,
        ..MachineConfig::default()
    };
    cfg.time_limit = Some(mcfg_limit);
    let mut m2 = Machine::new(
        UforkOs::new(UforkConfig {
            phys_mib: 128,
            ..UforkConfig::default()
        }),
        cfg,
    );
    std::mem::swap(&mut m, &mut m2);
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(ForkFromPool {
                phase: 0,
                is_child: false,
            }),
        )
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    let child = m.fork_log()[0].child;
    // The child process has exactly ONE thread record: the sleeping
    // sibling was not duplicated (it exited along with nothing — it never
    // existed in the child).
    assert!(m.is_finished(child));
    // Parent still has its sleeper thread alive (process itself exited,
    // which tears threads down; before exit it had 2).
    assert_eq!(m.exit_log().len(), 2);
}

#[test]
fn join_on_bogus_tid_errors() {
    #[derive(Clone)]
    struct BadJoin;
    impl Program for BadJoin {
        fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
            match input {
                Resume::Start => StepOutcome::Block(BlockingCall::JoinThread { tid: 99 }),
                Resume::Ret(Err(_)) => StepOutcome::Exit(0),
                _ => StepOutcome::Exit(1),
            }
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    let mut m = machine(1);
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(BadJoin))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
}

#[test]
fn multithreaded_snapshot_is_consistent() {
    use ufork_repro::workloads::mtkv::{MtKv, MtKvConfig};
    let mut m = machine(2);
    let cfg = MtKvConfig {
        workers: 4,
        rounds: 8,
        dump_path: "mtkv.snap".into(),
    };
    let pid = m
        .spawn(&ImageSpec::hello_world(), Box::new(MtKv::new(cfg)))
        .unwrap();
    m.run();
    assert_eq!(m.exit_code(pid), Some(0));
    // The snapshot reflects exactly generation 1: every counter == rounds,
    // even though the parent ran a whole second generation of mutation
    // concurrently with the child's serialization.
    let snap = m
        .vfs()
        .file_contents("mtkv.snap")
        .expect("snapshot written");
    let text = String::from_utf8_lossy(snap);
    for i in 0..4 {
        assert!(
            text.contains(&format!("counter[{i}]=8")),
            "counter {i} must show the at-fork value 8, got:\n{text}"
        );
    }
    // Exactly one fork; the child was single-threaded.
    assert_eq!(m.counters().forks, 1);
    assert_eq!(m.counters().isolation_violations, 0);
}
