//! Zygote-style FaaS worker pre-warming (paper §5.1, Figure 6).
//!
//! A coordinator process initializes the language runtime once, then
//! serves each request by forking itself into a fresh worker that runs
//! the function and exits — the Android-Zygote / SOCK pattern (U2+U5).
//! The function is FunctionBench's `float_operation`: a pure
//! floating-point loop, so throughput is dominated by fork latency and
//! scheduling, not I/O.

use std::any::Any;

use ufork_abi::{BlockingCall, Env, ForkResult, Program, Resume, StepOutcome};

/// FaaS workload configuration.
#[derive(Clone, Debug)]
pub struct FaasConfig {
    /// Benchmark window in simulated nanoseconds (the paper uses 10 s).
    pub window_ns: f64,
    /// `float_operation` iterations per function invocation.
    pub flops: u64,
    /// Maximum in-flight workers (the worker-core count: the coordinator
    /// keeps every worker core busy but no more).
    pub max_outstanding: u32,
}

impl FaasConfig {
    /// A standard configuration for `worker_cores` cores.
    pub fn for_cores(worker_cores: u32) -> FaasConfig {
        FaasConfig {
            window_ns: 10e9,
            flops: 450_000,
            max_outstanding: worker_cores,
        }
    }
}

/// The Zygote coordinator program (children become workers).
#[derive(Clone, Debug)]
pub struct Zygote {
    /// Configuration.
    pub cfg: FaasConfig,
    outstanding: u32,
    /// Functions this coordinator has launched.
    pub launched: u64,
    /// Functions completed (reaped) within the window.
    pub completed: u64,
    draining: bool,
}

impl Zygote {
    /// Creates the coordinator.
    pub fn new(cfg: FaasConfig) -> Zygote {
        Zygote {
            cfg,
            outstanding: 0,
            launched: 0,
            completed: 0,
            draining: false,
        }
    }

    fn next(&mut self, env: &mut dyn Env) -> StepOutcome {
        let in_window = env.now() < self.cfg.window_ns;
        if in_window && !self.draining && self.outstanding < self.cfg.max_outstanding {
            self.outstanding += 1;
            self.launched += 1;
            return StepOutcome::Fork;
        }
        if !in_window {
            self.draining = true;
        }
        if self.outstanding > 0 {
            return StepOutcome::Block(BlockingCall::Wait);
        }
        StepOutcome::Exit(0)
    }
}

impl Program for Zygote {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                // Runtime warm-up: import loading etc., once (that is the
                // whole point of the Zygote pattern).
                env.cpu_ops(2_000_000);
                self.next(env)
            }
            Resume::Forked(ForkResult::Child) => {
                // The worker: run float_operation and exit.
                env.cpu_flops(self.cfg.flops);
                StepOutcome::Exit(0)
            }
            Resume::Forked(ForkResult::Parent(_)) => self.next(env),
            Resume::Ret(Ok(_)) => {
                self.outstanding -= 1;
                if env.now() < self.cfg.window_ns {
                    self.completed += 1;
                }
                self.next(env)
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
