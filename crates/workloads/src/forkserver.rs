//! AFL-style fork server (paper pattern U5: "testing frameworks such as
//! fuzzers use fork to avoid the cost of setup for each exploration").
//!
//! The server initializes the target once (expensive), then runs each
//! test case in a forked child that inherits the warmed-up state. Crashes
//! (non-zero exits) are contained by process isolation and tallied by the
//! parent — the whole point of forking per execution.

use std::any::Any;

use ufork_abi::{BlockingCall, Env, Errno, ForkResult, Program, Resume, StepOutcome};

/// Fork-server configuration.
#[derive(Clone, Debug)]
pub struct ForkServerConfig {
    /// Test cases to run.
    pub executions: u32,
    /// One-time target setup cost (generic ops).
    pub setup_ops: u64,
    /// Per-execution work in the child.
    pub exec_ops: u64,
    /// Every n-th input "crashes" the target (0 = never).
    pub crash_every: u32,
}

impl Default for ForkServerConfig {
    fn default() -> ForkServerConfig {
        ForkServerConfig {
            executions: 100,
            setup_ops: 5_000_000,
            exec_ops: 20_000,
            crash_every: 7,
        }
    }
}

/// The fork server program.
#[derive(Clone, Debug)]
pub struct ForkServer {
    /// Configuration.
    pub cfg: ForkServerConfig,
    case: u32,
    is_child: bool,
    /// Executions completed.
    pub completed: u32,
    /// Crashes observed (contained in children).
    pub crashes: u32,
}

impl ForkServer {
    /// Creates the server.
    pub fn new(cfg: ForkServerConfig) -> ForkServer {
        ForkServer {
            cfg,
            case: 0,
            is_child: false,
            completed: 0,
            crashes: 0,
        }
    }

    /// Scribbles on the shared corpus state, then "runs" the input. A
    /// crashing input corrupts memory first — the damage must stay in the
    /// child.
    fn run_case(&self, env: &mut dyn Env) -> i32 {
        env.cpu_ops(self.cfg.exec_ops);
        let crash = self.cfg.crash_every != 0
            && self.case % self.cfg.crash_every == self.cfg.crash_every - 1;
        let work = (|| -> Result<(), Errno> {
            let state = env.reg(8)?;
            // Mutate the inherited target state (CoW-copied for us).
            env.store_u64(
                &state.with_addr(state.base()).map_err(|_| Errno::Fault)?,
                u64::from(self.case) | 0xdead_0000,
            )?;
            if crash {
                // Wild access past the state buffer's bounds: the
                // capability check turns it into a contained fault.
                let wild = state
                    .with_addr(state.base() + state.len())
                    .map_err(|_| Errno::Fault)?;
                env.store(&wild, &[0u8; 64])?;
            }
            Ok(())
        })();
        match (crash, work) {
            (true, Err(_)) => 139, // SIGSEGV-style: contained crash
            (false, Ok(())) => 0,
            // A crash that was NOT caught, or a spurious failure: both are
            // reported distinctly so tests can detect containment bugs.
            _ => 1,
        }
    }
}

impl Program for ForkServer {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                // One-time target setup: warmed state inherited by every
                // child through fork.
                env.cpu_ops(self.cfg.setup_ops);
                let state = env.malloc(4096).expect("target state");
                env.store_u64(&state.with_addr(state.base()).expect("cursor"), 0x5eed_5eed)
                    .expect("seed");
                env.set_reg(8, state).expect("register");
                if self.cfg.executions == 0 {
                    return StepOutcome::Exit(0);
                }
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Child) => {
                self.is_child = true;
                StepOutcome::Exit(self.run_case(env))
            }
            Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
            Resume::Ret(Ok(status)) => {
                let code = (status >> 32) as i32;
                self.completed += 1;
                if code != 0 {
                    self.crashes += 1;
                }
                // The parent's pristine state must be intact: crashes died
                // with their children.
                let state = env.reg(8).expect("register");
                let seed = env
                    .load_u64(&state.with_addr(state.base()).expect("cursor"))
                    .expect("readable");
                if seed != 0x5eed_5eed {
                    return StepOutcome::Exit(42); // containment failure
                }
                self.case += 1;
                if self.case < self.cfg.executions {
                    StepOutcome::Fork
                } else {
                    StepOutcome::Exit(0)
                }
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
