//! Unixbench ports: Spawn (fork latency) and Context1 (pipe IPC).

use std::any::Any;

use ufork_abi::{BlockingCall, Env, Errno, Fd, ForkResult, Program, Resume, StepOutcome};

/// Unixbench *Spawn*: fork + exit + wait, `iterations` times, as fast as
/// possible (paper Figure 9, left).
#[derive(Clone, Debug)]
pub struct SpawnBench {
    /// Forks remaining.
    pub remaining: u32,
}

impl SpawnBench {
    /// A spawn benchmark of `n` iterations (the paper uses 1000).
    pub fn new(n: u32) -> SpawnBench {
        SpawnBench { remaining: n }
    }
}

impl Program for SpawnBench {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                if self.remaining == 0 {
                    StepOutcome::Exit(0)
                } else {
                    StepOutcome::Fork
                }
            }
            Resume::Forked(ForkResult::Child) => {
                env.cpu_ops(50); // execve-less child: just exit
                StepOutcome::Exit(0)
            }
            Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
            Resume::Ret(Ok(_)) => {
                self.remaining -= 1;
                if self.remaining == 0 {
                    StepOutcome::Exit(0)
                } else {
                    StepOutcome::Fork
                }
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum C1State {
    Setup,
    /// Waiting for the counter on our inbound pipe.
    Pumping,
}

/// Unixbench *Context1*: two processes bounce an incrementing counter
/// through a pair of pipes until it reaches `limit` (paper Figure 9,
/// right: 100 k iterations — each one costs two context switches and four
/// kernel entries).
#[derive(Clone, Debug)]
pub struct Context1 {
    /// Final counter value.
    pub limit: u64,
    state: C1State,
    is_child: bool,
    // fds (plain data; valid across fork by POSIX fd inheritance)
    p2c: Option<(Fd, Fd)>,
    c2p: Option<(Fd, Fd)>,
    /// Iterations this side completed (for the harness).
    pub seen: u64,
}

/// Register slot holding the 16-byte message buffer.
const BUF_REG: usize = 6;

impl Context1 {
    /// A context-switch benchmark running to `limit`.
    pub fn new(limit: u64) -> Context1 {
        Context1 {
            limit,
            state: C1State::Setup,
            is_child: false,
            p2c: None,
            c2p: None,
            seen: 0,
        }
    }

    fn in_fd(&self) -> Fd {
        if self.is_child {
            self.p2c.expect("pipes created").0
        } else {
            self.c2p.expect("pipes created").0
        }
    }

    fn out_fd(&self) -> Fd {
        if self.is_child {
            self.c2p.expect("pipes created").1
        } else {
            self.p2c.expect("pipes created").1
        }
    }

    fn block_read(&self, env: &mut dyn Env) -> StepOutcome {
        let buf = env.reg(BUF_REG).expect("buffer allocated");
        StepOutcome::Block(BlockingCall::Read {
            fd: self.in_fd(),
            buf,
            len: 8,
        })
    }

    fn send(&self, env: &mut dyn Env, value: u64) -> Result<(), Errno> {
        let buf = env.reg(BUF_REG)?;
        env.store_u64(&buf.with_addr(buf.base()).map_err(|_| Errno::Fault)?, value)?;
        env.sys_write(self.out_fd(), &buf, 8)?;
        Ok(())
    }

    fn recv(&self, env: &mut dyn Env) -> Result<u64, Errno> {
        let buf = env.reg(BUF_REG)?;
        env.load_u64(&buf.with_addr(buf.base()).map_err(|_| Errno::Fault)?)
    }
}

impl Program for Context1 {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.state, input) {
            (C1State::Setup, Resume::Start) => {
                let p2c = env.sys_pipe().expect("pipe");
                let c2p = env.sys_pipe().expect("pipe");
                self.p2c = Some(p2c);
                self.c2p = Some(c2p);
                let buf = env.malloc(16).expect("message buffer");
                env.set_reg(BUF_REG, buf).expect("register");
                StepOutcome::Fork
            }
            (C1State::Setup, Resume::Forked(fr)) => {
                self.is_child = matches!(fr, ForkResult::Child);
                self.state = C1State::Pumping;
                if self.is_child {
                    // Child kicks off the exchange.
                    if self.send(env, 1).is_err() {
                        return StepOutcome::Exit(1);
                    }
                }
                self.block_read(env)
            }
            (C1State::Pumping, Resume::Ret(Ok(n))) => {
                if n == 0 {
                    // Peer exited (EOF): we are done too.
                    return StepOutcome::Exit(0);
                }
                let v = match self.recv(env) {
                    Ok(v) => v,
                    Err(_) => return StepOutcome::Exit(1),
                };
                self.seen = v;
                if v >= self.limit {
                    // Propagate the final value once, then stop.
                    let _ = self.send(env, v + 1);
                    return StepOutcome::Exit(0);
                }
                if self.send(env, v + 1).is_err() {
                    return StepOutcome::Exit(1);
                }
                self.block_read(env)
            }
            (_, Resume::Ret(Err(_))) => StepOutcome::Exit(1),
            (s, i) => unreachable!("bad context1 transition: {s:?} / {i:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
