//! Multi-tier ring-fabric service: an nginx-style frontend load-balances
//! requests over a privsep-forked worker pool, which feeds a KV store
//! tier — every hop a shared-memory descriptor ring, every endpoint a
//! sealed capability relocated across fork.
//!
//! Topology (`W` workers, `3W` rings):
//!
//! ```text
//! frontend --req_i--> worker_i --st_i--> store
//!     ^                  |
//!     +------resp_i------+
//! ```
//!
//! Requests are *key-partitioned*: key `k` always routes to worker
//! `k % W`, so each ring carries a deterministic message subsequence and
//! the store's per-key update order is fixed regardless of cross-ring
//! arrival timing — the final KV digest and every per-ring push/pop
//! digest are bitwise identical across Full/CoA/CoPA and the multi-AS
//! baseline, which is exactly what the differential oracle checks.
//!
//! Fork appears three ways: the store and each worker are privsep-forked
//! children inheriting sealed ring endpoints through the register walk;
//! halfway through the send phase the frontend forks a snapshot child
//! with every ring live (endpoint relocation under traffic); and EOF
//! cascades tier to tier purely through producer-end refcounts
//! (frontend closes `req_*` → workers drain and exit → their `st_*`
//! ends close → the store finalizes).

use std::any::Any;

use ufork_abi::{
    BlockingCall, Env, Errno, Fd, ForkResult, Program, Resume, StepOutcome, SysResult, RING_EOF,
};

/// Message size on every ring.
pub const MSG_BYTES: u64 = 32;
/// Slots per ring.
pub const RING_SLOTS: u64 = 16;
/// Scratch-buffer register (same convention as the nginx worker).
const BUF_REG: usize = 7;
/// Frontend: `req_i` producer endpoints at `8 + i`.
const REQ_PROD_REG: usize = 8;
/// Frontend: `resp_i` consumer endpoints at `12 + i`.
const RESP_CONS_REG: usize = 12;
/// Handoff to worker `i`: its `req_i` consumer endpoint at `16 + i`.
/// The store reuses these slots for its `st_i` consumer endpoints.
const REQ_CONS_REG: usize = 16;
/// Handoff to worker `i`: its `resp_i` producer endpoint at `20 + i`.
const RESP_PROD_REG: usize = 20;
/// Worker: its `st_i` producer endpoint (opened by name post-fork).
const ST_PROD_REG: usize = 24;
/// Store: the KV array capability.
const KV_REG: usize = 10;

/// Configuration for the multi-tier ring service.
#[derive(Clone, Debug)]
pub struct RingSvcConfig {
    /// Worker processes (at most 4 — the register map above is sized
    /// for it).
    pub workers: u64,
    /// Requests the frontend sends in total.
    pub requests: u64,
    /// Key space; keys route to worker `key % workers`.
    pub keys: u64,
    /// CPU ops a worker spends handling one request.
    pub parse_ops: u64,
    /// Path the store serializes its final state to.
    pub dump_path: String,
}

impl Default for RingSvcConfig {
    fn default() -> RingSvcConfig {
        RingSvcConfig {
            workers: 4,
            requests: 2_000,
            keys: 256,
            parse_ops: 2_000,
            dump_path: "ringsvc.out".to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Frontend,
    Worker(u64),
    Store,
    Snapshot,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Frontend: forking the store + workers (`n` children so far).
    Forking(u64),
    /// Frontend: send loop (request push pending).
    Send,
    /// Frontend: draining `resp_i` to EOF.
    Drain(u64),
    /// Frontend: reaping children.
    Waiting(u64),
    /// Worker: request pop pending.
    WPop,
    /// Worker: store-op push pending.
    WPushSt,
    /// Worker: response push pending.
    WPushResp,
    /// Store: polling its `st_*` rings (sleep pending).
    StorePoll,
}

/// The multi-tier ring service program. Spawn one; it forks the rest.
#[derive(Clone, Debug)]
pub struct RingSvc {
    /// Configuration.
    pub cfg: RingSvcConfig,
    role: Role,
    phase: Phase,
    /// Role the next forked child assumes.
    next_role: Role,
    // Frontend-opened ring descriptors (cloned into children, which
    // close what is not theirs — standard privsep fd hygiene).
    req_prod: Vec<Fd>,
    req_cons: Vec<Fd>,
    resp_prod: Vec<Fd>,
    resp_cons: Vec<Fd>,
    lcg: u64,
    /// Requests pushed so far.
    pub sent: u64,
    /// Responses received (send-phase polling + drain phase).
    pub got: u64,
    snap_forked: bool,
    // Worker state.
    wfd_st: Option<Fd>,
    /// Requests this worker handled.
    pub handled: u64,
    // Store state.
    st_cons: Vec<Option<Fd>>,
    /// Store ops applied.
    pub applied: u64,
    /// Final KV digest (store child, after EOF).
    pub kv_digest: u64,
}

impl RingSvc {
    /// Creates the frontend program.
    pub fn new(cfg: RingSvcConfig) -> RingSvc {
        assert!(
            (1..=4).contains(&cfg.workers),
            "register map supports 1..=4 workers"
        );
        RingSvc {
            cfg,
            role: Role::Frontend,
            phase: Phase::Forking(0),
            next_role: Role::Store,
            req_prod: Vec::new(),
            req_cons: Vec::new(),
            resp_prod: Vec::new(),
            resp_cons: Vec::new(),
            lcg: 0x243f_6a88_85a3_08d3, // pi digits; any fixed seed works
            sent: 0,
            got: 0,
            snap_forked: false,
            wfd_st: None,
            handled: 0,
            st_cons: Vec::new(),
            applied: 0,
            kv_digest: 0,
        }
    }

    fn rand(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.lcg
    }

    fn open_rings(&mut self, env: &mut dyn Env) -> SysResult<()> {
        let buf = env.malloc(256)?;
        env.set_reg(BUF_REG, buf)?;
        for i in 0..self.cfg.workers {
            let (pf, pcap) = env.sys_ring_open(&format!("req{i}"), RING_SLOTS, MSG_BYTES, true)?;
            let (cf, ccap) = env.sys_ring_open(&format!("req{i}"), RING_SLOTS, MSG_BYTES, false)?;
            env.set_reg(REQ_PROD_REG + i as usize, pcap)?;
            env.set_reg(REQ_CONS_REG + i as usize, ccap)?;
            self.req_prod.push(pf);
            self.req_cons.push(cf);
            let (pf, pcap) = env.sys_ring_open(&format!("resp{i}"), RING_SLOTS, MSG_BYTES, true)?;
            let (cf, ccap) =
                env.sys_ring_open(&format!("resp{i}"), RING_SLOTS, MSG_BYTES, false)?;
            env.set_reg(RESP_PROD_REG + i as usize, pcap)?;
            env.set_reg(RESP_CONS_REG + i as usize, ccap)?;
            self.resp_prod.push(pf);
            self.resp_cons.push(cf);
        }
        Ok(())
    }

    /// Closes every inherited ring descriptor except those in `keep`.
    fn fd_hygiene(&self, env: &mut dyn Env, keep: &[Fd]) {
        for fd in self
            .req_prod
            .iter()
            .chain(&self.req_cons)
            .chain(&self.resp_prod)
            .chain(&self.resp_cons)
        {
            if !keep.contains(fd) {
                let _ = env.sys_close(*fd);
            }
        }
    }

    // ---- frontend ----------------------------------------------------

    /// Drains whatever responses are ready, then pushes the next request
    /// (or advances to the drain phase / the mid-run snapshot fork).
    fn send_step(&mut self, env: &mut dyn Env) -> StepOutcome {
        let buf = env.reg(BUF_REG).expect("scratch buffer");
        for i in 0..self.cfg.workers {
            loop {
                let cons = env.reg(RESP_CONS_REG + i as usize).expect("resp endpoint");
                match env.sys_ring_try_pop(self.resp_cons[i as usize], &cons, &buf) {
                    Ok(0) => break,
                    Ok(RING_EOF) => return StepOutcome::Exit(2), // worker died early
                    Ok(_) => self.got += 1,
                    Err(_) => return StepOutcome::Exit(2),
                }
            }
        }
        if self.sent == self.cfg.requests {
            for i in 0..self.cfg.workers {
                env.sys_close(self.req_prod[i as usize]).expect("close req");
            }
            self.phase = Phase::Drain(0);
            return self.drain_step(env, 0);
        }
        if !self.snap_forked && self.sent >= self.cfg.requests / 2 {
            // Snapshot fork with every ring endpoint live: the child
            // inherits (and immediately closes) all of them, exercising
            // sealed-endpoint relocation under traffic.
            self.snap_forked = true;
            self.next_role = Role::Snapshot;
            return StepOutcome::Fork;
        }
        let key = self.rand() % self.cfg.keys;
        let val = self.rand();
        let w = (key % self.cfg.workers) as usize;
        env.store_u64(&buf, self.sent).expect("seq");
        let at = |b: &ufork_abi::Capability, off: u64| b.with_addr(b.base() + off).unwrap();
        env.store_u64(&at(&buf, 8), key).expect("key");
        env.store_u64(&at(&buf, 16), val).expect("val");
        env.store_u64(&at(&buf, 24), 0x5245_5121).expect("tag"); // "REQ!"
        StepOutcome::Block(BlockingCall::RingPush {
            fd: self.req_prod[w],
            ring: env.reg(REQ_PROD_REG + w).expect("req endpoint"),
            buf,
            len: MSG_BYTES,
        })
    }

    fn drain_step(&mut self, env: &mut dyn Env, i: u64) -> StepOutcome {
        if i == self.cfg.workers {
            self.phase = Phase::Waiting(0);
            return StepOutcome::Block(BlockingCall::Wait);
        }
        self.phase = Phase::Drain(i);
        StepOutcome::Block(BlockingCall::RingPop {
            fd: self.resp_cons[i as usize],
            ring: env.reg(RESP_CONS_REG + i as usize).expect("resp endpoint"),
            buf: env.reg(BUF_REG).expect("scratch buffer"),
        })
    }

    // ---- worker ------------------------------------------------------

    fn worker_pop(&mut self, env: &mut dyn Env, i: u64) -> StepOutcome {
        self.phase = Phase::WPop;
        StepOutcome::Block(BlockingCall::RingPop {
            fd: self.req_cons[i as usize],
            ring: env.reg(REQ_CONS_REG + i as usize).expect("req endpoint"),
            buf: env.reg(BUF_REG).expect("scratch buffer"),
        })
    }

    // ---- store -------------------------------------------------------

    /// Round-robin try-pops every live `st_*` ring, applying ops; sleeps
    /// when a full round is dry, finalizes when every ring hits EOF.
    fn store_poll(&mut self, env: &mut dyn Env) -> StepOutcome {
        let buf = env.reg(BUF_REG).expect("scratch buffer");
        let kv = env.reg(KV_REG).expect("kv array");
        let at = |b: &ufork_abi::Capability, off: u64| b.with_addr(b.base() + off).unwrap();
        loop {
            let mut progressed = false;
            let mut alive = false;
            for i in 0..self.cfg.workers as usize {
                let Some(fd) = self.st_cons[i] else { continue };
                let cons = env.reg(REQ_CONS_REG + i).expect("st endpoint");
                loop {
                    match env.sys_ring_try_pop(fd, &cons, &buf) {
                        Ok(0) => {
                            alive = true;
                            break;
                        }
                        Ok(RING_EOF) => {
                            let _ = env.sys_close(fd);
                            self.st_cons[i] = None;
                            break;
                        }
                        Ok(_) => {
                            progressed = true;
                            let key = env.load_u64(&at(&buf, 8)).expect("key");
                            let val = env.load_u64(&at(&buf, 16)).expect("val");
                            let cell = at(&kv, key * 8);
                            let v = env.load_u64(&cell).expect("kv cell");
                            env.store_u64(&cell, v.wrapping_mul(31).wrapping_add(val))
                                .expect("kv cell");
                            self.applied += 1;
                        }
                        Err(_) => return StepOutcome::Exit(3),
                    }
                }
            }
            if !alive && self.st_cons.iter().all(Option::is_none) {
                return match self.store_finalize(env) {
                    Ok(()) => StepOutcome::Exit(0),
                    Err(_) => StepOutcome::Exit(3),
                };
            }
            if !progressed {
                self.phase = Phase::StorePoll;
                return StepOutcome::Block(BlockingCall::Sleep { ns: 1e4 });
            }
        }
    }

    /// FNV digest over the whole KV array, serialized to the dump file.
    fn store_finalize(&mut self, env: &mut dyn Env) -> SysResult<()> {
        let kv = env.reg(KV_REG)?;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for k in 0..self.cfg.keys {
            let cell = kv.with_addr(kv.base() + k * 8).map_err(|_| Errno::Fault)?;
            let v = env.load_u64(&cell)?;
            digest = (digest ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.kv_digest = digest;
        let fd = env.sys_open(&self.cfg.dump_path, true)?;
        let buf = env.reg(BUF_REG)?;
        let line = format!("ops={}\ndigest={digest:#018x}\n", self.applied);
        env.store(&buf, line.as_bytes())?;
        env.sys_write(fd, &buf, line.len() as u64)?;
        env.sys_close(fd)
    }
}

impl Program for RingSvc {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                if self.open_rings(env).is_err() {
                    return StepOutcome::Exit(1);
                }
                StepOutcome::Fork
            }
            Resume::Forked(ForkResult::Parent(_)) => match self.phase {
                Phase::Forking(n) => {
                    let n = n + 1;
                    if n <= self.cfg.workers {
                        self.next_role = Role::Worker(n - 1);
                        self.phase = Phase::Forking(n);
                        StepOutcome::Fork
                    } else {
                        // Store + all workers are up: hand-off fds are
                        // theirs now, so the frontend drops its copies
                        // (keeping `req_*` producer ends for EOF).
                        for i in 0..self.cfg.workers as usize {
                            env.sys_close(self.req_cons[i]).expect("handoff");
                            env.sys_close(self.resp_prod[i]).expect("handoff");
                        }
                        self.phase = Phase::Send;
                        self.send_step(env)
                    }
                }
                Phase::Send => self.send_step(env),
                _ => StepOutcome::Exit(1),
            },
            Resume::Forked(ForkResult::Child) => match self.next_role {
                Role::Store => {
                    self.role = Role::Store;
                    self.fd_hygiene(env, &[]);
                    let buf = env.malloc(256).expect("store buffer");
                    env.set_reg(BUF_REG, buf).expect("register");
                    let kv = env.malloc(self.cfg.keys * 8).expect("kv array");
                    for k in 0..self.cfg.keys {
                        env.store_u64(&kv.with_addr(kv.base() + k * 8).unwrap(), 0)
                            .expect("kv init");
                    }
                    env.set_reg(KV_REG, kv).expect("register");
                    for i in 0..self.cfg.workers {
                        let (fd, cap) = env
                            .sys_ring_open(&format!("st{i}"), RING_SLOTS, MSG_BYTES, false)
                            .expect("st ring");
                        env.set_reg(REQ_CONS_REG + i as usize, cap)
                            .expect("register");
                        self.st_cons.push(Some(fd));
                    }
                    self.store_poll(env)
                }
                Role::Worker(i) => {
                    self.role = Role::Worker(i);
                    self.fd_hygiene(
                        env,
                        &[self.req_cons[i as usize], self.resp_prod[i as usize]],
                    );
                    let buf = env.malloc(256).expect("worker buffer");
                    env.set_reg(BUF_REG, buf).expect("register");
                    let (fd, cap) = env
                        .sys_ring_open(&format!("st{i}"), RING_SLOTS, MSG_BYTES, true)
                        .expect("st ring");
                    env.set_reg(ST_PROD_REG, cap).expect("register");
                    self.wfd_st = Some(fd);
                    self.worker_pop(env, i)
                }
                Role::Snapshot => {
                    self.role = Role::Snapshot;
                    // A checkpoint child forked mid-traffic: all it must
                    // prove is that it arrived intact — every sealed
                    // endpoint relocated — then it releases its ends.
                    self.fd_hygiene(env, &[]);
                    StepOutcome::Exit(0)
                }
                _ => StepOutcome::Exit(1),
            },
            Resume::Ret(r) => match (self.role, self.phase) {
                (Role::Frontend, Phase::Send) => match r {
                    Ok(n) if n == MSG_BYTES => {
                        self.sent += 1;
                        self.send_step(env)
                    }
                    _ => StepOutcome::Exit(2),
                },
                (Role::Frontend, Phase::Drain(i)) => match r {
                    Ok(0) => self.drain_step(env, i + 1),
                    Ok(n) if n == MSG_BYTES => {
                        self.got += 1;
                        self.drain_step(env, i)
                    }
                    _ => StepOutcome::Exit(2),
                },
                (Role::Frontend, Phase::Waiting(n)) => match r {
                    Ok(_) => {
                        // store + workers + snapshot child.
                        if n + 1 < self.cfg.workers + 2 {
                            self.phase = Phase::Waiting(n + 1);
                            StepOutcome::Block(BlockingCall::Wait)
                        } else if self.got == self.sent {
                            StepOutcome::Exit(0)
                        } else {
                            StepOutcome::Exit(4)
                        }
                    }
                    Err(_) => StepOutcome::Exit(2),
                },
                (Role::Worker(i), Phase::WPop) => match r {
                    Ok(0) => {
                        // EOF: release producer ends so the next tier
                        // sees its own EOF, then exit.
                        env.sys_close(self.wfd_st.unwrap()).expect("close st");
                        env.sys_close(self.resp_prod[i as usize])
                            .expect("close resp");
                        env.sys_close(self.req_cons[i as usize]).expect("close req");
                        StepOutcome::Exit(0)
                    }
                    Ok(n) if n == MSG_BYTES => {
                        env.cpu_ops(self.cfg.parse_ops);
                        self.handled += 1;
                        let buf = env.reg(BUF_REG).expect("scratch buffer");
                        // Stamp the tag word with the worker id; seq,
                        // key, val pass through to the store.
                        env.store_u64(&buf.with_addr(buf.base() + 24).unwrap(), i)
                            .expect("tag");
                        self.phase = Phase::WPushSt;
                        StepOutcome::Block(BlockingCall::RingPush {
                            fd: self.wfd_st.unwrap(),
                            ring: env.reg(ST_PROD_REG).expect("st endpoint"),
                            buf,
                            len: MSG_BYTES,
                        })
                    }
                    _ => StepOutcome::Exit(2),
                },
                (Role::Worker(i), Phase::WPushSt) => match r {
                    Ok(n) if n == MSG_BYTES => {
                        let buf = env.reg(BUF_REG).expect("scratch buffer");
                        let at = |b: &ufork_abi::Capability, off: u64| {
                            b.with_addr(b.base() + off).unwrap()
                        };
                        // Response: echo seq/key, result = val ^ key.
                        let key = env.load_u64(&at(&buf, 8)).expect("key");
                        let val = env.load_u64(&at(&buf, 16)).expect("val");
                        env.store_u64(&at(&buf, 16), val ^ key).expect("result");
                        env.store_u64(&at(&buf, 24), 0x5245_5350).expect("tag"); // "RESP"
                        self.phase = Phase::WPushResp;
                        StepOutcome::Block(BlockingCall::RingPush {
                            fd: self.resp_prod[i as usize],
                            ring: env.reg(RESP_PROD_REG + i as usize).expect("resp endpoint"),
                            buf,
                            len: MSG_BYTES,
                        })
                    }
                    _ => StepOutcome::Exit(2),
                },
                (Role::Worker(i), Phase::WPushResp) => match r {
                    Ok(n) if n == MSG_BYTES => self.worker_pop(env, i),
                    _ => StepOutcome::Exit(2),
                },
                (Role::Store, Phase::StorePoll) => match r {
                    Ok(_) => self.store_poll(env),
                    Err(_) => StepOutcome::Exit(3),
                },
                (role, phase) => unreachable!("bad ringsvc transition: {role:?} / {phase:?}"),
            },
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
