//! The fork-based workloads of the μFork evaluation (paper §5).
//!
//! Every workload is written once against [`ufork_abi::Env`] /
//! [`ufork_abi::Program`] and runs unmodified on μFork and both baselines
//! — mirroring the paper's unmodified-application claim. All application
//! data structures live in *simulated memory* behind capabilities, so the
//! experiments genuinely exercise relocation, CoW/CoA/CoPA, and isolation:
//!
//! * [`hello::HelloWorld`] — the minimal process of the §5.2
//!   microbenchmarks (fork latency / memory, Figure 8);
//! * [`ubench::SpawnBench`] / [`ubench::Context1`] — Unixbench Spawn and
//!   Context1 ports (Figure 9);
//! * [`redis`] — a Redis-like in-memory KV store with hash-table +
//!   string objects in simulated memory and a fork-based background save
//!   (Figures 3–5, U2+U4);
//! * [`faas::Zygote`] — Zygote-style FaaS worker pre-warming running
//!   FunctionBench's `float_operation` (Figure 6, U2+U5);
//! * [`nginx`] — a master forking request-serving workers fed by a
//!   wrk-style closed-loop generator (Figure 7, U5);
//! * [`shell::Shell`] — fork + exec command running (U1);
//! * [`forkserver::ForkServer`] — AFL-style fork server with contained
//!   crashes (U5);
//! * [`privsep::Privsep`] — qmail-style privilege separation with breach
//!   containment (U3);
//! * [`ringsvc::RingSvc`] — a multi-tier frontend/worker/store service
//!   wired with shared-memory descriptor rings whose sealed endpoint
//!   capabilities relocate across fork;
//! * [`storm::StormZygote`] — the 10k-concurrent-children fork storm
//!   driving the event-driven scheduler benchmark.

pub mod faas;
pub mod forkserver;
pub mod hello;
pub mod mtkv;
pub mod nginx;
pub mod privsep;
pub mod redis;
pub mod ringsvc;
pub mod shell;
pub mod storm;
pub mod ubench;
