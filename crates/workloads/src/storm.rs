//! The fork storm: a FaaS zygote spawning thousands of *concurrent*
//! children under a deterministic Poisson arrival process.
//!
//! [`faas::Zygote`](crate::faas::Zygote) models steady-state serving —
//! at most `max_outstanding` workers live at once. The storm models the
//! opposite regime the event-driven scheduler exists for: a burst in
//! which every child is still running when the last one is born, so the
//! machine holds N+1 live μprocesses simultaneously. Arrivals are drawn
//! from a seeded exponential distribution (a Poisson process), service
//! times from a fixed base plus exponential jitter chosen so that no
//! child can exit before the arrival phase ends — which makes "all N
//! concurrent" an *assertable* property ([`StormReport::peak_live`]),
//! not a hope.
//!
//! Determinism: all randomness is drawn from an inline SplitMix64 stream
//! in the parent's sequential program order, and each child's service
//! time is pre-drawn by the parent *before* the fork (the child reads it
//! from its cloned program state). Scheduling order therefore cannot
//! perturb the draw sequence: same seed ⇒ same arrivals and services,
//! and on the same core count the whole event log is bit-identical
//! (`tests/storm_props.rs` holds the machine to this).

use std::any::Any;

use ufork_abi::{BlockingCall, Env, ForkResult, Pid, Program, Resume, StepOutcome};
use ufork_exec::{ExitEvent, ForkEvent};

/// Fork-storm configuration.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Children to spawn (the paper-scale run uses 10
    /// 000).
    pub children: u32,
    /// Seed of the arrival/service random stream.
    pub seed: u64,
    /// Mean inter-arrival gap (ns) of the Poisson arrival process.
    pub arrival_mean_ns: f64,
    /// Fixed part of every child's service time (ns). Must exceed the
    /// storm's total arrival span for full concurrency.
    pub service_base_ns: f64,
    /// Mean of the exponential jitter added to the service time (ns).
    pub service_jitter_mean_ns: f64,
    /// Fork-failure retries (with linear backoff) before giving up —
    /// the chaos sweep injects journal aborts and allocation failures
    /// mid-storm and expects the zygote to absorb them.
    pub max_fork_retries: u32,
}

impl StormConfig {
    /// The standard storm shape for `children` concurrent μprocesses.
    ///
    /// Arrivals average 100 µs apart (10k arrivals ≈ 1 sim-second, plus
    /// fork service time on the zygote's core); every child then runs
    /// for at least 4 sim-seconds, so the first exit happens long after
    /// the last birth: peak concurrency is exactly `children`.
    pub fn standard(children: u32, seed: u64) -> StormConfig {
        StormConfig {
            children,
            seed,
            arrival_mean_ns: 100_000.0,
            service_base_ns: 4e9,
            service_jitter_mean_ns: 0.5e9,
            max_fork_retries: 16,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Parent,
    Child,
}

/// What the last issued blocking call / fork was for, so `Resume::Ret`
/// values can be routed without ambiguity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Issued {
    None,
    /// Sleeping out an arrival gap; fork on wake.
    Arrival,
    /// Backing off after a failed fork; re-fork on wake (same pre-drawn
    /// service time — a retry is the *same* arrival, delivered late).
    Backoff,
    /// A fork was issued (`Ret(Err)` here means the fork itself failed).
    Fork,
    /// Waiting to reap children.
    Wait,
}

/// The storm zygote (children become one-shot workers).
#[derive(Clone, Debug)]
pub struct StormZygote {
    /// Configuration.
    pub cfg: StormConfig,
    role: Role,
    issued: Issued,
    /// SplitMix64 state.
    rng: u64,
    /// Successful forks so far.
    pub launched: u32,
    /// Children reaped.
    pub completed: u32,
    /// Fork failures absorbed by retrying.
    pub retries: u32,
    retry_streak: u32,
    outstanding: u32,
    /// Service time pre-drawn for the next child; the forked clone reads
    /// this field, so the draw happens exactly once per arrival and
    /// never depends on scheduling order.
    next_service_ns: f64,
}

impl StormZygote {
    /// Creates the zygote.
    pub fn new(cfg: StormConfig) -> StormZygote {
        let rng = cfg.seed;
        StormZygote {
            cfg,
            role: Role::Parent,
            issued: Issued::None,
            rng,
            launched: 0,
            completed: 0,
            retries: 0,
            retry_streak: 0,
            outstanding: 0,
            next_service_ns: 0.0,
        }
    }

    /// Next SplitMix64 output.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An exponential draw with the given mean (inverse-CDF over a
    /// 53-bit uniform in (0, 1]).
    fn exp_draw(&mut self, mean_ns: f64) -> f64 {
        let u = ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        -mean_ns * u.ln()
    }

    /// Issues the next arrival sleep, the reap phase, or the final exit.
    fn next_arrival_or_drain(&mut self) -> StepOutcome {
        if self.launched < self.cfg.children {
            let gap = self.exp_draw(self.cfg.arrival_mean_ns);
            self.issued = Issued::Arrival;
            return StepOutcome::Block(BlockingCall::Sleep { ns: gap });
        }
        if self.outstanding > 0 {
            self.issued = Issued::Wait;
            return StepOutcome::Block(BlockingCall::Wait);
        }
        StepOutcome::Exit(0)
    }

    /// Pre-draws the next child's service time and issues the fork.
    fn issue_fork(&mut self) -> StepOutcome {
        self.next_service_ns =
            self.cfg.service_base_ns + self.exp_draw(self.cfg.service_jitter_mean_ns);
        self.issued = Issued::Fork;
        StepOutcome::Fork
    }

    /// Re-issues a failed fork (service time already drawn).
    fn refork(&mut self) -> StepOutcome {
        self.issued = Issued::Fork;
        StepOutcome::Fork
    }
}

impl Program for StormZygote {
    fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
        if self.role == Role::Child {
            // A worker: its whole life is one pre-drawn service sleep.
            return match input {
                Resume::Ret(Ok(_)) => StepOutcome::Exit(0),
                _ => StepOutcome::Exit(1),
            };
        }
        match input {
            Resume::Start => self.next_arrival_or_drain(),
            Resume::Forked(ForkResult::Child) => {
                self.role = Role::Child;
                StepOutcome::Block(BlockingCall::Sleep {
                    ns: self.next_service_ns,
                })
            }
            Resume::Forked(ForkResult::Parent(_)) => {
                self.launched += 1;
                self.outstanding += 1;
                self.retry_streak = 0;
                self.next_arrival_or_drain()
            }
            Resume::Ret(Ok(_)) => match self.issued {
                Issued::Arrival => self.issue_fork(),
                Issued::Backoff => self.refork(),
                Issued::Wait => {
                    self.outstanding -= 1;
                    self.completed += 1;
                    if self.outstanding > 0 {
                        StepOutcome::Block(BlockingCall::Wait)
                    } else {
                        StepOutcome::Exit(0)
                    }
                }
                _ => StepOutcome::Exit(3),
            },
            Resume::Ret(Err(_)) => {
                if self.issued != Issued::Fork {
                    return StepOutcome::Exit(4);
                }
                // Fork failed (memory pressure, journal abort, injected
                // fault): back off linearly and retry the same arrival.
                self.retries += 1;
                self.retry_streak += 1;
                if self.retry_streak > self.cfg.max_fork_retries {
                    return StepOutcome::Exit(2);
                }
                self.issued = Issued::Backoff;
                StepOutcome::Block(BlockingCall::Sleep {
                    ns: 50_000.0 * f64::from(self.retry_streak),
                })
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Storm metrics distilled from a finished run.
#[derive(Clone, Copy, Debug)]
pub struct StormReport {
    /// Configured children.
    pub children: u32,
    /// Children reaped by the zygote.
    pub completed: u32,
    /// Fork failures absorbed by retrying.
    pub retries: u32,
    /// Simulated end time of the run (ns).
    pub final_ns: f64,
    /// Median fork latency (ns).
    pub p50_fork_ns: f64,
    /// 99th-percentile fork latency (ns).
    pub p99_fork_ns: f64,
    /// Mean fork latency (ns).
    pub mean_fork_ns: f64,
    /// Fork throughput over the whole run.
    pub forks_per_sim_sec: f64,
    /// Inverse throughput (ns of simulated time per completed fork) —
    /// the gate-friendly bigger-is-worse form.
    pub sim_ns_per_fork: f64,
    /// Maximum simultaneously-live children (birth/death sweep over the
    /// event logs). Equals `children` when the storm truly overlapped.
    pub peak_live: u32,
    /// FNV-1a digest over the complete fork + exit event logs; two runs
    /// are bit-identical iff their digests (and `final_ns`) match.
    pub digest: u64,
}

/// Nearest-rank percentile of an unsorted latency sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Distills a finished storm run into a [`StormReport`].
pub fn summarize(
    zygote_pid: Pid,
    fork_log: &[ForkEvent],
    exit_log: &[ExitEvent],
    zygote: &StormZygote,
    final_ns: f64,
) -> StormReport {
    let mut lats: Vec<f64> = fork_log.iter().map(|f| f.latency_ns).collect();
    lats.sort_unstable_by(f64::total_cmp);
    let mean = if lats.is_empty() {
        0.0
    } else {
        lats.iter().sum::<f64>() / lats.len() as f64
    };

    // Concurrency sweep: +1 at each child's birth, -1 at its exit. At
    // equal timestamps deaths are applied first, so the peak is the
    // conservative count.
    let mut deltas: Vec<(u64, i32)> = Vec::with_capacity(fork_log.len() + exit_log.len());
    for f in fork_log {
        deltas.push((f.at.to_bits(), 1));
    }
    for e in exit_log {
        if e.pid != zygote_pid {
            deltas.push((e.at.to_bits(), -1));
        }
    }
    deltas.sort_unstable();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, d) in deltas {
        live += i64::from(d);
        peak = peak.max(live);
    }

    // FNV-1a over the full event history.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for f in fork_log {
        mix(u64::from(f.parent.0));
        mix(u64::from(f.child.0));
        mix(f.at.to_bits());
        mix(f.latency_ns.to_bits());
    }
    for e in exit_log {
        mix(u64::from(e.pid.0));
        mix(e.at.to_bits());
        mix(e.code as u32 as u64);
    }

    let forks = fork_log.len() as f64;
    StormReport {
        children: zygote.cfg.children,
        completed: zygote.completed,
        retries: zygote.retries,
        final_ns,
        p50_fork_ns: percentile(&lats, 0.50),
        p99_fork_ns: percentile(&lats, 0.99),
        mean_fork_ns: mean,
        forks_per_sim_sec: if final_ns > 0.0 {
            forks / (final_ns / 1e9)
        } else {
            0.0
        },
        sim_ns_per_fork: if forks > 0.0 { final_ns / forks } else { 0.0 },
        peak_live: peak.try_into().unwrap_or(u32::MAX),
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_draws_are_seed_deterministic_and_positive() {
        let mut a = StormZygote::new(StormConfig::standard(10, 42));
        let mut b = StormZygote::new(StormConfig::standard(10, 42));
        for _ in 0..1000 {
            let x = a.exp_draw(100_000.0);
            let y = b.exp_draw(100_000.0);
            assert_eq!(x.to_bits(), y.to_bits());
            assert!(x > 0.0 && x.is_finite());
        }
        let mut c = StormZygote::new(StormConfig::standard(10, 43));
        assert_ne!(
            a.exp_draw(100_000.0).to_bits(),
            c.exp_draw(100_000.0).to_bits(),
            "different seeds diverge"
        );
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut z = StormZygote::new(StormConfig::standard(10, 7));
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| z.exp_draw(100_000.0)).sum();
        let mean = sum / f64::from(n);
        assert!(
            (80_000.0..120_000.0).contains(&mean),
            "sample mean {mean} too far from 100000"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.50), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn standard_config_guarantees_full_overlap() {
        // The service base must exceed any plausible arrival span:
        // children × mean gap, with 3x headroom for fork service time.
        let cfg = StormConfig::standard(10_000, 1);
        assert!(cfg.service_base_ns > 3.0 * f64::from(cfg.children) * cfg.arrival_mean_ns);
    }
}
