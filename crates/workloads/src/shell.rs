//! Shell-style `fork + exec` (paper pattern U1: "running an executable
//! via Bash").
//!
//! The shell forks itself, the child `exec`s a fresh command image — the
//! pattern modern SASOSes support even without full fork (paper §2.3) and
//! the one μFork supports *in addition to* everything else.

use std::any::Any;

use ufork_abi::{
    BlockingCall, Env, ForkResult, ImageSpec, Program, ProgramBox, Resume, StepOutcome,
};

/// A command the shell runs: compute then write its result to a file.
#[derive(Clone, Debug)]
pub struct Command {
    /// Output path in the ram disk.
    pub output: String,
    /// Work (generic ops).
    pub ops: u64,
    /// Exit code to finish with.
    pub code: i32,
}

impl Program for Command {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                env.cpu_ops(self.ops);
                let run = (|| -> Result<(), ufork_abi::Errno> {
                    let buf = env.malloc(64)?;
                    let pid = env.sys_getpid();
                    let msg = format!("done by pid {}", pid.0);
                    env.store(
                        &buf.with_addr(buf.base())
                            .map_err(|_| ufork_abi::Errno::Fault)?,
                        msg.as_bytes(),
                    )?;
                    let fd = env.sys_open(&self.output, true)?;
                    env.sys_write(fd, &buf, msg.len() as u64)?;
                    env.sys_close(fd)?;
                    Ok(())
                })();
                StepOutcome::Exit(if run.is_ok() { self.code } else { 1 })
            }
            _ => StepOutcome::Exit(1),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A minimal shell: runs each command via fork + exec + wait.
#[derive(Clone, Debug)]
pub struct Shell {
    /// Commands left to run.
    pub commands: Vec<Command>,
    next: usize,
    /// Exit statuses collected from children (`code` of each command).
    pub statuses: Vec<i32>,
}

impl Shell {
    /// A shell that will run the given commands in order.
    pub fn new(commands: Vec<Command>) -> Shell {
        Shell {
            commands,
            next: 0,
            statuses: Vec::new(),
        }
    }

    fn command_image(cmd: &Command) -> ImageSpec {
        ImageSpec {
            name: format!("cmd-{}", cmd.output),
            text_bytes: 32 * 1024,
            data_bytes: 8 * 1024,
            heap_bytes: 64 * 1024,
            stack_bytes: 32 * 1024,
            got_slots: 32,
        }
    }
}

impl Program for Shell {
    fn resume(&mut self, _env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                if self.commands.is_empty() {
                    StepOutcome::Exit(0)
                } else {
                    StepOutcome::Fork
                }
            }
            Resume::Forked(ForkResult::Child) => {
                // The child becomes the command: execve replaces the image
                // (and this very program) entirely.
                let cmd = self.commands[self.next].clone();
                let image = Shell::command_image(&cmd);
                StepOutcome::Exec {
                    image,
                    program: ProgramBox(Box::new(cmd)),
                }
            }
            Resume::Forked(ForkResult::Parent(_)) => StepOutcome::Block(BlockingCall::Wait),
            Resume::Ret(Ok(status)) => {
                self.statuses.push((status >> 32) as i32);
                self.next += 1;
                if self.next < self.commands.len() {
                    StepOutcome::Fork
                } else {
                    StepOutcome::Exit(0)
                }
            }
            Resume::Ret(Err(_)) => StepOutcome::Exit(1),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
