//! A Redis-like in-memory key-value store with fork-based snapshots.
//!
//! Reproduces the structure the paper's Redis experiments exercise
//! (Figures 3–5): an in-memory database whose hash table, entries, and
//! string objects live in simulated μprocess memory behind capabilities,
//! and a `BGSAVE` that forks and serializes the database to a ram-disk
//! file in the child while sharing memory copy-on-*.
//!
//! The pointer graph is what the experiments measure: walking it in the
//! child triggers CoPA capability-load faults on the pages holding
//! buckets and entries, while the (pointer-free) value payload pages stay
//! shared — the mechanism behind the paper's CoPA memory savings.

mod dict;
mod rdb;

pub use dict::Dict;
pub use rdb::{rdb_parse, rdb_save, RDB_MAGIC};

use std::any::Any;

use ufork_abi::{BlockingCall, Env, ForkResult, Program, Resume, StepOutcome};

/// Redis workload configuration.
#[derive(Clone, Debug)]
pub struct RedisConfig {
    /// Number of entries.
    pub entries: u64,
    /// Value size in bytes (the paper uses 100 KB).
    pub val_bytes: u64,
    /// Hash-table bucket count (power of two).
    pub buckets: u64,
    /// Dump file path.
    pub dump_path: String,
    /// Scratch memory the *child* dirties during the save, as a fraction
    /// of the database size. Models CheriBSD's observed allocator
    /// behaviour (paper §5.1: 56 MB forked-Redis consumption attributed
    /// to allocator memory consumption; ~0 on μFork's static heap).
    pub child_scratch_fraction: f64,
    /// Keys the parent overwrites while the save runs (exercises
    /// parent-side CoW).
    pub parent_writes_during_save: u64,
}

impl RedisConfig {
    /// A database of `entries` × `val_bytes`, defaults elsewhere.
    pub fn sized(entries: u64, val_bytes: u64) -> RedisConfig {
        RedisConfig {
            entries,
            val_bytes,
            buckets: (entries * 2).next_power_of_two().max(16),
            dump_path: "dump.rdb".to_string(),
            child_scratch_fraction: 0.0,
            parent_writes_during_save: 0,
        }
    }

    /// Total payload bytes.
    pub fn db_bytes(&self) -> u64 {
        self.entries * self.val_bytes
    }

    /// Heap size to build the image with (the μFork prototype's
    /// build-time static heap, sized ~1.37× the database like the paper's
    /// 136.7 MB heap for the 100 MB experiment).
    pub fn heap_bytes(&self) -> u64 {
        let need = self.db_bytes() + self.entries * 4096 + (4 << 20);
        (need as f64 * 1.3) as u64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Boot,
    Populated,
    Saving,
}

/// The Redis server program: populate, BGSAVE via fork, wait, exit.
///
/// Timing is read from the machine's fork/exit logs by the harness; the
/// program also records its own phase timestamps.
#[derive(Clone, Debug)]
pub struct RedisServer {
    /// Configuration.
    pub cfg: RedisConfig,
    phase: Phase,
    /// Simulated time when BGSAVE was initiated (just before fork).
    pub bgsave_started: f64,
    /// Simulated time when the save completed (child reaped).
    pub bgsave_finished: f64,
}

/// Register slot for the dict handle.
pub const DICT_REG: usize = 4;
/// Register slot for the child's I/O scratch buffer.
const SCRATCH_REG: usize = 5;

impl RedisServer {
    /// Creates the server program.
    pub fn new(cfg: RedisConfig) -> RedisServer {
        RedisServer {
            cfg,
            phase: Phase::Boot,
            bgsave_started: 0.0,
            bgsave_finished: 0.0,
        }
    }

    fn populate(&self, env: &mut dyn Env) -> Result<(), ufork_abi::Errno> {
        let dict = Dict::create(env, self.cfg.buckets)?;
        env.set_reg(DICT_REG, dict.handle())?;
        let mut val = vec![0u8; self.cfg.val_bytes as usize];
        for i in 0..self.cfg.entries {
            let key = format!("key:{i:012}");
            // Deterministic, entry-specific payload (verified by tests
            // against the dump).
            let b = (i as u8).wrapping_mul(31).wrapping_add(7);
            val.iter_mut().enumerate().for_each(|(j, v)| {
                *v = b.wrapping_add((j % 251) as u8);
            });
            dict.insert(env, key.as_bytes(), &val)?;
        }
        Ok(())
    }

    fn serialize(&self, env: &mut dyn Env) -> Result<(), ufork_abi::Errno> {
        let dict = Dict::from_handle(env.reg(DICT_REG)?);
        // Optional scratch churn modelling the baseline's allocator
        // behaviour during the save.
        let scratch = (self.cfg.db_bytes() as f64 * self.cfg.child_scratch_fraction) as u64;
        if scratch > 0 {
            let chunk = 1 << 20;
            let mut left = scratch;
            while left > 0 {
                let n = chunk.min(left);
                let c = env.malloc(n)?;
                // Touch every page of the scratch allocation.
                let zeros = vec![0u8; 4096];
                let mut off = 0;
                while off < n {
                    env.store(
                        &c.with_addr(c.base() + off)
                            .map_err(|_| ufork_abi::Errno::Fault)?,
                        &zeros[..(4096).min((n - off) as usize)],
                    )?;
                    off += 4096;
                }
                left -= n;
            }
        }
        let tmp = format!("{}.tmp", self.cfg.dump_path);
        rdb::rdb_save(env, &dict, &tmp)?;
        env.sys_rename(&tmp, &self.cfg.dump_path)?;
        Ok(())
    }
}

impl Program for RedisServer {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (Phase::Boot, Resume::Start) => {
                if self.populate(env).is_err() {
                    return StepOutcome::Exit(1);
                }
                let scratch = env.malloc(64 * 1024).expect("scratch buffer");
                env.set_reg(SCRATCH_REG, scratch).expect("register");
                self.phase = Phase::Populated;
                // Yield once so BGSAVE starts on a fresh scheduling step
                // (the harness samples memory between populate and fork).
                StepOutcome::Block(BlockingCall::Yield)
            }
            (Phase::Populated, Resume::Ret(_)) => {
                self.bgsave_started = env.now();
                self.phase = Phase::Saving;
                StepOutcome::Fork
            }
            (Phase::Saving, Resume::Forked(ForkResult::Child)) => {
                let code = if self.serialize(env).is_ok() { 0 } else { 1 };
                StepOutcome::Exit(code)
            }
            (Phase::Saving, Resume::Forked(ForkResult::Parent(_))) => {
                // Handle a few writes while the child saves (CoW).
                if self.cfg.parent_writes_during_save > 0 {
                    let dict = Dict::from_handle(env.reg(DICT_REG).expect("dict"));
                    let val = vec![0xEEu8; self.cfg.val_bytes.min(4096) as usize];
                    for i in 0..self.cfg.parent_writes_during_save {
                        let key = format!("key:{:012}", i % self.cfg.entries.max(1));
                        let _ = dict.update_in_place(env, key.as_bytes(), &val);
                    }
                }
                StepOutcome::Block(BlockingCall::Wait)
            }
            (Phase::Saving, Resume::Ret(r)) => {
                self.bgsave_finished = env.now();
                match r {
                    Ok(status) if (status >> 32) == 0 => StepOutcome::Exit(0),
                    _ => StepOutcome::Exit(1),
                }
            }
            (p, i) => unreachable!("bad redis transition: {p:?} / {i:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
