//! The Redis hash table, living entirely in simulated μprocess memory.
//!
//! Layout:
//!
//! ```text
//! dict handle (32 B):   [0] buckets cap   [16] capacity u64  [24] size u64
//! bucket array:         capacity × 16 B capability slots (chain heads)
//! entry (64 B):         [0] key cap  [16] val cap  [32] next cap
//!                       [48] key_len u32  [52] val_len u32
//! key / value objects:  raw byte blocks (sds-style)
//! ```
//!
//! Every link is a real capability in simulated memory: after a fork, the
//! serializer's walk performs exactly the capability loads that CoPA
//! turns into page copies + relocations.

use ufork_abi::{Capability, Env, Errno, SysResult};

/// FNV-1a (host-side hash; the CPU cost is charged to the program).
fn hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Callback for [`Dict::for_each_entry`]: receives the environment, the
/// key bytes, and the value's capability + length.
pub type EntryVisitor<'a> = dyn FnMut(&mut dyn Env, &[u8], Capability, u32) -> SysResult<()> + 'a;

/// A handle to an in-memory dict.
#[derive(Clone, Copy, Debug)]
pub struct Dict {
    handle: Capability,
}

const E_KEY: u64 = 0;
const E_VAL: u64 = 16;
const E_NEXT: u64 = 32;
const E_KLEN: u64 = 48;

impl Dict {
    /// Allocates an empty dict with `buckets` chain heads.
    pub fn create(env: &mut dyn Env, buckets: u64) -> SysResult<Dict> {
        let handle = env.malloc(32)?;
        let bucket_arr = env.malloc(buckets * 16)?;
        env.store_cap_at(&handle, 0, &bucket_arr)?;
        env.store_u64(&at(&handle, 16)?, buckets)?;
        env.store_u64(&at(&handle, 24)?, 0)?;
        Ok(Dict { handle })
    }

    /// Rebuilds the handle from a register value.
    pub fn from_handle(handle: Capability) -> Dict {
        Dict { handle }
    }

    /// The handle capability (to park in a register across forks).
    pub fn handle(&self) -> Capability {
        self.handle
    }

    fn buckets(&self, env: &mut dyn Env) -> SysResult<(Capability, u64)> {
        let arr = env.load_cap_at(&self.handle, 0)?.ok_or(Errno::Fault)?;
        let cap = env.load_u64(&at(&self.handle, 16)?)?;
        Ok((arr, cap))
    }

    /// Number of entries.
    pub fn len(&self, env: &mut dyn Env) -> SysResult<u64> {
        env.load_u64(&at(&self.handle, 24)?)
    }

    /// True when empty.
    pub fn is_empty(&self, env: &mut dyn Env) -> SysResult<bool> {
        Ok(self.len(env)? == 0)
    }

    /// Inserts a key/value pair (no duplicate check: the workload uses
    /// unique keys, as Redis' keyspace does).
    pub fn insert(&self, env: &mut dyn Env, key: &[u8], val: &[u8]) -> SysResult<()> {
        env.cpu_ops(key.len() as u64 + 20); // hash + bucket chase
        let (arr, nbuckets) = self.buckets(env)?;
        let idx = hash(key) % nbuckets;

        let kcap = env.malloc(key.len().max(1) as u64)?;
        env.store(&kcap.with_addr(kcap.base()).map_err(|_| Errno::Fault)?, key)?;
        let vcap = env.malloc(val.len().max(1) as u64)?;
        env.store(&vcap.with_addr(vcap.base()).map_err(|_| Errno::Fault)?, val)?;
        let entry = env.malloc(64)?;
        env.store_cap_at(&entry, E_KEY, &kcap)?;
        env.store_cap_at(&entry, E_VAL, &vcap)?;
        let mut lens = [0u8; 8];
        lens[..4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        lens[4..].copy_from_slice(&(val.len() as u32).to_le_bytes());
        env.store(&at(&entry, E_KLEN)?, &lens)?;

        // Chain onto the bucket head.
        if let Some(head) = env.load_cap_at(&arr, idx * 16)? {
            env.store_cap_at(&entry, E_NEXT, &head)?;
        }
        env.store_cap_at(&arr, idx * 16, &entry)?;
        let n = self.len(env)?;
        env.store_u64(&at(&self.handle, 24)?, n + 1)?;
        Ok(())
    }

    /// Looks a key up, returning `(value cap, value length)`.
    pub fn get(&self, env: &mut dyn Env, key: &[u8]) -> SysResult<Option<(Capability, u32)>> {
        env.cpu_ops(key.len() as u64 + 20);
        let (arr, nbuckets) = self.buckets(env)?;
        let idx = hash(key) % nbuckets;
        let mut cur = env.load_cap_at(&arr, idx * 16)?;
        while let Some(entry) = cur {
            let kcap = env.load_cap_at(&entry, E_KEY)?.ok_or(Errno::Fault)?;
            let mut lens = [0u8; 8];
            env.load(&at(&entry, E_KLEN)?, &mut lens)?;
            let klen = u32::from_le_bytes(lens[..4].try_into().expect("4 bytes"));
            let vlen = u32::from_le_bytes(lens[4..].try_into().expect("4 bytes"));
            if klen as usize == key.len() {
                let mut kb = vec![0u8; klen as usize];
                env.load(
                    &kcap.with_addr(kcap.base()).map_err(|_| Errno::Fault)?,
                    &mut kb,
                )?;
                env.cpu_ops(klen as u64);
                if kb == key {
                    let vcap = env.load_cap_at(&entry, E_VAL)?.ok_or(Errno::Fault)?;
                    return Ok(Some((vcap, vlen)));
                }
            }
            cur = env.load_cap_at(&entry, E_NEXT)?;
        }
        Ok(None)
    }

    /// Overwrites the beginning of a value in place (dirties its pages:
    /// the parent-side CoW workload during a background save).
    pub fn update_in_place(&self, env: &mut dyn Env, key: &[u8], val: &[u8]) -> SysResult<()> {
        let Some((vcap, vlen)) = self.get(env, key)? else {
            return Err(Errno::NoEnt);
        };
        let n = (vlen as usize).min(val.len());
        env.store(
            &vcap.with_addr(vcap.base()).map_err(|_| Errno::Fault)?,
            &val[..n],
        )?;
        Ok(())
    }

    /// Visits every entry in bucket order: `f(key_bytes, val_cap, val_len)`.
    pub fn for_each_entry(&self, env: &mut dyn Env, f: &mut EntryVisitor<'_>) -> SysResult<()> {
        let (arr, nbuckets) = self.buckets(env)?;
        for b in 0..nbuckets {
            env.cpu_ops(2);
            let mut cur = env.load_cap_at(&arr, b * 16)?;
            while let Some(entry) = cur {
                let kcap = env.load_cap_at(&entry, E_KEY)?.ok_or(Errno::Fault)?;
                let vcap = env.load_cap_at(&entry, E_VAL)?.ok_or(Errno::Fault)?;
                let mut lens = [0u8; 8];
                env.load(&at(&entry, E_KLEN)?, &mut lens)?;
                let klen = u32::from_le_bytes(lens[..4].try_into().expect("4 bytes"));
                let vlen = u32::from_le_bytes(lens[4..].try_into().expect("4 bytes"));
                let mut kb = vec![0u8; klen as usize];
                env.load(
                    &kcap.with_addr(kcap.base()).map_err(|_| Errno::Fault)?,
                    &mut kb,
                )?;
                f(env, &kb, vcap, vlen)?;
                cur = env.load_cap_at(&entry, E_NEXT)?;
            }
        }
        Ok(())
    }
}

/// Derives a cursor at `base + off` of a capability.
pub(crate) fn at(cap: &Capability, off: u64) -> SysResult<Capability> {
    cap.with_addr(cap.base() + off).map_err(|_| Errno::Fault)
}
