//! RDB-style serializer: the work a Redis BGSAVE child performs.
//!
//! Format (simplified but structurally faithful):
//!
//! ```text
//! "UREDIS01"                       magic
//! per entry:  klen u32 | key bytes | vlen u32 | value bytes
//! 0xFF u8                          EOF opcode
//! checksum u64                     (sum of all value bytes, mod 2^64)
//! ```
//!
//! Metadata goes through a small scratch buffer in child memory; value
//! payloads are written **directly from their in-memory object** (the
//! kernel reads the user pages in place) — so under CoPA the payload
//! pages are never copied, while the dict walk's capability loads copy
//! the pointer-bearing pages. This is exactly the asymmetry behind
//! Figure 5.

use ufork_abi::{Capability, Env, Errno, SysResult};

use super::dict::{at, Dict};

/// Magic prefix of a dump.
pub const RDB_MAGIC: &[u8; 8] = b"UREDIS01";

/// Serializes the dict to `path` (created/truncated).
pub fn rdb_save(env: &mut dyn Env, dict: &Dict, path: &str) -> SysResult<()> {
    let fd = env.sys_open(path, true)?;
    let scratch = env.malloc(4096)?;
    let mut checksum: u64 = 0;

    write_buf(env, fd, &scratch, RDB_MAGIC)?;
    dict.for_each_entry(env, &mut |env, key, vcap, vlen| {
        // Header: lengths + key through the scratch buffer.
        let mut hdr = Vec::with_capacity(key.len() + 8);
        hdr.extend_from_slice(&(key.len() as u32).to_le_bytes());
        hdr.extend_from_slice(key);
        hdr.extend_from_slice(&vlen.to_le_bytes());
        write_buf(env, fd, &scratch, &hdr)?;
        // Serialization CPU: Redis encodes objects byte by byte.
        env.cpu_ops(u64::from(vlen) + key.len() as u64);
        // Zero-copy payload write straight from the value object.
        let vstart = vcap.with_addr(vcap.base()).map_err(|_| Errno::Fault)?;
        env.sys_write(fd, &vstart, u64::from(vlen))?;
        // Checksum contribution (reads the value once more — plain data
        // loads, shared pages stay shared).
        let mut sample = vec![0u8; (u64::from(vlen)).min(64) as usize];
        env.load(&vstart, &mut sample)?;
        checksum = checksum.wrapping_add(sample.iter().map(|&b| u64::from(b)).sum::<u64>());
        checksum = checksum.wrapping_add(u64::from(vlen));
        Ok(())
    })?;

    let mut tail = vec![0xFFu8];
    tail.extend_from_slice(&checksum.to_le_bytes());
    write_buf(env, fd, &scratch, &tail)?;
    env.sys_close(fd)?;
    Ok(())
}

/// Writes host bytes through the child's scratch buffer (copy into
/// simulated memory, then a write syscall — the normal buffered path).
fn write_buf(
    env: &mut dyn Env,
    fd: ufork_abi::Fd,
    scratch: &Capability,
    data: &[u8],
) -> SysResult<()> {
    let mut off = 0;
    while off < data.len() {
        let n = (data.len() - off).min(4096);
        env.store(&at(scratch, 0)?, &data[off..off + n])?;
        env.sys_write(fd, &at(scratch, 0)?, n as u64)?;
        off += n;
    }
    Ok(())
}

/// `(key, value)` byte pairs recovered from a dump.
pub type RdbEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Parses a dump produced by [`rdb_save`] (harness-side verification).
///
/// Returns `(entries, checksum_ok)` where `entries` is a list of
/// `(key, value)` pairs.
pub fn rdb_parse(data: &[u8]) -> Option<(RdbEntries, bool)> {
    if data.len() < 8 || &data[..8] != RDB_MAGIC {
        return None;
    }
    let mut pos = 8;
    let mut entries = Vec::new();
    let mut checksum: u64 = 0;
    loop {
        if pos >= data.len() {
            return None;
        }
        if data[pos] == 0xFF && data.len() - pos == 9 {
            let stored = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().ok()?);
            return Some((entries, stored == checksum));
        }
        if pos + 4 > data.len() {
            return None;
        }
        let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        let key = data.get(pos..pos + klen)?.to_vec();
        pos += klen;
        let vlen = u32::from_le_bytes(data.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let val = data.get(pos..pos + vlen)?.to_vec();
        pos += vlen;
        checksum = checksum.wrapping_add(val.iter().take(64).map(|&b| u64::from(b)).sum::<u64>());
        checksum = checksum.wrapping_add(vlen as u64);
        entries.push((key, val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip_of_synthetic_dump() {
        let mut dump = Vec::new();
        dump.extend_from_slice(RDB_MAGIC);
        let mut checksum: u64 = 0;
        for (k, v) in [
            (b"alpha".to_vec(), vec![1u8, 2, 3]),
            (b"beta".to_vec(), vec![9u8; 100]),
        ] {
            dump.extend_from_slice(&(k.len() as u32).to_le_bytes());
            dump.extend_from_slice(&k);
            dump.extend_from_slice(&(v.len() as u32).to_le_bytes());
            dump.extend_from_slice(&v);
            checksum = checksum.wrapping_add(v.iter().take(64).map(|&b| u64::from(b)).sum::<u64>());
            checksum = checksum.wrapping_add(v.len() as u64);
        }
        dump.push(0xFF);
        dump.extend_from_slice(&checksum.to_le_bytes());
        let (entries, ok) = rdb_parse(&dump).unwrap();
        assert!(ok);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, b"alpha");
        assert_eq!(entries[1].1, vec![9u8; 100]);
    }

    #[test]
    fn parse_rejects_bad_magic_and_truncation() {
        assert!(rdb_parse(b"NOTMAGIC").is_none());
        let mut dump = Vec::new();
        dump.extend_from_slice(RDB_MAGIC);
        dump.extend_from_slice(&(10u32).to_le_bytes());
        dump.extend_from_slice(b"shrt");
        assert!(rdb_parse(&dump).is_none());
    }
}
