//! A multi-threaded KV store that snapshots itself with fork — the
//! combination real systems find hardest: POSIX fork of a multi-threaded
//! process captures *only the calling thread*, and the child must still
//! see a consistent heap.
//!
//! The main thread spawns worker threads that apply increments to
//! counters in shared memory; at snapshot time the main thread joins the
//! workers (a stop-the-world point, as Redis does before `fork`), forks,
//! and the single-threaded child serializes the counters while the parent
//! spawns fresh workers and keeps mutating.

use std::any::Any;

use ufork_abi::{
    BlockingCall, Env, Errno, ForkResult, Program, ProgramBox, Resume, StepOutcome, SysResult,
};

/// Register slot holding the counter-array capability.
const ARR_REG: usize = 11;

/// A worker thread: applies `rounds` increments to its counter slice.
#[derive(Clone, Debug)]
struct Worker {
    index: u64,
    rounds: u32,
    done: u32,
}

impl Program for Worker {
    fn resume(&mut self, env: &mut dyn Env, _input: Resume) -> StepOutcome {
        let arr = env.reg(ARR_REG).expect("counter array");
        while self.done < self.rounds {
            self.done += 1;
            env.cpu_ops(200);
            let cell = arr
                .with_addr(arr.base() + self.index * 64)
                .expect("in bounds");
            let v = env.load_u64(&cell).expect("readable");
            env.store_u64(&cell, v + 1).expect("writable");
            // Yield between rounds so workers genuinely interleave.
            if self.done < self.rounds {
                return StepOutcome::Block(BlockingCall::Yield);
            }
        }
        StepOutcome::Exit(0)
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Configuration for the multi-threaded KV snapshot workload.
#[derive(Clone, Debug)]
pub struct MtKvConfig {
    /// Worker threads per generation.
    pub workers: u64,
    /// Increment rounds each worker applies per generation.
    pub rounds: u32,
    /// Snapshot output path.
    pub dump_path: String,
}

impl Default for MtKvConfig {
    fn default() -> MtKvConfig {
        MtKvConfig {
            workers: 4,
            rounds: 8,
            dump_path: "mtkv.snap".to_string(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Spawning,
    Joining,
    Snapshot,
    Reaping,
    SecondGen,
}

/// The main thread of the multi-threaded KV store.
#[derive(Clone, Debug)]
pub struct MtKv {
    /// Configuration.
    pub cfg: MtKvConfig,
    phase: Phase,
    spawned: u64,
    tids: Vec<u64>,
    joined: u64,
    generation: u32,
    /// Set in the child after the snapshot is written.
    pub snapshot_written: bool,
}

impl MtKv {
    /// Creates the program.
    pub fn new(cfg: MtKvConfig) -> MtKv {
        MtKv {
            cfg,
            phase: Phase::Init,
            spawned: 0,
            tids: Vec::new(),
            joined: 0,
            generation: 0,
            snapshot_written: false,
        }
    }

    fn spawn_worker(&mut self) -> StepOutcome {
        let w = Worker {
            index: self.spawned % self.cfg.workers,
            rounds: self.cfg.rounds,
            done: 0,
        };
        self.spawned += 1;
        StepOutcome::Block(BlockingCall::SpawnThread {
            program: ProgramBox(Box::new(w)),
        })
    }

    fn serialize(&self, env: &mut dyn Env) -> SysResult<()> {
        let arr = env.reg(ARR_REG)?;
        let fd = env.sys_open(&self.cfg.dump_path, true)?;
        let buf = env.malloc(64)?;
        for i in 0..self.cfg.workers {
            let cell = arr
                .with_addr(arr.base() + i * 64)
                .map_err(|_| Errno::Fault)?;
            let v = env.load_u64(&cell)?;
            let line = format!("counter[{i}]={v}\n");
            env.store(
                &buf.with_addr(buf.base()).map_err(|_| Errno::Fault)?,
                line.as_bytes(),
            )?;
            env.sys_write(fd, &buf, line.len() as u64)?;
        }
        env.sys_close(fd)?;
        Ok(())
    }
}

impl Program for MtKv {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.phase, input) {
            (Phase::Init, Resume::Start) => {
                let arr = env.malloc(self.cfg.workers * 64).expect("counters");
                for i in 0..self.cfg.workers {
                    env.store_u64(&arr.with_addr(arr.base() + i * 64).expect("in bounds"), 0)
                        .expect("init");
                }
                env.set_reg(ARR_REG, arr).expect("register");
                self.phase = Phase::Spawning;
                self.spawn_worker()
            }
            (Phase::Spawning, Resume::Ret(Ok(tid))) => {
                self.tids.push(tid);
                if self.spawned < self.cfg.workers {
                    self.spawn_worker()
                } else {
                    // Stop-the-world: join all workers before the fork.
                    self.phase = Phase::Joining;
                    StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[0] })
                }
            }
            (Phase::Joining, Resume::Ret(Ok(_))) => {
                self.joined += 1;
                if (self.joined as usize) < self.tids.len() {
                    StepOutcome::Block(BlockingCall::JoinThread {
                        tid: self.tids[self.joined as usize],
                    })
                } else {
                    self.phase = Phase::Snapshot;
                    StepOutcome::Fork
                }
            }
            (Phase::Snapshot, Resume::Forked(ForkResult::Child)) => {
                // Single-threaded child: serialize and exit.
                let ok = self.serialize(env).is_ok();
                self.snapshot_written = ok;
                StepOutcome::Exit(if ok { 0 } else { 1 })
            }
            (Phase::Snapshot, Resume::Forked(ForkResult::Parent(_))) => {
                // Parent immediately starts a second generation of
                // mutation while the child snapshots.
                self.generation += 1;
                self.phase = Phase::SecondGen;
                self.spawned = 0;
                self.tids.clear();
                self.joined = 0;
                self.spawn_worker()
            }
            (Phase::SecondGen, Resume::Ret(Ok(v))) => {
                if self.tids.len() < self.cfg.workers as usize {
                    self.tids.push(v);
                    if self.spawned < self.cfg.workers {
                        return self.spawn_worker();
                    }
                    return StepOutcome::Block(BlockingCall::JoinThread { tid: self.tids[0] });
                }
                self.joined += 1;
                if (self.joined as usize) < self.tids.len() {
                    return StepOutcome::Block(BlockingCall::JoinThread {
                        tid: self.tids[self.joined as usize],
                    });
                }
                self.phase = Phase::Reaping;
                StepOutcome::Block(BlockingCall::Wait)
            }
            (Phase::Reaping, Resume::Ret(Ok(status))) => {
                StepOutcome::Exit(((status >> 32) & 0xff) as i32)
            }
            (_, Resume::Ret(Err(_))) => StepOutcome::Exit(1),
            (p, i) => unreachable!("bad mtkv transition: {p:?} / {i:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
