//! Nginx-style multi-worker web server (paper §5.1, Figure 7).
//!
//! A master process forks `workers` request-serving workers (U5) that
//! accept connections from a wrk-style closed-loop generator and serve
//! keep-alive requests: blocking read, parse + build response (CPU),
//! write. Workers yield while waiting for the next request on a
//! connection, which is what lets additional workers raise single-core
//! throughput (paper: +15.6% from 1→3 workers on one core).

use std::any::Any;

use ufork_abi::{BlockingCall, Env, Fd, ForkResult, Program, Resume, StepOutcome};

/// Nginx workload configuration.
#[derive(Clone, Debug)]
pub struct NginxConfig {
    /// Worker processes to fork.
    pub workers: u32,
    /// CPU ops to parse a request and build the response (user-space
    /// request handling).
    pub parse_ops: u64,
    /// Response size in bytes.
    pub resp_bytes: u64,
}

impl Default for NginxConfig {
    fn default() -> NginxConfig {
        NginxConfig {
            workers: 1,
            parse_ops: 18_000,
            resp_bytes: 1024,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Master,
    Worker,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WState {
    Accepting,
    Serving(Fd),
}

/// Register slot holding the worker's request buffer.
const BUF_REG: usize = 7;

/// The Nginx program: master in the initial process, workers after fork.
#[derive(Clone, Debug)]
pub struct Nginx {
    /// Configuration.
    pub cfg: NginxConfig,
    /// Listener fd (installed by the harness before the run).
    pub listen_fd: Fd,
    role: Role,
    forked: u32,
    wstate: WState,
    /// Requests served by this worker.
    pub served: u64,
}

impl Nginx {
    /// Creates the master program; `listen_fd` must be installed on the
    /// spawned process by the harness.
    pub fn new(cfg: NginxConfig, listen_fd: Fd) -> Nginx {
        Nginx {
            cfg,
            listen_fd,
            role: Role::Master,
            forked: 0,
            wstate: WState::Accepting,
            served: 0,
        }
    }

    fn accept(&mut self) -> StepOutcome {
        self.wstate = WState::Accepting;
        StepOutcome::Block(BlockingCall::Accept { fd: self.listen_fd })
    }

    fn read_next(&mut self, env: &mut dyn Env, conn: Fd) -> StepOutcome {
        self.wstate = WState::Serving(conn);
        let buf = env.reg(BUF_REG).expect("request buffer");
        StepOutcome::Block(BlockingCall::Read {
            fd: conn,
            buf,
            len: 4096,
        })
    }
}

impl Program for Nginx {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.role, input) {
            (Role::Master, Resume::Start) => {
                // Master setup: config parse, socket setup.
                env.cpu_ops(500_000);
                self.forked += 1;
                StepOutcome::Fork
            }
            (Role::Master, Resume::Forked(ForkResult::Parent(_))) => {
                if self.forked < self.cfg.workers {
                    self.forked += 1;
                    StepOutcome::Fork
                } else {
                    // Master parks, reaping if workers ever die.
                    StepOutcome::Block(BlockingCall::Wait)
                }
            }
            (Role::Master, Resume::Ret(_)) => StepOutcome::Block(BlockingCall::Wait),
            (Role::Master, Resume::Forked(ForkResult::Child)) => {
                // Become a worker.
                self.role = Role::Worker;
                let buf = env.malloc(8192).expect("request buffer");
                env.set_reg(BUF_REG, buf).expect("register");
                self.accept()
            }
            (Role::Worker, Resume::Ret(res)) => match (self.wstate, res) {
                (WState::Accepting, Ok(fd)) => {
                    #[allow(clippy::cast_possible_truncation)]
                    let conn = Fd(fd as i32);
                    self.read_next(env, conn)
                }
                (WState::Accepting, Err(_)) => StepOutcome::Exit(0), // source exhausted
                (WState::Serving(conn), Ok(0)) => {
                    // Connection done (keep-alive exhausted).
                    let _ = env.sys_close(conn);
                    self.accept()
                }
                (WState::Serving(conn), Ok(_n)) => {
                    // Parse + handle + respond.
                    env.cpu_ops(self.cfg.parse_ops);
                    let buf = env.reg(BUF_REG).expect("request buffer");
                    if env.sys_write(conn, &buf, self.cfg.resp_bytes).is_err() {
                        let _ = env.sys_close(conn);
                        return self.accept();
                    }
                    self.served += 1;
                    self.read_next(env, conn)
                }
                (WState::Serving(conn), Err(_)) => {
                    let _ = env.sys_close(conn);
                    self.accept()
                }
            },
            (r, i) => unreachable!("bad nginx transition: {r:?} / {i:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
