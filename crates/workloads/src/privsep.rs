//! qmail-style privilege separation (paper pattern U3, §3.6: "processes
//! are used to isolate components such as the SMTP server").
//!
//! A trusted broker forks an unprivileged parser per message and talks to
//! it only through pipes. A hostile message makes the parser attempt to
//! escape its μprocess; the breach attempt dies with the child and the
//! broker records it — exactly the adversarial fault-isolation scenario
//! μFork's Full isolation level exists for.

use std::any::Any;

use ufork_abi::{BlockingCall, Env, Errno, Fd, ForkResult, Program, Resume, StepOutcome};

/// The messages the broker processes: well-formed or hostile.
#[derive(Clone, Debug)]
pub struct PrivsepConfig {
    /// Messages to process.
    pub messages: u32,
    /// Every n-th message is hostile (0 = never).
    pub hostile_every: u32,
    /// Parse work per message (generic ops).
    pub parse_ops: u64,
}

impl Default for PrivsepConfig {
    fn default() -> PrivsepConfig {
        PrivsepConfig {
            messages: 20,
            hostile_every: 5,
            parse_ops: 10_000,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Broker,
    Parser,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BrokerState {
    Forking,
    AwaitingReply,
    Reaping,
}

/// The privilege-separated message broker.
#[derive(Clone, Debug)]
pub struct Privsep {
    /// Configuration.
    pub cfg: PrivsepConfig,
    role: Role,
    state: BrokerState,
    msg: u32,
    to_parser: Option<(Fd, Fd)>,
    from_parser: Option<(Fd, Fd)>,
    /// Messages parsed successfully.
    pub parsed: u64,
    /// Hostile messages contained (parser died, broker unharmed).
    pub contained: u64,
}

const BUF_REG: usize = 9;

impl Privsep {
    /// Creates the broker.
    pub fn new(cfg: PrivsepConfig) -> Privsep {
        Privsep {
            cfg,
            role: Role::Broker,
            state: BrokerState::Forking,
            msg: 0,
            to_parser: None,
            from_parser: None,
            parsed: 0,
            contained: 0,
        }
    }

    fn hostile(&self, msg: u32) -> bool {
        self.cfg.hostile_every != 0 && msg % self.cfg.hostile_every == self.cfg.hostile_every - 1
    }

    fn send(&self, env: &mut dyn Env, fd: Fd, value: u64) -> Result<(), Errno> {
        let buf = env.reg(BUF_REG)?;
        env.store_u64(&buf.with_addr(buf.base()).map_err(|_| Errno::Fault)?, value)?;
        env.sys_write(fd, &buf, 8)?;
        Ok(())
    }
}

impl Program for Privsep {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match (self.role, input) {
            (Role::Broker, Resume::Start) => {
                let buf = env.malloc(64).expect("message buffer");
                env.set_reg(BUF_REG, buf).expect("register");
                if self.cfg.messages == 0 {
                    return StepOutcome::Exit(0);
                }
                self.to_parser = Some(env.sys_pipe().expect("pipe"));
                self.from_parser = Some(env.sys_pipe().expect("pipe"));
                StepOutcome::Fork
            }
            (Role::Broker, Resume::Forked(ForkResult::Child)) => {
                self.role = Role::Parser;
                // Close the ends the parser does not use, so the broker
                // sees EOF if we die (the privilege-separation idiom).
                let _ = env.sys_close(self.to_parser.expect("pipes").1);
                let _ = env.sys_close(self.from_parser.expect("pipes").0);
                let buf = env.reg(BUF_REG).expect("buffer");
                StepOutcome::Block(BlockingCall::Read {
                    fd: self.to_parser.expect("pipes").0,
                    buf,
                    len: 8,
                })
            }
            (Role::Broker, Resume::Forked(ForkResult::Parent(_))) => {
                // Close the ends the broker does not use.
                let _ = env.sys_close(self.to_parser.expect("pipes").0);
                let _ = env.sys_close(self.from_parser.expect("pipes").1);
                // Send the first message.
                if self
                    .send(env, self.to_parser.expect("pipes").1, u64::from(self.msg))
                    .is_err()
                {
                    return StepOutcome::Exit(1);
                }
                self.state = BrokerState::AwaitingReply;
                let buf = env.reg(BUF_REG).expect("buffer");
                StepOutcome::Block(BlockingCall::Read {
                    fd: self.from_parser.expect("pipes").0,
                    buf,
                    len: 8,
                })
            }
            (Role::Broker, Resume::Ret(r)) => match self.state {
                BrokerState::AwaitingReply => {
                    match r {
                        Ok(n) if n > 0 => {
                            // Parser replied: message handled.
                            self.parsed += 1;
                        }
                        _ => {
                            // EOF or error: the parser died mid-message —
                            // a contained breach attempt.
                            self.contained += 1;
                        }
                    }
                    self.state = BrokerState::Reaping;
                    StepOutcome::Block(BlockingCall::Wait)
                }
                BrokerState::Reaping => {
                    self.msg += 1;
                    // Drop the previous message's pipe ends.
                    let _ = env.sys_close(self.to_parser.expect("pipes").1);
                    let _ = env.sys_close(self.from_parser.expect("pipes").0);
                    if self.msg >= self.cfg.messages {
                        return StepOutcome::Exit(0);
                    }
                    // Fresh pipes + parser for the next message (one
                    // parser per message, qmail-style).
                    self.to_parser = Some(env.sys_pipe().expect("pipe"));
                    self.from_parser = Some(env.sys_pipe().expect("pipe"));
                    self.state = BrokerState::Forking;
                    StepOutcome::Fork
                }
                BrokerState::Forking => StepOutcome::Exit(1),
            },
            (Role::Parser, Resume::Ret(r)) => {
                // Received a message to parse.
                let Ok(n) = r else {
                    return StepOutcome::Exit(1);
                };
                if n == 0 {
                    return StepOutcome::Exit(0);
                }
                env.cpu_ops(self.cfg.parse_ops);
                let buf = env.reg(BUF_REG).expect("buffer");
                let msg = env
                    .load_u64(&buf.with_addr(buf.base()).expect("cursor"))
                    .expect("readable") as u32;
                if self.hostile(msg) {
                    // The hostile payload tries to read outside the
                    // parser's region — μFork refuses; the parser dies
                    // without replying.
                    let breach = env.reg(0).expect("root");
                    let outside = breach.with_addr(breach.base().wrapping_sub(4096));
                    if let Ok(c) = outside {
                        if env.load(&c, &mut [0u8; 8]).is_ok() {
                            // Escaped! (Isolation off.) Report loudly.
                            return StepOutcome::Exit(66);
                        }
                    }
                    return StepOutcome::Exit(139);
                }
                if self
                    .send(
                        env,
                        self.from_parser.expect("pipes").1,
                        u64::from(msg) + 1000,
                    )
                    .is_err()
                {
                    return StepOutcome::Exit(1);
                }
                StepOutcome::Exit(0)
            }
            (r, i) => unreachable!("bad privsep transition: {r:?} / {i:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
