//! The minimal "hello world" process of the paper's microbenchmarks.

use std::any::Any;

use ufork_abi::{Env, ForkResult, Program, Resume, StepOutcome};

/// A minimal program: a little compute, optionally one fork, then exit.
///
/// With `forks == 1` this is the paper's Figure 8 microbenchmark: fork a
/// minimal process and measure latency and per-process memory.
#[derive(Clone, Debug)]
pub struct HelloWorld {
    /// Generic ops of "work" to perform before exiting.
    pub ops: u64,
    /// Forks the parent performs (children just exit).
    pub forks: u32,
    done: u32,
}

impl HelloWorld {
    /// A hello-world that forks once.
    pub fn forking() -> HelloWorld {
        HelloWorld {
            ops: 1000,
            forks: 1,
            done: 0,
        }
    }

    /// A hello-world that only exits.
    pub fn plain() -> HelloWorld {
        HelloWorld {
            ops: 1000,
            forks: 0,
            done: 0,
        }
    }
}

impl Program for HelloWorld {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => {
                env.cpu_ops(self.ops);
                if self.forks > 0 {
                    StepOutcome::Fork
                } else {
                    StepOutcome::Exit(0)
                }
            }
            Resume::Forked(ForkResult::Child) => {
                env.cpu_ops(self.ops);
                StepOutcome::Exit(0)
            }
            Resume::Forked(ForkResult::Parent(_)) => {
                self.done += 1;
                if self.done < self.forks {
                    StepOutcome::Fork
                } else {
                    StepOutcome::Block(ufork_abi::BlockingCall::Wait)
                }
            }
            Resume::Ret(_) => {
                // Reaped a child; wait for the rest.
                if self.done > 1 {
                    self.done -= 1;
                    StepOutcome::Block(ufork_abi::BlockingCall::Wait)
                } else {
                    StepOutcome::Exit(0)
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
