//! Tagged physical memory for the μFork simulator.
//!
//! Models the Morello memory system at the granularity μFork cares about:
//!
//! * 4 KiB physical frames ([`Frame`]), allocated from a fixed-size
//!   physical memory ([`PhysMem`]) with a free list;
//! * one **validity tag per 16-byte granule**, stored out of band. Writing
//!   plain data into a granule clears its tag; only a capability store sets
//!   it. This is exactly the property μFork's relocation scan exploits:
//!   "references are identified by the presence of a valid CHERI tag"
//!   (paper §4.2);
//! * per-frame **reference counts**, so kernels can share frames between a
//!   parent and child μprocess (CoW/CoA/CoPA) and account memory as a
//!   *proportional* resident set (paper §5.2).
//!
//! Capabilities are stored out of band next to their granule rather than
//! re-encoded into the 16 data bytes; the data bytes hold the architectural
//! "data view" ([`ufork_cheri::Capability::to_bytes`]) so that untagged
//! reads see plausible pointer bits, as on real hardware.
//!
//! # Examples
//!
//! ```
//! use ufork_cheri::{Capability, Perms};
//! use ufork_mem::PhysMem;
//!
//! let mut pm = PhysMem::new(16);
//! let f = pm.alloc_frame().unwrap();
//! let cap = Capability::new_root(0x4000, 64, Perms::data());
//! pm.store_cap(f, 0, &cap).unwrap();
//! assert_eq!(pm.load_cap(f, 0).unwrap(), Some(cap));
//! // Overwriting any byte of the granule clears the tag.
//! pm.write(f, 3, &[0xff]).unwrap();
//! assert_eq!(pm.load_cap(f, 0).unwrap(), None);
//! ```

mod dedup;
mod frame;
mod phys;
mod stats;

pub use dedup::{content_hash, DedupEntry, FrameDedupIndex};
pub use frame::{
    Frame, Pfn, GRANULES_PER_PAGE, GRANULES_PER_TAG_WORD, GRANULE_SIZE, PAGE_SIZE,
    TAG_WORDS_PER_PAGE,
};
pub use phys::{AllocGrant, MemError, PhysMem, PressureLevel, ShardStats, ZeroPolicy, NUM_SHARDS};
pub use stats::MemStats;
