//! Physical memory: frame allocation, refcounting, and checked access.

use std::fmt;

use ufork_cheri::Capability;

use crate::frame::{Frame, Pfn, GRANULE_SIZE, PAGE_SIZE};

/// Errors raised by the physical memory layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// No free frames left.
    OutOfFrames,
    /// Frame number out of range or not allocated.
    BadFrame(Pfn),
    /// Access crosses the end of a frame.
    OutOfRange {
        /// Offset within the frame.
        offset: u64,
        /// Access length.
        len: u64,
    },
    /// Capability access at a non-granule-aligned offset.
    Unaligned(u64),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames => write!(f, "out of physical frames"),
            MemError::BadFrame(p) => write!(f, "bad or unallocated frame {p:?}"),
            MemError::OutOfRange { offset, len } => {
                write!(
                    f,
                    "{len}-byte access at frame offset {offset:#x} out of range"
                )
            }
            MemError::Unaligned(o) => write!(f, "capability access at unaligned offset {o:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

struct Slot {
    frame: Frame,
    refcount: u32,
}

/// Simulated physical memory: a bounded pool of refcounted, tagged frames.
///
/// Frames are lazily materialized — a `PhysMem` sized for a large machine
/// costs host memory only for frames actually allocated. Reference counts
/// support CoW-style sharing: a frame shared between N μprocesses has
/// `refcount == N` and contributes `1/N` to each one's proportional
/// resident set.
pub struct PhysMem {
    slots: Vec<Option<Slot>>,
    free: Vec<Pfn>,
    next_fresh: u32,
    total_frames: u32,
    allocated: u32,
    peak_allocated: u32,
    alloc_attempts: u64,
    fail_at_attempt: Option<u64>,
}

impl PhysMem {
    /// Creates a physical memory of `total_frames` 4 KiB frames.
    pub fn new(total_frames: u32) -> PhysMem {
        PhysMem {
            slots: Vec::new(),
            free: Vec::new(),
            next_fresh: 0,
            total_frames,
            allocated: 0,
            peak_allocated: 0,
            alloc_attempts: 0,
            fail_at_attempt: None,
        }
    }

    /// Creates a physical memory of `mib` MiB.
    pub fn with_mib(mib: u32) -> PhysMem {
        PhysMem::new(mib * (1024 * 1024 / PAGE_SIZE as u32))
    }

    /// Total capacity in frames.
    pub fn total_frames(&self) -> u32 {
        self.total_frames
    }

    /// Currently allocated frames.
    pub fn allocated_frames(&self) -> u32 {
        self.allocated
    }

    /// High-water mark of allocated frames.
    pub fn peak_allocated_frames(&self) -> u32 {
        self.peak_allocated
    }

    /// Total `alloc_frame` attempts so far (successful or not). A
    /// fault-injection campaign first counts a clean run's attempts, then
    /// replays with [`PhysMem::fail_alloc_at`] targeting each index.
    pub fn alloc_attempts(&self) -> u64 {
        self.alloc_attempts
    }

    /// Arms deterministic fault injection: the allocation attempt with
    /// index `attempt` (counted by [`PhysMem::alloc_attempts`], 0-based
    /// from boot) fails with `OutOfFrames`. One-shot: the trigger disarms
    /// after firing so recovery paths can allocate again.
    pub fn fail_alloc_at(&mut self, attempt: u64) {
        self.fail_at_attempt = Some(attempt);
    }

    /// Disarms fault injection.
    pub fn clear_alloc_failure(&mut self) {
        self.fail_at_attempt = None;
    }

    /// Allocates a zeroed frame with refcount 1.
    pub fn alloc_frame(&mut self) -> Result<Pfn, MemError> {
        let attempt = self.alloc_attempts;
        self.alloc_attempts += 1;
        if self.fail_at_attempt == Some(attempt) {
            self.fail_at_attempt = None;
            return Err(MemError::OutOfFrames);
        }
        let pfn = if let Some(p) = self.free.pop() {
            p
        } else if self.next_fresh < self.total_frames {
            let p = Pfn(self.next_fresh);
            self.next_fresh += 1;
            p
        } else {
            return Err(MemError::OutOfFrames);
        };
        let idx = pfn.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx] = Some(Slot {
            frame: Frame::zeroed(),
            refcount: 1,
        });
        self.allocated += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        Ok(pfn)
    }

    /// Increments a frame's refcount (a new sharer, e.g. a CoW mapping).
    pub fn inc_ref(&mut self, pfn: Pfn) -> Result<u32, MemError> {
        let slot = self.slot_mut(pfn)?;
        slot.refcount += 1;
        Ok(slot.refcount)
    }

    /// Decrements a frame's refcount, freeing the frame when it hits zero.
    ///
    /// Returns the remaining refcount.
    pub fn dec_ref(&mut self, pfn: Pfn) -> Result<u32, MemError> {
        let slot = self.slot_mut(pfn)?;
        slot.refcount -= 1;
        let remaining = slot.refcount;
        if remaining == 0 {
            self.slots[pfn.0 as usize] = None;
            self.free.push(pfn);
            self.allocated -= 1;
        }
        Ok(remaining)
    }

    /// Current refcount of a frame.
    pub fn refcount(&self, pfn: Pfn) -> Result<u32, MemError> {
        Ok(self.slot(pfn)?.refcount)
    }

    /// Reads `buf.len()` bytes from `pfn` at `offset`.
    pub fn read(&self, pfn: Pfn, offset: u64, buf: &mut [u8]) -> Result<(), MemError> {
        check_range(offset, buf.len() as u64)?;
        self.slot(pfn)?.frame.read(offset, buf);
        Ok(())
    }

    /// Writes `buf` to `pfn` at `offset`, clearing overlapped tags.
    pub fn write(&mut self, pfn: Pfn, offset: u64, buf: &[u8]) -> Result<(), MemError> {
        check_range(offset, buf.len() as u64)?;
        self.slot_mut(pfn)?.frame.write(offset, buf);
        Ok(())
    }

    /// Loads the capability (if tagged) at granule-aligned `offset`.
    pub fn load_cap(&self, pfn: Pfn, offset: u64) -> Result<Option<Capability>, MemError> {
        check_cap_offset(offset)?;
        Ok(self.slot(pfn)?.frame.load_cap(offset))
    }

    /// Stores a capability at granule-aligned `offset`, setting its tag.
    pub fn store_cap(&mut self, pfn: Pfn, offset: u64, cap: &Capability) -> Result<(), MemError> {
        check_cap_offset(offset)?;
        self.slot_mut(pfn)?.frame.store_cap(offset, cap);
        Ok(())
    }

    /// Borrows a frame immutably (for scans and bulk copies).
    pub fn frame(&self, pfn: Pfn) -> Result<&Frame, MemError> {
        Ok(&self.slot(pfn)?.frame)
    }

    /// Borrows a frame mutably.
    pub fn frame_mut(&mut self, pfn: Pfn) -> Result<&mut Frame, MemError> {
        Ok(&mut self.slot_mut(pfn)?.frame)
    }

    /// Copies `src`'s data and tags into `dst` (both must be allocated).
    pub fn copy_frame(&mut self, src: Pfn, dst: Pfn) -> Result<(), MemError> {
        if src == dst {
            return Ok(());
        }
        self.slot(src)?;
        self.slot(dst)?;
        let (a, b) = (src.0 as usize, dst.0 as usize);
        // Split-borrow the two slots.
        let (lo, hi) = if a < b {
            let (l, h) = self.slots.split_at_mut(b);
            (&l[a], &mut h[0])
        } else {
            let (l, h) = self.slots.split_at_mut(a);
            (&h[0], &mut l[b])
        };
        let src_frame = &lo.as_ref().expect("checked above").frame;
        let dst_slot = hi.as_mut().expect("checked above");
        dst_slot.frame.copy_from(src_frame);
        Ok(())
    }

    fn slot(&self, pfn: Pfn) -> Result<&Slot, MemError> {
        self.slots
            .get(pfn.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(MemError::BadFrame(pfn))
    }

    fn slot_mut(&mut self, pfn: Pfn) -> Result<&mut Slot, MemError> {
        self.slots
            .get_mut(pfn.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(MemError::BadFrame(pfn))
    }
}

fn check_range(offset: u64, len: u64) -> Result<(), MemError> {
    // `offset + len` can wrap for adversarial offsets (e.g. u64::MAX),
    // sneaking past the bound and panicking downstream in `Frame::read`.
    match offset.checked_add(len) {
        Some(end) if end <= PAGE_SIZE => Ok(()),
        _ => Err(MemError::OutOfRange { offset, len }),
    }
}

fn check_cap_offset(offset: u64) -> Result<(), MemError> {
    if !offset.is_multiple_of(GRANULE_SIZE) {
        return Err(MemError::Unaligned(offset));
    }
    match offset.checked_add(GRANULE_SIZE) {
        Some(end) if end <= PAGE_SIZE => Ok(()),
        _ => Err(MemError::OutOfRange {
            offset,
            len: GRANULE_SIZE,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufork_cheri::Perms;

    fn cap() -> Capability {
        Capability::new_root(0x8000, 32, Perms::data())
    }

    #[test]
    fn alloc_until_exhaustion() {
        let mut pm = PhysMem::new(3);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        let c = pm.alloc_frame().unwrap();
        assert_eq!(pm.alloc_frame().unwrap_err(), MemError::OutOfFrames);
        assert_eq!(pm.allocated_frames(), 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn free_recycles_frames() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.write(a, 0, &[9]).unwrap();
        assert_eq!(pm.dec_ref(a), Ok(0));
        assert_eq!(pm.allocated_frames(), 0);
        let b = pm.alloc_frame().unwrap();
        assert_eq!(a, b);
        // Recycled frame is zeroed.
        let mut out = [1u8];
        pm.read(b, 0, &mut out).unwrap();
        assert_eq!(out, [0]);
    }

    #[test]
    fn refcounting_shares_frames() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        assert_eq!(pm.inc_ref(a), Ok(2));
        assert_eq!(pm.dec_ref(a), Ok(1));
        assert_eq!(pm.refcount(a), Ok(1));
        assert_eq!(pm.dec_ref(a), Ok(0));
        assert_eq!(pm.refcount(a), Err(MemError::BadFrame(a)));
    }

    #[test]
    fn access_to_freed_frame_fails() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.dec_ref(a).unwrap();
        assert_eq!(pm.read(a, 0, &mut [0]).unwrap_err(), MemError::BadFrame(a));
        assert_eq!(pm.write(a, 0, &[0]).unwrap_err(), MemError::BadFrame(a));
    }

    #[test]
    fn cross_page_access_rejected() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        assert!(matches!(
            pm.read(a, PAGE_SIZE - 2, &mut [0u8; 4]),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn huge_offset_does_not_wrap_past_the_range_check() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        // offset + len wraps to a small value; the check must still reject.
        assert!(matches!(
            pm.read(a, u64::MAX, &mut [0u8; 4]),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            pm.write(a, u64::MAX - 1, &[0u8; 8]),
            Err(MemError::OutOfRange { .. })
        ));
        // Granule-aligned offset near u64::MAX: offset + GRANULE_SIZE wraps
        // to exactly 0, the worst case for an unchecked `<=` comparison.
        let aligned_huge = u64::MAX - (GRANULE_SIZE - 1);
        assert_eq!(aligned_huge % GRANULE_SIZE, 0);
        assert_eq!(aligned_huge.wrapping_add(GRANULE_SIZE), 0);
        assert!(matches!(
            pm.load_cap(a, aligned_huge),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            pm.store_cap(a, aligned_huge, &cap()),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unaligned_cap_access_rejected() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        assert_eq!(
            pm.store_cap(a, 8, &cap()).unwrap_err(),
            MemError::Unaligned(8)
        );
        assert_eq!(pm.load_cap(a, 8).unwrap_err(), MemError::Unaligned(8));
    }

    #[test]
    fn copy_frame_duplicates_data_and_tags() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        pm.write(a, 0, b"hello").unwrap();
        pm.store_cap(a, 32, &cap()).unwrap();
        pm.copy_frame(a, b).unwrap();
        let mut out = [0u8; 5];
        pm.read(b, 0, &mut out).unwrap();
        assert_eq!(&out, b"hello");
        assert_eq!(pm.load_cap(b, 32).unwrap(), Some(cap()));
        // Copy in the other direction also works (exercises both borrow arms).
        pm.write(b, 0, b"world").unwrap();
        pm.copy_frame(b, a).unwrap();
        pm.read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"world");
    }

    #[test]
    fn peak_tracking() {
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        let _b = pm.alloc_frame().unwrap();
        pm.dec_ref(a).unwrap();
        assert_eq!(pm.allocated_frames(), 1);
        assert_eq!(pm.peak_allocated_frames(), 2);
    }

    #[test]
    fn with_mib_capacity() {
        let pm = PhysMem::with_mib(1);
        assert_eq!(pm.total_frames(), 256);
    }

    #[test]
    fn injected_alloc_failure_is_one_shot_and_deterministic() {
        let mut pm = PhysMem::new(8);
        let _a = pm.alloc_frame().unwrap();
        assert_eq!(pm.alloc_attempts(), 1);
        // Arm the third attempt (index 2): the next alloc succeeds, the
        // one after fails, and the one after that succeeds again.
        pm.fail_alloc_at(2);
        assert!(pm.alloc_frame().is_ok());
        assert_eq!(pm.alloc_frame().unwrap_err(), MemError::OutOfFrames);
        assert!(pm.alloc_frame().is_ok());
        assert_eq!(pm.alloc_attempts(), 4);
        // Failed attempts don't change accounting.
        assert_eq!(pm.allocated_frames(), 3);
    }

    #[test]
    fn disarming_cancels_injection() {
        let mut pm = PhysMem::new(2);
        pm.fail_alloc_at(0);
        pm.clear_alloc_failure();
        assert!(pm.alloc_frame().is_ok());
    }
}
