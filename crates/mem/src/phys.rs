//! Physical memory: frame allocation, refcounting, and checked access.

use std::fmt;

use ufork_cheri::Capability;

use crate::frame::{Frame, Pfn, GRANULE_SIZE, PAGE_SIZE};

/// Errors raised by the physical memory layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// No free frames left.
    OutOfFrames,
    /// Frame number out of range or not allocated.
    BadFrame(Pfn),
    /// Access crosses the end of a frame.
    OutOfRange {
        /// Offset within the frame.
        offset: u64,
        /// Access length.
        len: u64,
    },
    /// Capability access at a non-granule-aligned offset.
    Unaligned(u64),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames => write!(f, "out of physical frames"),
            MemError::BadFrame(p) => write!(f, "bad or unallocated frame {p:?}"),
            MemError::OutOfRange { offset, len } => {
                write!(
                    f,
                    "{len}-byte access at frame offset {offset:#x} out of range"
                )
            }
            MemError::Unaligned(o) => write!(f, "capability access at unaligned offset {o:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

struct Slot {
    frame: Frame,
    refcount: u32,
}

/// A freed frame parked on a recycled pool. `zeroed` records whether a
/// background reclaim pass already scrubbed it — in that case a later
/// [`ZeroPolicy::Zeroed`] allocation skips the redundant scrub.
struct Pooled {
    pfn: Pfn,
    frame: Frame,
    zeroed: bool,
}

/// Allocator pressure derived from the free-frame watermarks.
///
/// Admission control reads this before committing to a fork strategy:
/// `Normal` admits anything, `Elevated` is the degradation window
/// (Full→CoA→CoPA under a permissive `FallbackPolicy`), `Critical` means
/// even lazy strategies may fail and callers should reclaim first.
///
/// The level is **hysteretic** state, not an instantaneous function of
/// availability: entering a worse level happens the moment availability
/// crosses a watermark, but exiting back to a better one additionally
/// requires clearing the watermark by a slack band
/// (`high_watermark / 8`, at least 1 frame). A reservation+release pair
/// straddling a boundary therefore settles at the worse level instead of
/// toggling Elevated↔Normal on every call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Available frames at or above the high watermark.
    #[default]
    Normal,
    /// Available frames between the low and high watermarks.
    Elevated,
    /// Available frames below the low watermark.
    Critical,
}

/// Number of free-list shards in the physical allocator. Matches the
/// Morello SoC's 8 cores: each fork worker draws from its own shard and
/// falls back to deterministic work-stealing when its shard runs dry.
pub const NUM_SHARDS: usize = 8;

/// Whether an allocation needs the frame scrubbed before use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroPolicy {
    /// The caller reads the frame before fully writing it: a recycled
    /// frame must be zeroed (data and tags) at allocation time.
    Zeroed,
    /// The caller overwrites the entire frame (e.g. a Full-copy fork
    /// destination): skip the scrub — the deferred-zeroing win.
    Uninit,
}

/// What [`PhysMem::alloc_frame_in`] actually did, for cost accounting.
#[derive(Clone, Copy, Debug)]
pub struct AllocGrant {
    /// The allocated frame.
    pub pfn: Pfn,
    /// The frame came from a recycled pool rather than fresh memory.
    pub recycled: bool,
    /// The frame was recycled *and* the scrub was skipped
    /// ([`ZeroPolicy::Uninit`]): its old contents are garbage the caller
    /// has promised to overwrite.
    pub zeroing_skipped: bool,
    /// The frame was stolen from another shard's pool.
    pub stolen: bool,
    /// A [`ZeroPolicy::Zeroed`] request was served from the clean-frame
    /// magazine: the frame was recycled but a background reclaim pass had
    /// already scrubbed it, so no zeroing was charged at grant time.
    pub prezeroed: bool,
}

/// Cumulative sharded-allocator statistics, surfaced through `MemStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Allocations served with each shard as the home shard.
    pub per_shard_allocated: [u64; NUM_SHARDS],
    /// Allocations that had to steal from a foreign shard's pool.
    pub steals: u64,
    /// Allocations served from a recycled pool (any shard).
    pub recycled_hits: u64,
    /// Recycled allocations that skipped the zeroing scrub.
    pub zeroing_skipped: u64,
    /// [`ZeroPolicy::Zeroed`] allocations served pre-scrubbed from the
    /// clean-frame magazine.
    pub magazine_hits: u64,
}

/// Simulated physical memory: a bounded pool of refcounted, tagged frames.
///
/// Frames are lazily materialized — a `PhysMem` sized for a large machine
/// costs host memory only for frames actually allocated. Reference counts
/// support CoW-style sharing: a frame shared between N μprocesses has
/// `refcount == N` and contributes `1/N` to each one's proportional
/// resident set.
///
/// Freed frames land on one of [`NUM_SHARDS`] **recycled pools** (keyed by
/// `pfn % NUM_SHARDS`), keeping their backing storage so a later
/// allocation can skip or defer the zeroing scrub ([`ZeroPolicy`]). The
/// shards exist for the parallel fork walk: each worker lane has a home
/// shard, so concurrent chunks never contend on one free list in the
/// modeled machine, and allocation order stays deterministic.
pub struct PhysMem {
    slots: Vec<Option<Slot>>,
    shards: Vec<Vec<Pooled>>,
    next_fresh: u32,
    total_frames: u32,
    allocated: u32,
    peak_allocated: u32,
    alloc_attempts: u64,
    fail_at_attempt: Option<u64>,
    copy_attempts: u64,
    fail_copy_at: Option<u64>,
    stats: ShardStats,
    /// Frames promised to in-flight multi-frame operations (fork
    /// admission): they still sit on the free side of the ledger but are
    /// excluded from [`PhysMem::available_frames`], so a second admission
    /// check cannot double-book them. Accounting is cooperative — the
    /// allocation entry points do not enforce it (the kernel is the only
    /// reserver and serializes forks); admission happens at
    /// [`PhysMem::reserve`] call sites.
    reserved: u64,
    /// Pressure watermarks over *available* frames (free minus reserved).
    low_watermark: u32,
    high_watermark: u32,
    /// Hysteretic pressure state (see [`PressureLevel`]): recomputed on
    /// every availability change, read by [`PhysMem::pressure`].
    level: PressureLevel,
    /// Probe start for the single-lane [`PhysMem::alloc_frame`] entry
    /// point: the shard that received the most recent free. Starting
    /// there (and wrapping across all pools) makes legacy callers reuse
    /// freed, cache-warm frames in near-LIFO order instead of camping on
    /// one shard and burning fresh (cache-cold) memory while freed
    /// frames sit idle.
    legacy_cursor: usize,
}

impl PhysMem {
    /// Creates a physical memory of `total_frames` 4 KiB frames.
    pub fn new(total_frames: u32) -> PhysMem {
        let mut pm = PhysMem {
            slots: Vec::new(),
            shards: (0..NUM_SHARDS).map(|_| Vec::new()).collect(),
            next_fresh: 0,
            total_frames,
            allocated: 0,
            peak_allocated: 0,
            alloc_attempts: 0,
            fail_at_attempt: None,
            copy_attempts: 0,
            fail_copy_at: None,
            stats: ShardStats::default(),
            reserved: 0,
            // Defaults scale with the machine: pressure turns Elevated
            // below 1/8 of capacity and Critical below 1/64 (clamped so
            // tiny test machines still have a non-degenerate band).
            low_watermark: (total_frames / 64).max(1),
            high_watermark: (total_frames / 8).max(2),
            level: PressureLevel::Normal,
            legacy_cursor: 0,
        };
        pm.recompute_pressure();
        pm
    }

    /// Creates a physical memory of `mib` MiB.
    pub fn with_mib(mib: u32) -> PhysMem {
        PhysMem::new(mib * (1024 * 1024 / PAGE_SIZE as u32))
    }

    /// Total capacity in frames.
    pub fn total_frames(&self) -> u32 {
        self.total_frames
    }

    /// Currently allocated frames.
    pub fn allocated_frames(&self) -> u32 {
        self.allocated
    }

    /// High-water mark of allocated frames.
    pub fn peak_allocated_frames(&self) -> u32 {
        self.peak_allocated
    }

    /// Frames not currently allocated (recycled pools + fresh memory).
    pub fn free_frames(&self) -> u32 {
        self.total_frames - self.allocated
    }

    /// Free frames not spoken for by an outstanding reservation.
    pub fn available_frames(&self) -> u64 {
        u64::from(self.free_frames()).saturating_sub(self.reserved)
    }

    /// Outstanding reservation total, in frames.
    pub fn reserved_frames(&self) -> u64 {
        self.reserved
    }

    /// Reserves `n` frames against future allocation (fork admission
    /// pre-flight). Fails with `OutOfFrames` when fewer than `n` frames
    /// are available; on success the frames are excluded from
    /// [`PhysMem::available_frames`] until [`PhysMem::release`]d.
    ///
    /// The reservation is an accounting promise, not a frame list: the
    /// holder still allocates through the normal entry points and must
    /// release the full amount exactly once (at commit or rollback).
    pub fn reserve(&mut self, n: u64) -> Result<(), MemError> {
        if n > self.available_frames() {
            return Err(MemError::OutOfFrames);
        }
        self.reserved += n;
        self.recompute_pressure();
        Ok(())
    }

    /// Releases `n` previously [`PhysMem::reserve`]d frames.
    pub fn release(&mut self, n: u64) {
        debug_assert!(n <= self.reserved, "release of {n} exceeds reservation");
        self.reserved = self.reserved.saturating_sub(n);
        self.recompute_pressure();
    }

    /// Overrides the pressure watermarks (both counted in *available*
    /// frames). Panics in debug builds if `low > high`.
    pub fn set_watermarks(&mut self, low: u32, high: u32) {
        debug_assert!(low <= high, "low watermark above high");
        self.low_watermark = low;
        self.high_watermark = high;
        self.recompute_pressure();
    }

    /// Current allocator pressure: the hysteretic level maintained over
    /// [`PhysMem::available_frames`] (see [`PressureLevel`]).
    pub fn pressure(&self) -> PressureLevel {
        self.level
    }

    /// The exit-slack band of the hysteresis: a level improves only once
    /// availability clears its entry watermark by this many frames.
    /// Clamped so `high_watermark + slack` never exceeds total capacity —
    /// otherwise a machine whose high watermark sits at (or near) its
    /// frame count could never exit Elevated at all.
    fn pressure_slack(&self) -> u64 {
        u64::from(self.high_watermark / 8).max(1).min(u64::from(
            self.total_frames.saturating_sub(self.high_watermark),
        ))
    }

    /// The level availability maps to when every watermark is shifted up
    /// by `slack` frames (`slack == 0` gives the instantaneous level).
    fn level_at(&self, avail: u64, slack: u64) -> PressureLevel {
        if avail < u64::from(self.low_watermark) + slack {
            PressureLevel::Critical
        } else if avail < u64::from(self.high_watermark) + slack {
            PressureLevel::Elevated
        } else {
            PressureLevel::Normal
        }
    }

    /// Re-derives the hysteretic pressure level after an availability or
    /// watermark change: worsening applies immediately at the raw
    /// watermarks, improving requires clearing them by the slack band.
    /// Multi-level jumps in either direction are allowed (a large release
    /// can take Critical straight to Normal).
    fn recompute_pressure(&mut self) {
        let avail = self.available_frames();
        let raw = self.level_at(avail, 0);
        self.level = if raw >= self.level {
            raw
        } else {
            // Improving: step down only as far as the slack-shifted
            // watermarks allow, and never *up* (degenerate watermarks
            // where `low + slack > high` must not worsen on a release).
            self.level.min(self.level_at(avail, self.pressure_slack()))
        };
    }

    /// One bounded reclaim pass: scrubs every not-yet-zeroed frame parked
    /// on the recycled pools (the deferred-zero queue), so subsequent
    /// [`ZeroPolicy::Zeroed`] allocations skip their scrub. Returns the
    /// number of frames scrubbed — `0` means the pools were already clean
    /// and retrying reclaim cannot help.
    ///
    /// Reclaim converts deferred work into done work; it cannot conjure
    /// capacity, so true exhaustion still surfaces as `OutOfFrames` after
    /// the caller's bounded retry loop.
    pub fn reclaim_pass(&mut self) -> u64 {
        let mut scrubbed = 0;
        for pool in &mut self.shards {
            for p in pool.iter_mut() {
                if !p.zeroed {
                    p.frame.zero();
                    p.zeroed = true;
                    scrubbed += 1;
                }
            }
        }
        scrubbed
    }

    /// Pooled frames still awaiting a scrub (the deferred-zero queue the
    /// background reclaim daemon drains).
    pub fn pending_scrub(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|pool| pool.iter())
            .filter(|p| !p.zeroed)
            .count() as u64
    }

    /// Pre-scrubbed frames parked on the clean-frame magazines, ready to
    /// serve a [`ZeroPolicy::Zeroed`] allocation without an inline zero.
    pub fn magazine_depth(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|pool| pool.iter())
            .filter(|p| p.zeroed)
            .count() as u64
    }

    /// Scrubs exactly one unzeroed pooled frame into the clean-frame
    /// magazine and returns its pfn, or `None` when the deferred-zero
    /// queue is empty. The background reclaim daemon's unit of work:
    /// bounded, journalable per frame, deterministic order (shards
    /// ascending; within a pool the *newest* free first, since that is
    /// the next frame an allocation will pop).
    pub fn scrub_one(&mut self) -> Option<Pfn> {
        for pool in &mut self.shards {
            if let Some(p) = pool.iter_mut().rev().find(|p| !p.zeroed) {
                p.frame.zero();
                p.zeroed = true;
                return Some(p.pfn);
            }
        }
        None
    }

    /// Journal inverse of [`PhysMem::scrub_one`]: marks the pooled frame
    /// as not scrubbed again, so magazine accounting rolls back exactly.
    /// (The zeroed *contents* stay — a free frame's contents are
    /// unobservable until reallocation, and a `Zeroed` grant of an
    /// unmarked frame simply re-scrubs.) Returns `false` if `pfn` is not
    /// parked on a pool in the scrubbed state.
    pub fn unscrub_frame(&mut self, pfn: Pfn) -> bool {
        for pool in &mut self.shards {
            if let Some(p) = pool.iter_mut().find(|p| p.pfn == pfn && p.zeroed) {
                p.zeroed = false;
                return true;
            }
        }
        false
    }

    /// Total `alloc_frame` attempts so far (successful or not). A
    /// fault-injection campaign first counts a clean run's attempts, then
    /// replays with [`PhysMem::fail_alloc_at`] targeting each index.
    pub fn alloc_attempts(&self) -> u64 {
        self.alloc_attempts
    }

    /// Arms deterministic fault injection: the allocation attempt with
    /// index `attempt` (counted by [`PhysMem::alloc_attempts`], 0-based
    /// from boot) fails with `OutOfFrames`. One-shot: the trigger disarms
    /// after firing so recovery paths can allocate again.
    pub fn fail_alloc_at(&mut self, attempt: u64) {
        self.fail_at_attempt = Some(attempt);
    }

    /// Disarms fault injection.
    pub fn clear_alloc_failure(&mut self) {
        self.fail_at_attempt = None;
    }

    /// Total `copy_frame` attempts so far (successful or not), counted
    /// like [`PhysMem::alloc_attempts`] for replay-style fault injection.
    pub fn copy_attempts(&self) -> u64 {
        self.copy_attempts
    }

    /// Arms deterministic copy-failure injection: the `copy_frame` call
    /// with index `attempt` (0-based from boot, see
    /// [`PhysMem::copy_attempts`]) fails with `BadFrame(dst)` — modeling
    /// a poisoned/ECC-failed destination frame. One-shot: the trigger
    /// disarms after firing so a retry can succeed.
    pub fn fail_copy_at(&mut self, attempt: u64) {
        self.fail_copy_at = Some(attempt);
    }

    /// Disarms copy-failure injection.
    pub fn clear_copy_failure(&mut self) {
        self.fail_copy_at = None;
    }

    /// Allocates a zeroed frame with refcount 1.
    ///
    /// Legacy single-lane entry point ([`ZeroPolicy::Zeroed`] — the frame
    /// is always safe to read). Recycled pools are drained before fresh
    /// memory, like the old global free list: the probe starts at the
    /// pool that received the most recent free (tracked by
    /// [`PhysMem::dec_ref`]) and wraps across all shards, so single-lane
    /// workloads reuse recently-freed (cache-warm) frames no matter which
    /// pool they landed in. Draining another shard's pool is not a steal
    /// here — there is no other lane to contend with.
    pub fn alloc_frame(&mut self) -> Result<Pfn, MemError> {
        self.alloc_frame_grant().map(|g| g.pfn)
    }

    /// [`PhysMem::alloc_frame`] with the full [`AllocGrant`] record, so
    /// single-lane callers can account magazine hits and inline-zeroing
    /// cost like the sharded entry point's callers do.
    pub fn alloc_frame_grant(&mut self) -> Result<AllocGrant, MemError> {
        self.count_attempt()?;
        let home = self.legacy_cursor;
        let popped = (0..NUM_SHARDS)
            .map(|d| (home + d) % NUM_SHARDS)
            .find_map(|s| self.shards[s].pop());
        let (pfn, frame) = match popped {
            Some(p) => (p.pfn, Some((p.frame, p.zeroed))),
            None if self.next_fresh < self.total_frames => {
                let p = Pfn(self.next_fresh);
                self.next_fresh += 1;
                (p, None)
            }
            None => return Err(MemError::OutOfFrames),
        };
        Ok(self.grant(pfn, frame, home, false, ZeroPolicy::Zeroed))
    }

    /// Allocates a frame with refcount 1 from home shard `shard`
    /// (wrapping modulo [`NUM_SHARDS`]).
    ///
    /// Allocation order: the home shard's recycled pool, then fresh
    /// (never-used) memory, then stealing from the other shards' pools in
    /// the fixed probe order `home+1, home+2, …` (mod `NUM_SHARDS`) — so
    /// the sequence of granted frames is a pure function of the call
    /// sequence, independent of host threading.
    ///
    /// `zero` controls the recycled-frame scrub; fresh frames are zeroed
    /// by construction, so [`ZeroPolicy::Uninit`] only has an effect (and
    /// only shows up in [`AllocGrant::zeroing_skipped`]) on recycled
    /// frames. Fault injection armed via [`PhysMem::fail_alloc_at`]
    /// counts attempts globally across all shards.
    pub fn alloc_frame_in(
        &mut self,
        shard: usize,
        zero: ZeroPolicy,
    ) -> Result<AllocGrant, MemError> {
        self.count_attempt()?;
        let home = shard % NUM_SHARDS;
        let (pfn, frame, stolen) = if let Some(p) = self.shards[home].pop() {
            (p.pfn, Some((p.frame, p.zeroed)), false)
        } else if self.next_fresh < self.total_frames {
            let p = Pfn(self.next_fresh);
            self.next_fresh += 1;
            (p, None, false)
        } else if let Some(p) = (1..NUM_SHARDS)
            .map(|d| (home + d) % NUM_SHARDS)
            .find_map(|s| self.shards[s].pop())
        {
            (p.pfn, Some((p.frame, p.zeroed)), true)
        } else {
            return Err(MemError::OutOfFrames);
        };
        Ok(self.grant(pfn, frame, home, stolen, zero))
    }

    /// The global attempt counter + one-shot fault injection, shared by
    /// every allocation entry point.
    fn count_attempt(&mut self) -> Result<(), MemError> {
        let attempt = self.alloc_attempts;
        self.alloc_attempts += 1;
        if self.fail_at_attempt == Some(attempt) {
            self.fail_at_attempt = None;
            return Err(MemError::OutOfFrames);
        }
        Ok(())
    }

    /// Installs a granted frame (recycled `Some(frame)` or fresh `None`)
    /// into its slot, applying the zero policy and recording stats.
    fn grant(
        &mut self,
        pfn: Pfn,
        frame: Option<(Frame, bool)>,
        home: usize,
        stolen: bool,
        zero: ZeroPolicy,
    ) -> AllocGrant {
        let recycled = frame.is_some();
        let zeroing_skipped = recycled && zero == ZeroPolicy::Uninit;
        let prezeroed = matches!(frame, Some((_, true))) && zero == ZeroPolicy::Zeroed;
        let frame = match frame {
            Some((mut f, scrubbed)) => {
                if zero == ZeroPolicy::Zeroed && !scrubbed {
                    f.zero();
                }
                f
            }
            None => Frame::zeroed(),
        };
        let idx = pfn.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx] = Some(Slot { frame, refcount: 1 });
        self.allocated += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        self.stats.per_shard_allocated[home] += 1;
        if recycled {
            self.stats.recycled_hits += 1;
        }
        if zeroing_skipped {
            self.stats.zeroing_skipped += 1;
        }
        if prezeroed {
            self.stats.magazine_hits += 1;
        }
        if stolen {
            self.stats.steals += 1;
        }
        self.recompute_pressure();
        AllocGrant {
            pfn,
            recycled,
            zeroing_skipped,
            stolen,
            prezeroed,
        }
    }

    /// Cumulative sharded-allocator statistics.
    pub fn shard_stats(&self) -> ShardStats {
        self.stats
    }

    /// Increments a frame's refcount (a new sharer, e.g. a CoW mapping).
    pub fn inc_ref(&mut self, pfn: Pfn) -> Result<u32, MemError> {
        let slot = self.slot_mut(pfn)?;
        slot.refcount += 1;
        Ok(slot.refcount)
    }

    /// Decrements a frame's refcount, freeing the frame when it hits zero.
    ///
    /// A freed frame moves (contents and all) to the recycled pool of
    /// shard `pfn % NUM_SHARDS`; the scrub is deferred to reallocation
    /// time, where [`ZeroPolicy::Uninit`] callers can skip it entirely.
    ///
    /// Returns the remaining refcount.
    pub fn dec_ref(&mut self, pfn: Pfn) -> Result<u32, MemError> {
        let slot = self.slot_mut(pfn)?;
        slot.refcount -= 1;
        let remaining = slot.refcount;
        if remaining == 0 {
            let slot = self.slots[pfn.0 as usize].take().expect("checked above");
            let shard = pfn.0 as usize % NUM_SHARDS;
            self.shards[shard].push(Pooled {
                pfn,
                frame: slot.frame,
                zeroed: false,
            });
            // Point the single-lane probe at the freshest free so the next
            // legacy alloc reuses it first (LIFO, cache-warm).
            self.legacy_cursor = shard;
            self.allocated -= 1;
            self.recompute_pressure();
        }
        Ok(remaining)
    }

    /// Detaches a frame's storage, leaving a [`Frame::detached`]
    /// placeholder in its slot.
    ///
    /// The parallel fork walk uses this to hand owned destination frames
    /// to worker threads while `PhysMem` itself is only borrowed shared
    /// (for reading source frames). The caller must pair every detach
    /// with an [`PhysMem::attach_frame`] before the frame is accessed
    /// through `PhysMem` again.
    pub fn detach_frame(&mut self, pfn: Pfn) -> Result<Frame, MemError> {
        let slot = self.slot_mut(pfn)?;
        debug_assert!(!slot.frame.is_detached(), "double detach of {pfn:?}");
        Ok(std::mem::replace(&mut slot.frame, Frame::detached()))
    }

    /// Reattaches a frame previously taken with [`PhysMem::detach_frame`].
    pub fn attach_frame(&mut self, pfn: Pfn, frame: Frame) -> Result<(), MemError> {
        let slot = self.slot_mut(pfn)?;
        debug_assert!(slot.frame.is_detached(), "attach over live frame {pfn:?}");
        slot.frame = frame;
        Ok(())
    }

    /// Current refcount of a frame.
    pub fn refcount(&self, pfn: Pfn) -> Result<u32, MemError> {
        Ok(self.slot(pfn)?.refcount)
    }

    /// Reads `buf.len()` bytes from `pfn` at `offset`.
    pub fn read(&self, pfn: Pfn, offset: u64, buf: &mut [u8]) -> Result<(), MemError> {
        check_range(offset, buf.len() as u64)?;
        self.slot(pfn)?.frame.read(offset, buf);
        Ok(())
    }

    /// Writes `buf` to `pfn` at `offset`, clearing overlapped tags.
    pub fn write(&mut self, pfn: Pfn, offset: u64, buf: &[u8]) -> Result<(), MemError> {
        check_range(offset, buf.len() as u64)?;
        self.slot_mut(pfn)?.frame.write(offset, buf);
        Ok(())
    }

    /// Loads the capability (if tagged) at granule-aligned `offset`.
    pub fn load_cap(&self, pfn: Pfn, offset: u64) -> Result<Option<Capability>, MemError> {
        check_cap_offset(offset)?;
        Ok(self.slot(pfn)?.frame.load_cap(offset))
    }

    /// Stores a capability at granule-aligned `offset`, setting its tag.
    pub fn store_cap(&mut self, pfn: Pfn, offset: u64, cap: &Capability) -> Result<(), MemError> {
        check_cap_offset(offset)?;
        self.slot_mut(pfn)?.frame.store_cap(offset, cap);
        Ok(())
    }

    /// Borrows a frame immutably (for scans and bulk copies).
    pub fn frame(&self, pfn: Pfn) -> Result<&Frame, MemError> {
        Ok(&self.slot(pfn)?.frame)
    }

    /// Borrows a frame mutably.
    pub fn frame_mut(&mut self, pfn: Pfn) -> Result<&mut Frame, MemError> {
        Ok(&mut self.slot_mut(pfn)?.frame)
    }

    /// Copies `src`'s data and tags into `dst` (both must be allocated).
    pub fn copy_frame(&mut self, src: Pfn, dst: Pfn) -> Result<(), MemError> {
        let attempt = self.copy_attempts;
        self.copy_attempts += 1;
        if self.fail_copy_at == Some(attempt) {
            self.fail_copy_at = None;
            return Err(MemError::BadFrame(dst));
        }
        if src == dst {
            return Ok(());
        }
        self.slot(src)?;
        self.slot(dst)?;
        let (a, b) = (src.0 as usize, dst.0 as usize);
        // Split-borrow the two slots.
        let (lo, hi) = if a < b {
            let (l, h) = self.slots.split_at_mut(b);
            (&l[a], &mut h[0])
        } else {
            let (l, h) = self.slots.split_at_mut(a);
            (&h[0], &mut l[b])
        };
        let src_frame = &lo.as_ref().expect("checked above").frame;
        let dst_slot = hi.as_mut().expect("checked above");
        dst_slot.frame.copy_from(src_frame);
        Ok(())
    }

    fn slot(&self, pfn: Pfn) -> Result<&Slot, MemError> {
        self.slots
            .get(pfn.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(MemError::BadFrame(pfn))
    }

    fn slot_mut(&mut self, pfn: Pfn) -> Result<&mut Slot, MemError> {
        self.slots
            .get_mut(pfn.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(MemError::BadFrame(pfn))
    }
}

fn check_range(offset: u64, len: u64) -> Result<(), MemError> {
    // `offset + len` can wrap for adversarial offsets (e.g. u64::MAX),
    // sneaking past the bound and panicking downstream in `Frame::read`.
    match offset.checked_add(len) {
        Some(end) if end <= PAGE_SIZE => Ok(()),
        _ => Err(MemError::OutOfRange { offset, len }),
    }
}

fn check_cap_offset(offset: u64) -> Result<(), MemError> {
    if !offset.is_multiple_of(GRANULE_SIZE) {
        return Err(MemError::Unaligned(offset));
    }
    match offset.checked_add(GRANULE_SIZE) {
        Some(end) if end <= PAGE_SIZE => Ok(()),
        _ => Err(MemError::OutOfRange {
            offset,
            len: GRANULE_SIZE,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufork_cheri::Perms;

    fn cap() -> Capability {
        Capability::new_root(0x8000, 32, Perms::data())
    }

    #[test]
    fn alloc_until_exhaustion() {
        let mut pm = PhysMem::new(3);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        let c = pm.alloc_frame().unwrap();
        assert_eq!(pm.alloc_frame().unwrap_err(), MemError::OutOfFrames);
        assert_eq!(pm.allocated_frames(), 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn free_recycles_frames() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.write(a, 0, &[9]).unwrap();
        assert_eq!(pm.dec_ref(a), Ok(0));
        assert_eq!(pm.allocated_frames(), 0);
        let b = pm.alloc_frame().unwrap();
        assert_eq!(a, b);
        // Recycled frame is zeroed.
        let mut out = [1u8];
        pm.read(b, 0, &mut out).unwrap();
        assert_eq!(out, [0]);
    }

    #[test]
    fn legacy_alloc_drains_every_pool_before_fresh_memory() {
        let mut pm = PhysMem::new(64);
        // Free frames spread across several shard pools.
        let pfns: Vec<Pfn> = (0..12).map(|_| pm.alloc_frame().unwrap()).collect();
        for p in &pfns {
            pm.dec_ref(*p).unwrap();
        }
        // The single-lane entry point must recycle all 12 (cache-warm)
        // frames before reaching for fresh (cold) memory.
        let mut recycled: Vec<u32> = (0..12).map(|_| pm.alloc_frame().unwrap().0).collect();
        recycled.sort_unstable();
        assert_eq!(recycled, (0..12).collect::<Vec<u32>>());
        // Only now does it break new ground.
        assert_eq!(pm.alloc_frame().unwrap(), Pfn(12));
        // Rotating over pools is not contention: no steals are recorded.
        assert_eq!(pm.shard_stats().steals, 0);
    }

    #[test]
    fn refcounting_shares_frames() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        assert_eq!(pm.inc_ref(a), Ok(2));
        assert_eq!(pm.dec_ref(a), Ok(1));
        assert_eq!(pm.refcount(a), Ok(1));
        assert_eq!(pm.dec_ref(a), Ok(0));
        assert_eq!(pm.refcount(a), Err(MemError::BadFrame(a)));
    }

    #[test]
    fn access_to_freed_frame_fails() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.dec_ref(a).unwrap();
        assert_eq!(pm.read(a, 0, &mut [0]).unwrap_err(), MemError::BadFrame(a));
        assert_eq!(pm.write(a, 0, &[0]).unwrap_err(), MemError::BadFrame(a));
    }

    #[test]
    fn cross_page_access_rejected() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        assert!(matches!(
            pm.read(a, PAGE_SIZE - 2, &mut [0u8; 4]),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn huge_offset_does_not_wrap_past_the_range_check() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        // offset + len wraps to a small value; the check must still reject.
        assert!(matches!(
            pm.read(a, u64::MAX, &mut [0u8; 4]),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            pm.write(a, u64::MAX - 1, &[0u8; 8]),
            Err(MemError::OutOfRange { .. })
        ));
        // Granule-aligned offset near u64::MAX: offset + GRANULE_SIZE wraps
        // to exactly 0, the worst case for an unchecked `<=` comparison.
        let aligned_huge = u64::MAX - (GRANULE_SIZE - 1);
        assert_eq!(aligned_huge % GRANULE_SIZE, 0);
        assert_eq!(aligned_huge.wrapping_add(GRANULE_SIZE), 0);
        assert!(matches!(
            pm.load_cap(a, aligned_huge),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            pm.store_cap(a, aligned_huge, &cap()),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unaligned_cap_access_rejected() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        assert_eq!(
            pm.store_cap(a, 8, &cap()).unwrap_err(),
            MemError::Unaligned(8)
        );
        assert_eq!(pm.load_cap(a, 8).unwrap_err(), MemError::Unaligned(8));
    }

    #[test]
    fn copy_frame_duplicates_data_and_tags() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        pm.write(a, 0, b"hello").unwrap();
        pm.store_cap(a, 32, &cap()).unwrap();
        pm.copy_frame(a, b).unwrap();
        let mut out = [0u8; 5];
        pm.read(b, 0, &mut out).unwrap();
        assert_eq!(&out, b"hello");
        assert_eq!(pm.load_cap(b, 32).unwrap(), Some(cap()));
        // Copy in the other direction also works (exercises both borrow arms).
        pm.write(b, 0, b"world").unwrap();
        pm.copy_frame(b, a).unwrap();
        pm.read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"world");
    }

    #[test]
    fn peak_tracking() {
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        let _b = pm.alloc_frame().unwrap();
        pm.dec_ref(a).unwrap();
        assert_eq!(pm.allocated_frames(), 1);
        assert_eq!(pm.peak_allocated_frames(), 2);
    }

    #[test]
    fn with_mib_capacity() {
        let pm = PhysMem::with_mib(1);
        assert_eq!(pm.total_frames(), 256);
    }

    #[test]
    fn injected_alloc_failure_is_one_shot_and_deterministic() {
        let mut pm = PhysMem::new(8);
        let _a = pm.alloc_frame().unwrap();
        assert_eq!(pm.alloc_attempts(), 1);
        // Arm the third attempt (index 2): the next alloc succeeds, the
        // one after fails, and the one after that succeeds again.
        pm.fail_alloc_at(2);
        assert!(pm.alloc_frame().is_ok());
        assert_eq!(pm.alloc_frame().unwrap_err(), MemError::OutOfFrames);
        assert!(pm.alloc_frame().is_ok());
        assert_eq!(pm.alloc_attempts(), 4);
        // Failed attempts don't change accounting.
        assert_eq!(pm.allocated_frames(), 3);
    }

    #[test]
    fn disarming_cancels_injection() {
        let mut pm = PhysMem::new(2);
        pm.fail_alloc_at(0);
        pm.clear_alloc_failure();
        assert!(pm.alloc_frame().is_ok());
    }

    #[test]
    fn injected_copy_failure_is_one_shot_and_leaves_frames_intact() {
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        pm.write(a, 0, b"keep").unwrap();
        pm.copy_frame(a, b).unwrap();
        assert_eq!(pm.copy_attempts(), 1);
        pm.fail_copy_at(1);
        assert_eq!(pm.copy_frame(a, b).unwrap_err(), MemError::BadFrame(b));
        // One-shot: the retry succeeds, and the source was never harmed.
        pm.copy_frame(a, b).unwrap();
        let mut out = [0u8; 4];
        pm.read(b, 0, &mut out).unwrap();
        assert_eq!(&out, b"keep");
        assert_eq!(pm.copy_attempts(), 3);
        pm.fail_copy_at(99);
        pm.clear_copy_failure();
        assert!(pm.copy_frame(b, a).is_ok());
    }

    #[test]
    fn shard_alloc_prefers_home_pool_then_fresh() {
        let mut pm = PhysMem::new(32);
        // Materialize pfn 0..16 and free them all: shard s pools hold
        // the pfns with pfn % NUM_SHARDS == s.
        let pfns: Vec<Pfn> = (0..16).map(|_| pm.alloc_frame().unwrap()).collect();
        for p in &pfns {
            pm.dec_ref(*p).unwrap();
        }
        // The setup allocations above went through the legacy entry point,
        // which also attributes shard stats — compare deltas from here.
        let base = pm.shard_stats();
        // Home shard 3 pool holds pfns 3 and 11 (LIFO: 11 first).
        let g = pm.alloc_frame_in(3, ZeroPolicy::Zeroed).unwrap();
        assert_eq!(g.pfn, Pfn(11));
        assert!(g.recycled && !g.stolen && !g.zeroing_skipped);
        let g = pm.alloc_frame_in(3, ZeroPolicy::Zeroed).unwrap();
        assert_eq!(g.pfn, Pfn(3));
        // Pool dry: fresh memory before stealing.
        let g = pm.alloc_frame_in(3, ZeroPolicy::Zeroed).unwrap();
        assert_eq!(g.pfn, Pfn(16));
        assert!(!g.recycled);
        let s = pm.shard_stats();
        assert_eq!(s.per_shard_allocated[3] - base.per_shard_allocated[3], 3);
        assert_eq!(s.recycled_hits - base.recycled_hits, 2);
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn shard_steal_order_is_deterministic() {
        let mut pm = PhysMem::new(16);
        let pfns: Vec<Pfn> = (0..16).map(|_| pm.alloc_frame().unwrap()).collect();
        for p in &pfns {
            pm.dec_ref(*p).unwrap();
        }
        // Drain home shard 5 (pfns 13, 5), exhausting fresh too.
        assert_eq!(
            pm.alloc_frame_in(5, ZeroPolicy::Zeroed).unwrap().pfn,
            Pfn(13)
        );
        assert_eq!(
            pm.alloc_frame_in(5, ZeroPolicy::Zeroed).unwrap().pfn,
            Pfn(5)
        );
        // Next allocation steals from shard 6 (probe order 6, 7, 0, …).
        let g = pm.alloc_frame_in(5, ZeroPolicy::Zeroed).unwrap();
        assert_eq!(g.pfn, Pfn(14));
        assert!(g.stolen && g.recycled);
        assert_eq!(pm.shard_stats().steals, 1);
    }

    #[test]
    fn uninit_recycled_frame_skips_the_scrub() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.write(a, 0, &[0xab; 4]).unwrap();
        pm.store_cap(a, 32, &cap()).unwrap();
        pm.dec_ref(a).unwrap();
        let g = pm.alloc_frame_in(0, ZeroPolicy::Uninit).unwrap();
        assert_eq!(g.pfn, a);
        assert!(g.recycled && g.zeroing_skipped);
        // The stale contents survive — the caller promised to overwrite.
        let mut out = [0u8; 4];
        pm.read(g.pfn, 0, &mut out).unwrap();
        assert_eq!(out, [0xab; 4]);
        assert_eq!(pm.load_cap(g.pfn, 32).unwrap(), Some(cap()));
        assert_eq!(pm.shard_stats().zeroing_skipped, 1);
        // A fresh allocation is zeroed by construction and never reports
        // a skipped scrub.
        let mut pm2 = PhysMem::new(2);
        let g2 = pm2.alloc_frame_in(0, ZeroPolicy::Uninit).unwrap();
        assert!(!g2.recycled && !g2.zeroing_skipped);
    }

    #[test]
    fn injection_counts_attempts_across_shards() {
        let mut pm = PhysMem::new(16);
        pm.fail_alloc_at(2);
        assert!(pm.alloc_frame_in(0, ZeroPolicy::Zeroed).is_ok());
        assert!(pm.alloc_frame_in(3, ZeroPolicy::Zeroed).is_ok());
        assert_eq!(
            pm.alloc_frame_in(6, ZeroPolicy::Uninit).unwrap_err(),
            MemError::OutOfFrames
        );
        assert!(pm.alloc_frame_in(6, ZeroPolicy::Zeroed).is_ok());
        assert_eq!(pm.alloc_attempts(), 4);
    }

    #[test]
    fn reserve_release_and_available_accounting() {
        let mut pm = PhysMem::new(16);
        assert_eq!(pm.free_frames(), 16);
        assert_eq!(pm.available_frames(), 16);
        pm.reserve(10).unwrap();
        assert_eq!(pm.reserved_frames(), 10);
        assert_eq!(pm.available_frames(), 6);
        // A second reservation cannot double-book the promised frames.
        assert_eq!(pm.reserve(7).unwrap_err(), MemError::OutOfFrames);
        pm.reserve(6).unwrap();
        assert_eq!(pm.available_frames(), 0);
        pm.release(16);
        assert_eq!(pm.available_frames(), 16);
        // Allocation shrinks availability like reservation does.
        let a = pm.alloc_frame().unwrap();
        assert_eq!(pm.available_frames(), 15);
        pm.dec_ref(a).unwrap();
        assert_eq!(pm.available_frames(), 16);
    }

    #[test]
    fn pressure_follows_the_watermarks() {
        let mut pm = PhysMem::new(64);
        pm.set_watermarks(4, 16);
        assert_eq!(pm.pressure(), PressureLevel::Normal);
        // Reserve down into the elevated band…
        pm.reserve(49).unwrap(); // available = 15
        assert_eq!(pm.pressure(), PressureLevel::Elevated);
        // …and allocation pushes it critical.
        let mut held = Vec::new();
        for _ in 0..12 {
            held.push(pm.alloc_frame().unwrap());
        }
        assert_eq!(pm.available_frames(), 3);
        assert_eq!(pm.pressure(), PressureLevel::Critical);
        pm.release(49);
        assert_eq!(pm.pressure(), PressureLevel::Normal);
    }

    #[test]
    fn pressure_hysteresis_stops_boundary_flapping() {
        let mut pm = PhysMem::new(64);
        pm.set_watermarks(4, 16); // exit slack = 16/8 = 2
        pm.reserve(49).unwrap(); // available = 15
        assert_eq!(pm.pressure(), PressureLevel::Elevated);
        // A release/reserve pair straddling the high watermark used to
        // toggle Elevated↔Normal on every call; with hysteresis the
        // level stays put until the slack band is cleared.
        pm.release(1); // available = 16, exactly at the watermark
        assert_eq!(pm.pressure(), PressureLevel::Elevated);
        pm.reserve(1).unwrap(); // available = 15
        assert_eq!(pm.pressure(), PressureLevel::Elevated);
        pm.release(3); // available = 18 = high + slack: genuine exit
        assert_eq!(pm.pressure(), PressureLevel::Normal);
        // Same stickiness at the low watermark; worsening is immediate.
        pm.reserve(15).unwrap(); // available = 3
        assert_eq!(pm.pressure(), PressureLevel::Critical);
        pm.release(2); // available = 5 < low + slack
        assert_eq!(pm.pressure(), PressureLevel::Critical);
        pm.release(1); // available = 6 = low + slack
        assert_eq!(pm.pressure(), PressureLevel::Elevated);
        pm.release(58); // everything back: multi-level exit allowed
        assert_eq!(pm.pressure(), PressureLevel::Normal);
    }

    #[test]
    fn scrub_one_fills_magazines_and_grants_report_hits() {
        let mut pm = PhysMem::new(16);
        let pfns: Vec<Pfn> = (0..3).map(|_| pm.alloc_frame().unwrap()).collect();
        for p in &pfns {
            pm.write(*p, 0, &[0xee; 4]).unwrap();
            pm.dec_ref(*p).unwrap();
        }
        assert_eq!(pm.pending_scrub(), 3);
        assert_eq!(pm.magazine_depth(), 0);
        let scrubbed = pm.scrub_one().unwrap();
        assert_eq!(pm.pending_scrub(), 2);
        assert_eq!(pm.magazine_depth(), 1);
        // The journal inverse restores the accounting exactly…
        assert!(pm.unscrub_frame(scrubbed));
        assert_eq!(pm.pending_scrub(), 3);
        assert_eq!(pm.magazine_depth(), 0);
        // …and rejects frames that aren't parked scrubbed.
        assert!(!pm.unscrub_frame(scrubbed));
        assert!(!pm.unscrub_frame(Pfn(77)));
        // Drain the queue: three scrubs, then empty.
        assert!(pm.scrub_one().is_some());
        assert!(pm.scrub_one().is_some());
        assert!(pm.scrub_one().is_some());
        assert!(pm.scrub_one().is_none());
        assert_eq!(pm.magazine_depth(), 3);
        // A Zeroed grant now hits the magazine (no inline scrub) and
        // still reads zeros.
        let g = pm.alloc_frame_grant().unwrap();
        assert!(g.recycled && g.prezeroed);
        assert_eq!(pm.shard_stats().magazine_hits, 1);
        let mut out = [0xffu8; 4];
        pm.read(g.pfn, 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 4]);
        // An unscrubbed recycled frame is zeroed inline, not a hit.
        pm.dec_ref(g.pfn).unwrap();
        let g2 = pm.alloc_frame_grant().unwrap();
        assert!(g2.recycled && !g2.prezeroed);
        assert_eq!(pm.shard_stats().magazine_hits, 1);
    }

    #[test]
    fn scrub_one_targets_the_next_frame_an_alloc_would_pop() {
        let mut pm = PhysMem::new(16);
        // Two frames freed onto the same shard pool (pfn 0 and 8).
        let a = pm.alloc_frame().unwrap();
        let frames: Vec<Pfn> = (0..8).map(|_| pm.alloc_frame().unwrap()).collect();
        pm.dec_ref(a).unwrap();
        // pfn 8 — newest free, top of pool. The daemon scrubs
        // newest-first, so the frame the next alloc pops is the one
        // that got cleaned.
        pm.dec_ref(frames[7]).unwrap();
        assert_eq!(pm.scrub_one(), Some(Pfn(8)));
        let g = pm.alloc_frame_grant().unwrap();
        assert_eq!(g.pfn, Pfn(8));
        assert!(g.prezeroed);
    }

    #[test]
    fn reclaim_pass_scrubs_pooled_frames_once() {
        let mut pm = PhysMem::new(8);
        let pfns: Vec<Pfn> = (0..4).map(|_| pm.alloc_frame().unwrap()).collect();
        for p in &pfns {
            pm.write(*p, 0, &[0xcd; 8]).unwrap();
            pm.dec_ref(*p).unwrap();
        }
        // First pass scrubs all four parked frames; a second finds the
        // deferred-zero queue empty.
        assert_eq!(pm.reclaim_pass(), 4);
        assert_eq!(pm.reclaim_pass(), 0);
        // A Zeroed allocation of a pre-scrubbed frame reads zeros (the
        // scrub was real) — and an Uninit one does too, because reclaim
        // already erased the stale contents.
        let g = pm.alloc_frame_in(0, ZeroPolicy::Uninit).unwrap();
        assert!(g.recycled);
        let mut out = [0xffu8; 8];
        pm.read(g.pfn, 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 8]);
    }

    #[test]
    fn detach_attach_round_trip() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        pm.write(a, 0, b"payload").unwrap();
        let mut f = pm.detach_frame(a).unwrap();
        assert!(pm.frame(a).unwrap().is_detached());
        f.write(0, b"PAYLOAD");
        pm.attach_frame(a, f).unwrap();
        let mut out = [0u8; 7];
        pm.read(a, 0, &mut out).unwrap();
        assert_eq!(&out, b"PAYLOAD");
        assert_eq!(
            pm.detach_frame(Pfn(9)).unwrap_err(),
            MemError::BadFrame(Pfn(9))
        );
    }
}
