//! Memory accounting helpers.

use crate::frame::{Pfn, PAGE_SIZE};
use crate::phys::{PhysMem, PressureLevel, ShardStats};

/// Aggregated memory statistics for a set of frames (e.g. one μprocess).
///
/// The paper reports *proportional resident set* (PRS): a frame shared by
/// `N` processes contributes `1/N` of a page to each (paper §5.2, "We
/// consider the proportional resident set as the memory consumed by a
/// process").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemStats {
    /// Frames mapped exclusively (refcount 1).
    pub private_frames: u64,
    /// Frames shared with at least one other mapping.
    pub shared_frames: u64,
    /// Proportional resident set in bytes.
    pub prs_bytes: f64,
    /// Full resident set in bytes (each mapped frame counted once).
    pub rss_bytes: u64,
    /// Tagged (capability-holding) granules across the mapped frames,
    /// read from each frame's tag-summary bitmap. The relocation fast
    /// path's win scales with how small this is relative to
    /// `rss_bytes / GRANULE_SIZE`.
    pub cap_granules: u64,
    /// Cumulative sharded-allocator statistics of the whole physical
    /// memory (machine-global, not per-process: allocator pressure is a
    /// shared resource).
    pub alloc: ShardStats,
    /// Frames promised to in-flight admission-controlled operations
    /// (machine-global, sampled from [`PhysMem::reserved_frames`]).
    pub reserved_frames: u64,
    /// Allocator pressure level at sampling time (machine-global,
    /// hysteretic — see [`PressureLevel`]).
    pub pressure: PressureLevel,
    /// Pooled frames still awaiting a scrub at sampling time
    /// (machine-global deferred-zero queue depth).
    pub pending_scrub: u64,
    /// Pre-scrubbed frames parked on the clean-frame magazines at
    /// sampling time (machine-global).
    pub magazine_depth: u64,
    /// Live entries in the cross-child frame-dedup index
    /// (machine-global; 0 when dedup is disabled or unavailable). Filled
    /// in by the kernel after [`MemStats::for_frames`] — the index lives
    /// kernel-side, not in the physical allocator.
    pub dedup_entries: u64,
}

impl MemStats {
    /// Computes stats over the frames mapped by one process.
    ///
    /// `frames` must yield each mapped frame once; frames that are no
    /// longer allocated are skipped (they cannot be resident).
    pub fn for_frames<I: IntoIterator<Item = Pfn>>(pm: &PhysMem, frames: I) -> MemStats {
        let mut s = MemStats {
            alloc: pm.shard_stats(),
            reserved_frames: pm.reserved_frames(),
            pressure: pm.pressure(),
            pending_scrub: pm.pending_scrub(),
            magazine_depth: pm.magazine_depth(),
            ..MemStats::default()
        };
        for pfn in frames {
            let Ok(rc) = pm.refcount(pfn) else { continue };
            if rc <= 1 {
                s.private_frames += 1;
            } else {
                s.shared_frames += 1;
            }
            s.prs_bytes += PAGE_SIZE as f64 / f64::from(rc.max(1));
            s.rss_bytes += PAGE_SIZE;
            if let Ok(frame) = pm.frame(pfn) {
                s.cap_granules += frame.cap_count() as u64;
            }
        }
        s
    }

    /// PRS in mebibytes.
    pub fn prs_mib(&self) -> f64 {
        self.prs_bytes / (1024.0 * 1024.0)
    }

    /// RSS in mebibytes.
    pub fn rss_mib(&self) -> f64 {
        self.rss_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prs_splits_shared_frames() {
        let mut pm = PhysMem::new(4);
        let private = pm.alloc_frame().unwrap();
        let shared = pm.alloc_frame().unwrap();
        pm.inc_ref(shared).unwrap(); // now shared by 2
        let s = MemStats::for_frames(&pm, [private, shared]);
        assert_eq!(s.private_frames, 1);
        assert_eq!(s.shared_frames, 1);
        assert_eq!(s.rss_bytes, 2 * PAGE_SIZE);
        assert!((s.prs_bytes - 1.5 * PAGE_SIZE as f64).abs() < 1e-9);
    }

    #[test]
    fn freed_frames_ignored() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        pm.dec_ref(a).unwrap();
        let s = MemStats::for_frames(&pm, [a]);
        // No resident memory; only the machine-global allocator stats
        // remember the one allocation that happened — and the freed
        // frame sits in its shard pool awaiting a scrub.
        assert_eq!(
            s,
            MemStats {
                alloc: pm.shard_stats(),
                pending_scrub: 1,
                ..MemStats::default()
            }
        );
        assert_eq!(s.alloc.per_shard_allocated[0], 1);
        assert_eq!(s.rss_bytes, 0);
    }

    #[test]
    fn cap_granules_counted_from_tag_bitmaps() {
        use ufork_cheri::{Capability, Perms};
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        let cap = Capability::new_root(0x8000, 32, Perms::data());
        pm.store_cap(a, 0, &cap).unwrap();
        pm.store_cap(a, 64, &cap).unwrap();
        let s = MemStats::for_frames(&pm, [a, b]);
        assert_eq!(s.cap_granules, 2);
    }

    #[test]
    fn reservation_and_pressure_sampled_into_stats() {
        let mut pm = PhysMem::new(64);
        pm.set_watermarks(2, 16);
        pm.reserve(50).unwrap();
        let s = MemStats::for_frames(&pm, []);
        assert_eq!(s.reserved_frames, 50);
        assert_eq!(s.pressure, PressureLevel::Elevated);
        pm.release(50);
        let s = MemStats::for_frames(&pm, []);
        assert_eq!(s.pressure, PressureLevel::Normal);
    }

    #[test]
    fn unit_conversions() {
        let s = MemStats {
            private_frames: 256,
            shared_frames: 0,
            prs_bytes: 1024.0 * 1024.0,
            rss_bytes: 2 * 1024 * 1024,
            ..MemStats::default()
        };
        assert!((s.prs_mib() - 1.0).abs() < 1e-9);
        assert!((s.rss_mib() - 2.0).abs() < 1e-9);
    }
}
