//! Cross-child frame deduplication index.
//!
//! When M zygote-style children are forked from the same parent, the
//! eager copy path would materialize M identical private frames for
//! every copied page. This index lets the kernel find an existing frame
//! with the same content instead: entries are keyed by a 64-bit content
//! hash of the frame's data bytes and only ever cover **untagged**
//! frames (zero capability granules, read straight from the tag-summary
//! bitmap) — tagged frames are relocated per child and therefore never
//! byte-identical across children.
//!
//! The index is deliberately *not* transactional. An entry is a hint,
//! not an owning reference: the kernel validates a probe hit against
//! live state (the canonical frame still allocated, its canonical
//! mapping still present and write-protected, the contents still equal)
//! and evicts stale entries on sight. A rolled-back fork can therefore
//! leave entries behind without any journal bookkeeping — they
//! self-invalidate on the next probe.

use std::collections::HashMap;

use crate::frame::{Frame, Pfn};

/// FNV-1a over a frame's 4096 data bytes. Deterministic across hosts
/// and runs; collisions are irrelevant for correctness because every
/// probe hit is verified by a full content comparison before sharing.
pub fn content_hash(frame: &Frame) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in frame.data() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One candidate frame for content sharing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DedupEntry {
    /// The canonical frame holding the content.
    pub pfn: Pfn,
    /// The canonical mapping's raw virtual page number: the kernel
    /// checks at probe time that this page still maps `pfn`
    /// write-protected, so the content cannot have drifted.
    pub vpn: u64,
}

/// Content-hash → canonical-frame index (see the module docs).
#[derive(Default)]
pub struct FrameDedupIndex {
    map: HashMap<u64, DedupEntry>,
}

impl FrameDedupIndex {
    /// An empty index.
    pub fn new() -> FrameDedupIndex {
        FrameDedupIndex::default()
    }

    /// Looks up the candidate for `hash`, if any. The caller must
    /// validate the entry against live kernel state before sharing.
    pub fn get(&self, hash: u64) -> Option<DedupEntry> {
        self.map.get(&hash).copied()
    }

    /// Registers (or replaces) the canonical frame for `hash`.
    pub fn insert(&mut self, hash: u64, pfn: Pfn, vpn: u64) {
        self.map.insert(hash, DedupEntry { pfn, vpn });
    }

    /// Drops a stale entry.
    pub fn evict(&mut self, hash: u64) {
        self.map.remove(&hash);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::PhysMem;

    #[test]
    fn hash_tracks_content() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        let h0 = content_hash(pm.frame(a).unwrap());
        assert_eq!(
            h0,
            content_hash(pm.frame(b).unwrap()),
            "zeroed frames agree"
        );
        pm.write(a, 100, &[7]).unwrap();
        assert_ne!(content_hash(pm.frame(a).unwrap()), h0);
        pm.write(b, 100, &[7]).unwrap();
        assert_eq!(
            content_hash(pm.frame(a).unwrap()),
            content_hash(pm.frame(b).unwrap())
        );
    }

    #[test]
    fn insert_get_evict() {
        let mut ix = FrameDedupIndex::new();
        assert!(ix.is_empty());
        ix.insert(42, Pfn(7), 0x1000);
        assert_eq!(
            ix.get(42),
            Some(DedupEntry {
                pfn: Pfn(7),
                vpn: 0x1000
            })
        );
        assert_eq!(ix.get(43), None);
        // Re-insert replaces the canonical frame.
        ix.insert(42, Pfn(9), 0x2000);
        assert_eq!(ix.get(42).unwrap().pfn, Pfn(9));
        assert_eq!(ix.len(), 1);
        ix.evict(42);
        assert!(ix.is_empty());
    }
}
