//! Physical frames with per-granule capability tags.

use std::collections::BTreeMap;
use std::fmt;

use ufork_cheri::Capability;

/// Page / frame size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Capability granule size in bytes (one tag bit covers this much memory).
pub const GRANULE_SIZE: u64 = 16;

/// Number of tag granules per page.
pub const GRANULES_PER_PAGE: u64 = PAGE_SIZE / GRANULE_SIZE;

/// Number of granules covered by one tag-summary word (a `CLoadTags`-style
/// bulk tag read returns this many tags at once).
pub const GRANULES_PER_TAG_WORD: u64 = 64;

/// Number of `u64` words in a frame's tag-occupancy bitmap.
pub const TAG_WORDS_PER_PAGE: usize = (GRANULES_PER_PAGE / GRANULES_PER_TAG_WORD) as usize;

/// A physical frame number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pfn(pub u32);

impl Pfn {
    /// The physical byte address of the start of this frame.
    pub const fn phys_addr(self) -> u64 {
        self.0 as u64 * PAGE_SIZE
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pfn({:#x})", self.0)
    }
}

/// A 4 KiB physical frame: data bytes plus out-of-band capability granules.
///
/// The sparse `caps` map plays the role of the hardware tag storage: a
/// granule index present in the map *is* a set tag, and the stored
/// [`Capability`] is the value the tag protects. Absent index ⇒ tag clear ⇒
/// the 16 bytes are plain data.
///
/// A 256-bit **tag-occupancy bitmap** (`tags`, one bit per granule) mirrors
/// the map. It models the tag summary a Morello `CLoadTags` instruction
/// exposes — 64 granule tags per bulk read — and lets the relocation scan
/// skip untagged pages in O(1) and jump directly to set bits on sparse
/// pages instead of sweeping all 256 granules.
pub struct Frame {
    data: Box<[u8]>,
    caps: BTreeMap<u16, Capability>,
    tags: [u64; TAG_WORDS_PER_PAGE],
}

impl Frame {
    /// Allocates a zeroed frame with all tags clear.
    pub fn zeroed() -> Frame {
        Frame {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            caps: BTreeMap::new(),
            tags: [0; TAG_WORDS_PER_PAGE],
        }
    }

    /// A zero-size placeholder frame holding no backing storage.
    ///
    /// Used by the parallel fork walk to *detach* a frame from the
    /// physical memory array (handing the real frame to a worker thread)
    /// without leaving a hole: the placeholder is swapped in, and the real
    /// frame is swapped back on reattach. Reading or writing a detached
    /// placeholder panics — by construction no mapping points at a frame
    /// while it is detached.
    pub fn detached() -> Frame {
        Frame {
            data: Vec::new().into_boxed_slice(),
            caps: BTreeMap::new(),
            tags: [0; TAG_WORDS_PER_PAGE],
        }
    }

    /// True if this is a [`Frame::detached`] placeholder.
    #[inline]
    pub fn is_detached(&self) -> bool {
        self.data.is_empty()
    }

    /// Resets the frame to the all-zero, no-tags state in place (the
    /// allocation-time scrub of a recycled frame).
    pub fn zero(&mut self) {
        self.data.fill(0);
        self.caps.clear();
        self.tags = [0; TAG_WORDS_PER_PAGE];
    }

    #[inline]
    fn set_tag_bit(&mut self, granule: u16) {
        self.tags[granule as usize / 64] |= 1u64 << (granule % 64);
    }

    #[inline]
    fn clear_tag_bit(&mut self, granule: u16) {
        self.tags[granule as usize / 64] &= !(1u64 << (granule % 64));
    }

    /// Read-only view of the frame's data bytes.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page; callers (the physical memory
    /// layer) validate ranges first.
    #[inline]
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let o = offset as usize;
        buf.copy_from_slice(&self.data[o..o + buf.len()]);
    }

    /// Writes `buf` at `offset`, clearing the tags of every granule the
    /// write overlaps.
    ///
    /// The tag clear works word-at-a-time on the occupancy bitmap; the
    /// (much slower) capability map is only consulted for words whose bits
    /// show a tag actually set in the overlapped range, so the common case
    /// of writing plain data to an untagged region never touches the map.
    pub fn write(&mut self, offset: u64, buf: &[u8]) {
        let o = offset as usize;
        self.data[o..o + buf.len()].copy_from_slice(buf);
        if buf.is_empty() {
            return;
        }
        let first = offset / GRANULE_SIZE;
        let last = (offset + buf.len() as u64 - 1) / GRANULE_SIZE;
        let mut any_tagged = false;
        for w in (first / 64) as usize..=(last / 64) as usize {
            let lo = if w as u64 == first / 64 {
                first % 64
            } else {
                0
            };
            let hi = if w as u64 == last / 64 { last % 64 } else { 63 };
            let mask = (u64::MAX >> (63 - hi)) & (u64::MAX << lo);
            if self.tags[w] & mask != 0 {
                any_tagged = true;
                self.tags[w] &= !mask;
            }
        }
        if any_tagged {
            for g in first..=last {
                self.caps.remove(&(g as u16));
            }
        }
    }

    /// Stores a capability at a granule-aligned `offset`, setting its tag.
    ///
    /// The granule's data bytes are set to the capability's data view so
    /// that subsequent untagged reads see the cursor value.
    pub fn store_cap(&mut self, offset: u64, cap: &Capability) {
        debug_assert_eq!(offset % GRANULE_SIZE, 0);
        let o = offset as usize;
        self.data[o..o + GRANULE_SIZE as usize].copy_from_slice(&cap.to_bytes());
        let g = (offset / GRANULE_SIZE) as u16;
        self.caps.insert(g, *cap);
        self.set_tag_bit(g);
    }

    /// Loads the capability at granule-aligned `offset`.
    ///
    /// Returns `None` when the granule's tag is clear — the 16 bytes are
    /// then plain data and must be read with [`Frame::read`].
    #[inline]
    pub fn load_cap(&self, offset: u64) -> Option<Capability> {
        debug_assert_eq!(offset % GRANULE_SIZE, 0);
        self.caps.get(&((offset / GRANULE_SIZE) as u16)).copied()
    }

    /// Clears the tag (if any) of the granule at `offset`.
    pub fn clear_tag(&mut self, offset: u64) {
        let g = (offset / GRANULE_SIZE) as u16;
        self.caps.remove(&g);
        self.clear_tag_bit(g);
    }

    /// Returns true if any granule in the frame holds a valid capability.
    #[inline]
    pub fn has_caps(&self) -> bool {
        self.tags.iter().any(|&w| w != 0)
    }

    /// Number of tagged granules in the frame (bitmap popcount).
    #[inline]
    pub fn cap_count(&self) -> usize {
        self.tags.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The tag-occupancy bitmap: one bit per granule, 64 granules per
    /// word — the view a `CLoadTags` bulk tag read exposes. Bit `g % 64`
    /// of word `g / 64` is set iff granule `g` holds a valid capability.
    #[inline]
    pub fn tag_words(&self) -> [u64; TAG_WORDS_PER_PAGE] {
        self.tags
    }

    /// Iterates `(byte_offset, capability)` over every tagged granule.
    ///
    /// μFork's relocation pass uses this as its "scan in 16-byte
    /// increments" (paper §4.2); the iteration visits granules in address
    /// order, exactly like the sequential hardware scan.
    pub fn tagged_granules(&self) -> impl Iterator<Item = (u64, Capability)> + '_ {
        self.caps
            .iter()
            .map(|(g, c)| (u64::from(*g) * GRANULE_SIZE, *c))
    }

    /// Replaces the capability at an already-tagged granule.
    ///
    /// Used by relocation to swap a stale parent capability for the rebased
    /// child one without touching neighbouring data.
    pub fn replace_cap(&mut self, offset: u64, cap: &Capability) {
        self.store_cap(offset, cap);
    }

    /// Deep-copies another frame's data and tags into this one.
    pub fn copy_from(&mut self, other: &Frame) {
        self.data.copy_from_slice(&other.data);
        self.caps = other.caps.clone();
        self.tags = other.tags;
    }

    /// Test/audit invariant: the bitmap and the capability map agree.
    pub fn check_tag_invariant(&self) -> bool {
        let mut shadow = [0u64; TAG_WORDS_PER_PAGE];
        for g in self.caps.keys() {
            shadow[*g as usize / 64] |= 1u64 << (*g % 64);
        }
        shadow == self.tags
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({} tagged granules)", self.cap_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufork_cheri::Perms;

    fn cap(addr: u64) -> Capability {
        Capability::new_root(addr, 64, Perms::data())
    }

    #[test]
    fn zeroed_frame_has_no_tags() {
        let f = Frame::zeroed();
        assert!(!f.has_caps());
        assert_eq!(f.load_cap(0), None);
        assert!(f.data().iter().all(|&b| b == 0));
        assert_eq!(f.tag_words(), [0; TAG_WORDS_PER_PAGE]);
    }

    #[test]
    fn data_write_read_round_trip() {
        let mut f = Frame::zeroed();
        f.write(100, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        f.read(100, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn cap_store_load_round_trip() {
        let mut f = Frame::zeroed();
        let c = cap(0x9000);
        f.store_cap(32, &c);
        assert_eq!(f.load_cap(32), Some(c));
        assert_eq!(f.cap_count(), 1);
        // Granule 2 → bit 2 of word 0.
        assert_eq!(f.tag_words()[0], 1 << 2);
    }

    #[test]
    fn data_write_clears_overlapping_tags() {
        let mut f = Frame::zeroed();
        f.store_cap(16, &cap(0x9000));
        f.store_cap(48, &cap(0x9100));
        // Write spans the tail of granule 1 and head of granule 2 (offsets
        // 30..34): clears granule 1's tag, granule 3 (offset 48) untouched.
        f.write(30, &[0xaa; 4]);
        assert_eq!(f.load_cap(16), None);
        assert_eq!(f.load_cap(48), Some(cap(0x9100)));
        assert_eq!(f.tag_words()[0], 1 << 3);
        assert!(f.check_tag_invariant());
    }

    #[test]
    fn zero_length_write_clears_nothing() {
        let mut f = Frame::zeroed();
        f.store_cap(0, &cap(0x9000));
        f.write(0, &[]);
        assert_eq!(f.load_cap(0), Some(cap(0x9000)));
        assert_eq!(f.cap_count(), 1);
    }

    #[test]
    fn cap_bytes_visible_as_data() {
        let mut f = Frame::zeroed();
        f.store_cap(0, &cap(0x1234_5678));
        let mut out = [0u8; 8];
        f.read(0, &mut out);
        assert_eq!(u64::from_le_bytes(out), 0x1234_5678);
    }

    #[test]
    fn tagged_granules_in_order() {
        let mut f = Frame::zeroed();
        f.store_cap(64, &cap(0xa000));
        f.store_cap(16, &cap(0xb000));
        let offs: Vec<u64> = f.tagged_granules().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![16, 64]);
    }

    #[test]
    fn copy_from_carries_tags() {
        let mut a = Frame::zeroed();
        a.write(0, &[7; 16]);
        a.store_cap(16, &cap(0xc000));
        let mut b = Frame::zeroed();
        // Pre-existing tags in the destination must be fully replaced.
        b.store_cap(128, &cap(0xdddd));
        b.copy_from(&a);
        assert_eq!(b.load_cap(16), Some(cap(0xc000)));
        assert_eq!(b.load_cap(128), None);
        assert_eq!(b.data()[..16], [7; 16]);
        assert_eq!(b.tag_words(), a.tag_words());
        assert!(b.check_tag_invariant());
    }

    #[test]
    fn clear_tag_updates_bitmap() {
        let mut f = Frame::zeroed();
        f.store_cap(1024, &cap(0xe000)); // granule 64 → word 1 bit 0
        assert_eq!(f.tag_words()[1], 1);
        f.clear_tag(1024);
        assert_eq!(f.tag_words(), [0; TAG_WORDS_PER_PAGE]);
        assert!(!f.has_caps());
        assert!(f.check_tag_invariant());
    }

    #[test]
    fn bitmap_spans_all_four_words() {
        let mut f = Frame::zeroed();
        for word in 0..TAG_WORDS_PER_PAGE as u64 {
            let g = word * GRANULES_PER_TAG_WORD + word; // bit `word` of each word
            f.store_cap(g * GRANULE_SIZE, &cap(0xf000 + g));
        }
        for (i, w) in f.tag_words().iter().enumerate() {
            assert_eq!(*w, 1 << i, "word {i}");
        }
        assert_eq!(f.cap_count(), TAG_WORDS_PER_PAGE);
    }

    #[test]
    fn zero_resets_data_and_tags() {
        let mut f = Frame::zeroed();
        f.write(0, &[0xff; 64]);
        f.store_cap(128, &cap(0xa000));
        f.zero();
        assert!(f.data().iter().all(|&b| b == 0));
        assert!(!f.has_caps());
        assert_eq!(f.tag_words(), [0; TAG_WORDS_PER_PAGE]);
        assert!(f.check_tag_invariant());
    }

    #[test]
    fn detached_placeholder_holds_nothing() {
        let f = Frame::detached();
        assert!(f.is_detached());
        assert!(!Frame::zeroed().is_detached());
        assert!(!f.has_caps());
        assert_eq!(f.data().len(), 0);
    }

    #[test]
    fn write_spanning_tag_words_clears_all_overlapped() {
        let mut f = Frame::zeroed();
        // Granule 63 (word 0, bit 63) and granule 64 (word 1, bit 0).
        f.store_cap(63 * GRANULE_SIZE, &cap(0xa000));
        f.store_cap(64 * GRANULE_SIZE, &cap(0xb000));
        f.store_cap(200 * GRANULE_SIZE, &cap(0xc000)); // word 3: untouched
        f.write(63 * GRANULE_SIZE - 8, &[0u8; 40]); // spans granules 62..=65
        assert_eq!(f.load_cap(63 * GRANULE_SIZE), None);
        assert_eq!(f.load_cap(64 * GRANULE_SIZE), None);
        assert_eq!(f.load_cap(200 * GRANULE_SIZE), Some(cap(0xc000)));
        assert!(f.check_tag_invariant());
    }

    #[test]
    fn pfn_phys_addr() {
        assert_eq!(Pfn(0).phys_addr(), 0);
        assert_eq!(Pfn(2).phys_addr(), 2 * PAGE_SIZE);
    }
}
