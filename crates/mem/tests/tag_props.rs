//! Property tests of the tagged-memory invariant μFork's relocation
//! depends on: a tag is set iff the last write to its granule was a
//! capability store, and data writes always clear overlapped tags.

use proptest::prelude::*;
use ufork_cheri::{Capability, Perms};
use ufork_mem::{PhysMem, GRANULES_PER_PAGE, GRANULE_SIZE, PAGE_SIZE};

#[derive(Clone, Debug)]
enum Op {
    Write { off: u16, len: u8 },
    StoreCap { granule: u8 },
    ClearViaWrite { granule: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u16>(), 1u8..64).prop_map(|(off, len)| Op::Write {
                off: off % (PAGE_SIZE as u16 - 64),
                len,
            }),
            any::<u8>().prop_map(|g| Op::StoreCap { granule: g }),
            any::<u8>().prop_map(|g| Op::ClearViaWrite { granule: g }),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tag_set_iff_last_writer_was_cap_store(ops in ops()) {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        // Shadow: which granules hold valid capabilities.
        let mut shadow = vec![false; GRANULES_PER_PAGE as usize];
        let cap = Capability::new_root(0x4000, 64, Perms::data());

        for op in ops {
            match op {
                Op::Write { off, len } => {
                    let off = u64::from(off);
                    let len = u64::from(len);
                    pm.write(f, off, &vec![0xAA; len as usize]).unwrap();
                    let first = off / GRANULE_SIZE;
                    let last = (off + len - 1) / GRANULE_SIZE;
                    for g in first..=last {
                        shadow[g as usize] = false;
                    }
                }
                Op::StoreCap { granule } => {
                    let g = u64::from(granule) % GRANULES_PER_PAGE;
                    pm.store_cap(f, g * GRANULE_SIZE, &cap).unwrap();
                    shadow[g as usize] = true;
                }
                Op::ClearViaWrite { granule } => {
                    let g = u64::from(granule) % GRANULES_PER_PAGE;
                    pm.write(f, g * GRANULE_SIZE + 7, &[1]).unwrap();
                    shadow[g as usize] = false;
                }
            }
            // Invariant: the frame's tag map equals the shadow.
            for (g, expect) in shadow.iter().enumerate() {
                let got = pm.load_cap(f, g as u64 * GRANULE_SIZE).unwrap().is_some();
                prop_assert_eq!(got, *expect, "granule {}", g);
            }
        }
    }

    /// Copying a frame preserves both data and tags exactly.
    #[test]
    fn frame_copy_preserves_tags(granules in proptest::collection::btree_set(0u64..GRANULES_PER_PAGE, 0..32)) {
        let mut pm = PhysMem::new(3);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        for &g in &granules {
            let cap = Capability::new_root(0x8000 + g * 64, 64, Perms::data());
            pm.store_cap(a, g * GRANULE_SIZE, &cap).unwrap();
        }
        pm.copy_frame(a, b).unwrap();
        for g in 0..GRANULES_PER_PAGE {
            let src = pm.load_cap(a, g * GRANULE_SIZE).unwrap();
            let dst = pm.load_cap(b, g * GRANULE_SIZE).unwrap();
            prop_assert_eq!(src, dst);
        }
    }

    /// Refcounts: after any sequence of inc/dec the frame is freed exactly
    /// when the count hits zero, and never before.
    #[test]
    fn refcount_lifecycle(incs in 0u32..12) {
        let mut pm = PhysMem::new(1);
        let f = pm.alloc_frame().unwrap();
        for _ in 0..incs {
            pm.inc_ref(f).unwrap();
        }
        for i in 0..incs {
            prop_assert_eq!(pm.dec_ref(f).unwrap(), incs - i);
            prop_assert!(pm.refcount(f).is_ok());
        }
        prop_assert_eq!(pm.dec_ref(f).unwrap(), 0);
        prop_assert!(pm.refcount(f).is_err());
        prop_assert_eq!(pm.allocated_frames(), 0);
    }
}
