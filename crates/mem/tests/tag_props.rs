//! Property tests of the tagged-memory invariant μFork's relocation
//! depends on: a tag is set iff the last write to its granule was a
//! capability store, and data writes always clear overlapped tags.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use std::collections::BTreeSet;

use ufork_cheri::{Capability, Perms};
use ufork_mem::{PhysMem, GRANULES_PER_PAGE, GRANULE_SIZE, PAGE_SIZE};
use ufork_testkit::{forall, no_shrink, shrink_vec, PropConfig, Rng};

fn cfg() -> PropConfig {
    PropConfig::from_env(256)
}

#[derive(Clone, Debug)]
enum Op {
    Write { off: u16, len: u8 },
    StoreCap { granule: u8 },
    ClearViaWrite { granule: u8 },
}

fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.range(1, 80) as usize;
    (0..n)
        .map(|_| match rng.below(3) {
            0 => Op::Write {
                off: (rng.next_u64() as u16) % (PAGE_SIZE as u16 - 64),
                len: rng.range(1, 64) as u8,
            },
            1 => Op::StoreCap {
                granule: rng.next_u64() as u8,
            },
            _ => Op::ClearViaWrite {
                granule: rng.next_u64() as u8,
            },
        })
        .collect()
}

#[test]
fn tag_set_iff_last_writer_was_cap_store() {
    forall(
        "tag_set_iff_last_writer_was_cap_store",
        &cfg(),
        gen_ops,
        |ops| shrink_vec(ops),
        |ops| {
            let mut pm = PhysMem::new(2);
            let f = pm.alloc_frame().unwrap();
            // Shadow: which granules hold valid capabilities.
            let mut shadow = vec![false; GRANULES_PER_PAGE as usize];
            let cap = Capability::new_root(0x4000, 64, Perms::data());

            for op in ops {
                match op {
                    Op::Write { off, len } => {
                        let off = u64::from(*off);
                        let len = u64::from(*len);
                        pm.write(f, off, &vec![0xAA; len as usize]).unwrap();
                        let first = off / GRANULE_SIZE;
                        let last = (off + len - 1) / GRANULE_SIZE;
                        for g in first..=last {
                            shadow[g as usize] = false;
                        }
                    }
                    Op::StoreCap { granule } => {
                        let g = u64::from(*granule) % GRANULES_PER_PAGE;
                        pm.store_cap(f, g * GRANULE_SIZE, &cap).unwrap();
                        shadow[g as usize] = true;
                    }
                    Op::ClearViaWrite { granule } => {
                        let g = u64::from(*granule) % GRANULES_PER_PAGE;
                        pm.write(f, g * GRANULE_SIZE + 7, &[1]).unwrap();
                        shadow[g as usize] = false;
                    }
                }
                // Invariant: the frame's tag map equals the shadow.
                for (g, expect) in shadow.iter().enumerate() {
                    let got = pm.load_cap(f, g as u64 * GRANULE_SIZE).unwrap().is_some();
                    if got != *expect {
                        return Err(format!("granule {g}: tag {got}, shadow expects {expect}"));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Copying a frame preserves both data and tags exactly.
#[test]
fn frame_copy_preserves_tags() {
    forall(
        "frame_copy_preserves_tags",
        &cfg(),
        |rng| {
            let n = rng.below(32);
            let mut granules = BTreeSet::new();
            for _ in 0..n {
                granules.insert(rng.below(GRANULES_PER_PAGE));
            }
            granules
        },
        no_shrink,
        |granules| {
            let mut pm = PhysMem::new(3);
            let a = pm.alloc_frame().unwrap();
            let b = pm.alloc_frame().unwrap();
            for &g in granules {
                let cap = Capability::new_root(0x8000 + g * 64, 64, Perms::data());
                pm.store_cap(a, g * GRANULE_SIZE, &cap).unwrap();
            }
            pm.copy_frame(a, b).unwrap();
            for g in 0..GRANULES_PER_PAGE {
                let src = pm.load_cap(a, g * GRANULE_SIZE).unwrap();
                let dst = pm.load_cap(b, g * GRANULE_SIZE).unwrap();
                if src != dst {
                    return Err(format!("granule {g}: copy diverged"));
                }
            }
            Ok(())
        },
    );
}

#[derive(Clone, Debug)]
enum BitmapOp {
    Write { off: u16, len: u8 },
    StoreCap { granule: u8 },
    ClearTag { granule: u8 },
    CopyFrom,
}

fn gen_bitmap_ops(rng: &mut Rng) -> Vec<BitmapOp> {
    let n = rng.range(1, 100) as usize;
    (0..n)
        .map(|_| match rng.below(4) {
            0 => BitmapOp::Write {
                off: (rng.next_u64() as u16) % (PAGE_SIZE as u16 - 64),
                len: rng.range(1, 64) as u8,
            },
            1 => BitmapOp::StoreCap {
                granule: rng.next_u64() as u8,
            },
            2 => BitmapOp::ClearTag {
                granule: rng.next_u64() as u8,
            },
            _ => BitmapOp::CopyFrom,
        })
        .collect()
}

/// The tag-occupancy bitmap (`tag_words`, the `CLoadTags` summary the
/// relocation fast path trusts) must agree with the capability map after
/// any interleaving of writes, cap stores, tag clears, and frame copies:
/// bit `g` set iff granule `g` holds a valid capability, and the popcount
/// equals `cap_count`.
#[test]
fn tag_bitmap_agrees_with_cap_map() {
    forall(
        "tag_bitmap_agrees_with_cap_map",
        &cfg(),
        gen_bitmap_ops,
        |ops| shrink_vec(ops),
        |ops| {
            let mut pm = PhysMem::new(3);
            let f = pm.alloc_frame().unwrap();
            // A donor frame with a fixed sparse cap population, for
            // exercising `copy_from`'s bitmap transfer.
            let donor = pm.alloc_frame().unwrap();
            for g in [5u64, 77, 130, 255] {
                let cap = Capability::new_root(0x6000 + g * 64, 64, Perms::data());
                pm.store_cap(donor, g * GRANULE_SIZE, &cap).unwrap();
            }
            let cap = Capability::new_root(0x4000, 64, Perms::data());

            for op in ops {
                match op {
                    BitmapOp::Write { off, len } => {
                        pm.write(f, u64::from(*off), &vec![0x55; usize::from(*len)])
                            .unwrap();
                    }
                    BitmapOp::StoreCap { granule } => {
                        let g = u64::from(*granule) % GRANULES_PER_PAGE;
                        pm.store_cap(f, g * GRANULE_SIZE, &cap).unwrap();
                    }
                    BitmapOp::ClearTag { granule } => {
                        let g = u64::from(*granule) % GRANULES_PER_PAGE;
                        pm.frame_mut(f).unwrap().clear_tag(g * GRANULE_SIZE);
                    }
                    BitmapOp::CopyFrom => {
                        pm.copy_frame(donor, f).unwrap();
                    }
                }
                let frame = pm.frame(f).unwrap();
                let words = frame.tag_words();
                for g in 0..GRANULES_PER_PAGE {
                    let bit = words[(g / 64) as usize] >> (g % 64) & 1 == 1;
                    let tagged = frame.load_cap(g * GRANULE_SIZE).is_some();
                    if bit != tagged {
                        return Err(format!(
                            "granule {g}: bitmap bit {bit}, cap map says {tagged} after {op:?}"
                        ));
                    }
                }
                let popcount: u32 = words.iter().map(|w| w.count_ones()).sum();
                if popcount as usize != frame.cap_count() {
                    return Err(format!(
                        "popcount {popcount} != cap_count {} after {op:?}",
                        frame.cap_count()
                    ));
                }
                if !frame.check_tag_invariant() {
                    return Err(format!("check_tag_invariant failed after {op:?}"));
                }
            }
            Ok(())
        },
    );
}

/// Refcounts: after any sequence of inc/dec the frame is freed exactly
/// when the count hits zero, and never before.
#[test]
fn refcount_lifecycle() {
    forall(
        "refcount_lifecycle",
        &cfg(),
        |rng| rng.below(12) as u32,
        no_shrink,
        |&incs| {
            let mut pm = PhysMem::new(1);
            let f = pm.alloc_frame().unwrap();
            for _ in 0..incs {
                pm.inc_ref(f).unwrap();
            }
            for i in 0..incs {
                if pm.dec_ref(f).unwrap() != incs - i {
                    return Err(format!("dec_ref {i} returned wrong remaining count"));
                }
                if pm.refcount(f).is_err() {
                    return Err(format!("frame freed early at dec {i}"));
                }
            }
            if pm.dec_ref(f).unwrap() != 0 {
                return Err("final dec_ref did not report zero".into());
            }
            if pm.refcount(f).is_ok() {
                return Err("frame still allocated after final dec_ref".into());
            }
            if pm.allocated_frames() != 0 {
                return Err("allocated_frames nonzero after free".into());
            }
            Ok(())
        },
    );
}
