//! Deterministic simulated clock.

use std::fmt;

/// A point in (or span of) simulated time, in nanoseconds.
///
/// Stored as `f64`: per-operation costs are sub-nanosecond (e.g. a PTE
/// copy amortized through a cache-line memcpy), while experiment spans
/// reach tens of simulated seconds. `f64` keeps both exact enough
/// (relative error < 2⁻⁵²) and keeps arithmetic simple and deterministic.
pub type Ns = f64;

/// A monotonically advancing simulated clock.
///
/// # Examples
///
/// ```
/// use ufork_sim::Clock;
///
/// let mut c = Clock::new();
/// c.advance(1500.0);
/// assert_eq!(c.now(), 1500.0);
/// assert!((c.now_us() - 1.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Ns,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.now / 1e3
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now / 1e6
    }

    /// Advances the clock by `ns` nanoseconds, saturating.
    ///
    /// The arithmetic is checked: a negative or NaN `ns` is a no-op in
    /// release builds (time never goes backwards, and a NaN must not
    /// poison every later timestamp), and an advance that would overflow
    /// past `f64::MAX` saturates there instead of producing infinity.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ns` is negative or NaN, so bugs that
    /// compute nonsense costs are caught in tests while production runs
    /// degrade monotonically.
    pub fn advance(&mut self, ns: Ns) {
        debug_assert!(ns >= 0.0, "negative time advance: {ns}");
        if ns.is_nan() || ns < 0.0 {
            return; // NaN or negative: refuse to rewind or poison.
        }
        let next = self.now + ns;
        if next.is_finite() {
            // `next >= self.now` holds for finite sums of non-negatives.
            self.now = next;
        } else {
            self.now = f64::MAX;
        }
    }

    /// Advances the clock to `t` if `t` is later than now.
    ///
    /// Advancing to a timestamp in the past (or to NaN) is a documented
    /// **no-op**, not a rewind: callers synchronizing against an older
    /// lane or event simply keep the current time.
    pub fn advance_to(&mut self, t: Ns) {
        if t > self.now {
            self.now = if t.is_finite() { t } else { f64::MAX };
        }
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}µs", self.now_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(10.0);
        c.advance(0.5);
        assert_eq!(c.now(), 10.5);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = Clock::new();
        c.advance(100.0);
        c.advance_to(50.0);
        assert_eq!(c.now(), 100.0);
        c.advance_to(200.0);
        assert_eq!(c.now(), 200.0);
    }

    #[test]
    fn unit_conversions() {
        let mut c = Clock::new();
        c.advance(2_500_000.0);
        assert!((c.now_ms() - 2.5).abs() < 1e-12);
        assert!((c.now_us() - 2500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative time advance")]
    fn negative_advance_panics_in_debug() {
        Clock::new().advance(-1.0);
    }

    #[test]
    fn advance_saturates_instead_of_overflowing() {
        let mut c = Clock::new();
        c.advance(f64::MAX);
        c.advance(f64::MAX);
        assert_eq!(c.now(), f64::MAX);
        assert!(c.now().is_finite());
        // Saturated clocks still accept (and ignore) further advances.
        c.advance(1.0);
        assert_eq!(c.now(), f64::MAX);
    }

    #[test]
    fn advance_to_past_is_a_no_op() {
        let mut c = Clock::new();
        c.advance(100.0);
        c.advance_to(100.0); // equal timestamp: no-op too
        assert_eq!(c.now(), 100.0);
        c.advance_to(-5.0);
        assert_eq!(c.now(), 100.0);
        c.advance_to(f64::NAN); // NaN never compares greater: no-op
        assert_eq!(c.now(), 100.0);
        c.advance_to(f64::INFINITY); // future but non-finite: saturates
        assert_eq!(c.now(), f64::MAX);
    }
}
