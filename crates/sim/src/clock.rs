//! Deterministic simulated clock.

use std::fmt;

/// A point in (or span of) simulated time, in nanoseconds.
///
/// Stored as `f64`: per-operation costs are sub-nanosecond (e.g. a PTE
/// copy amortized through a cache-line memcpy), while experiment spans
/// reach tens of simulated seconds. `f64` keeps both exact enough
/// (relative error < 2⁻⁵²) and keeps arithmetic simple and deterministic.
pub type Ns = f64;

/// A monotonically advancing simulated clock.
///
/// # Examples
///
/// ```
/// use ufork_sim::Clock;
///
/// let mut c = Clock::new();
/// c.advance(1500.0);
/// assert_eq!(c.now(), 1500.0);
/// assert!((c.now_us() - 1.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Ns,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.now / 1e3
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now / 1e6
    }

    /// Advances the clock by `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ns` is negative or NaN — time never
    /// goes backwards in the simulator.
    pub fn advance(&mut self, ns: Ns) {
        debug_assert!(ns >= 0.0, "negative time advance: {ns}");
        self.now += ns;
    }

    /// Advances the clock to `t` if `t` is later than now.
    pub fn advance_to(&mut self, t: Ns) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}µs", self.now_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(10.0);
        c.advance(0.5);
        assert_eq!(c.now(), 10.5);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = Clock::new();
        c.advance(100.0);
        c.advance_to(50.0);
        assert_eq!(c.now(), 100.0);
        c.advance_to(200.0);
        assert_eq!(c.now(), 200.0);
    }

    #[test]
    fn unit_conversions() {
        let mut c = Clock::new();
        c.advance(2_500_000.0);
        assert!((c.now_ms() - 2.5).abs() < 1e-12);
        assert!((c.now_us() - 2500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative time advance")]
    fn negative_advance_panics_in_debug() {
        Clock::new().advance(-1.0);
    }
}
