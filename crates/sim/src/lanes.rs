//! Per-worker lane clocks for the deterministic multicore cost model.
//!
//! The simulator executes on the host with real threads, but *simulated*
//! time must not depend on host scheduling. [`LaneClocks`] models an
//! N-core machine the way a critical-path analysis would: every unit of
//! parallel work is charged to a statically chosen lane, and the elapsed
//! simulated time of the parallel section is the **maximum** over lanes —
//! the moment the last core finishes. Total work (the sum over lanes) is
//! still available for utilization accounting.
//!
//! Determinism contract: lane assignment and the order in which costs are
//! folded into each lane are fixed by the caller (e.g. chunk index modulo
//! worker count, folded in chunk-index order), never by host thread
//! completion order. Same inputs + same lane count ⇒ bit-identical `f64`
//! results.

use crate::clock::Ns;

/// Simulated clocks for the lanes (cores) of a parallel section.
///
/// # Examples
///
/// ```
/// use ufork_sim::LaneClocks;
///
/// let mut lanes = LaneClocks::new(2);
/// lanes.charge(0, 100.0);
/// lanes.charge(1, 250.0);
/// lanes.charge(0, 50.0);
/// assert_eq!(lanes.elapsed(), 250.0); // the slowest lane gates the join
/// assert_eq!(lanes.total_work(), 400.0);
/// ```
#[derive(Clone, Debug)]
pub struct LaneClocks {
    lanes: Vec<Ns>,
}

impl LaneClocks {
    /// Clocks for `workers` lanes, all at zero. `workers` is clamped to at
    /// least 1 — a parallel section always has one core to run on.
    pub fn new(workers: usize) -> LaneClocks {
        LaneClocks {
            lanes: vec![0.0; workers.max(1)],
        }
    }

    /// Number of lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// Charges `ns` of simulated work to `lane` (wrapping modulo the lane
    /// count, so callers can pass a raw chunk index). Negative and NaN
    /// charges are ignored, matching [`crate::Clock::advance`].
    pub fn charge(&mut self, lane: usize, ns: Ns) {
        if ns.is_nan() || ns < 0.0 {
            return;
        }
        let i = lane % self.lanes.len();
        let next = self.lanes[i] + ns;
        self.lanes[i] = if next.is_finite() { next } else { f64::MAX };
    }

    /// Simulated time of lane `i`.
    pub fn lane(&self, i: usize) -> Ns {
        self.lanes[i % self.lanes.len()]
    }

    /// Advances lane `i` to the absolute time `t` (no-op when the lane is
    /// already past `t`, or when `t` is NaN).
    ///
    /// The discrete-event scheduler sets a core's clock to each step's
    /// *end* time rather than accumulating a delta: `lane + (end - lane)`
    /// is not guaranteed to round back to `end`, and the scheduler's
    /// replay contract needs the core clock bit-identical to the
    /// arithmetic that produced the step end.
    pub fn advance_to(&mut self, lane: usize, t: Ns) {
        if t.is_nan() {
            return;
        }
        let i = lane % self.lanes.len();
        if t > self.lanes[i] {
            self.lanes[i] = t;
        }
    }

    /// Elapsed simulated time of the parallel section: the time at which
    /// the last lane finishes (max over lanes).
    pub fn elapsed(&self) -> Ns {
        self.lanes.iter().copied().fold(0.0, f64::max)
    }

    /// Total simulated work across all lanes (what a single core would
    /// have taken; `total_work / elapsed` is the achieved speedup).
    pub fn total_work(&self) -> Ns {
        self.lanes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_max_over_lanes() {
        let mut l = LaneClocks::new(4);
        for (i, ns) in [10.0, 40.0, 20.0, 30.0].into_iter().enumerate() {
            l.charge(i, ns);
        }
        assert_eq!(l.elapsed(), 40.0);
        assert_eq!(l.total_work(), 100.0);
        assert_eq!(l.workers(), 4);
    }

    #[test]
    fn single_lane_degenerates_to_serial() {
        let mut l = LaneClocks::new(1);
        l.charge(0, 5.0);
        l.charge(7, 10.0); // wraps to lane 0
        assert_eq!(l.elapsed(), 15.0);
        assert_eq!(l.elapsed(), l.total_work());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let l = LaneClocks::new(0);
        assert_eq!(l.workers(), 1);
        assert_eq!(l.elapsed(), 0.0);
    }

    #[test]
    fn lane_assignment_wraps_deterministically() {
        let mut l = LaneClocks::new(3);
        for chunk in 0..9 {
            l.charge(chunk, 1.0);
        }
        // 9 chunks round-robin over 3 lanes: perfectly balanced.
        assert_eq!(l.lane(0), 3.0);
        assert_eq!(l.lane(1), 3.0);
        assert_eq!(l.lane(2), 3.0);
        assert_eq!(l.elapsed(), 3.0);
    }

    #[test]
    fn advance_to_is_monotone_and_exact() {
        let mut l = LaneClocks::new(2);
        l.advance_to(0, 100.5);
        assert_eq!(l.lane(0), 100.5); // exact, not accumulated
        l.advance_to(0, 50.0); // going backwards is a no-op
        assert_eq!(l.lane(0), 100.5);
        l.advance_to(0, f64::NAN);
        assert_eq!(l.lane(0), 100.5);
        l.advance_to(3, 7.0); // wraps to lane 1
        assert_eq!(l.lane(1), 7.0);
        assert_eq!(l.elapsed(), 100.5);
    }

    #[test]
    fn nan_and_negative_charges_ignored() {
        let mut l = LaneClocks::new(2);
        l.charge(0, 10.0);
        l.charge(0, f64::NAN);
        l.charge(1, -3.0);
        assert_eq!(l.elapsed(), 10.0);
        assert_eq!(l.total_work(), 10.0);
    }
}
