//! The calibrated hardware cost model.

use crate::clock::Ns;

/// Simulated cost (in nanoseconds) of every primitive operation the
/// simulated kernels perform.
///
/// One instance is shared by μFork and both baselines; the *constants* are
/// identical hardware costs, and the systems differ in **which** and **how
/// many** operations they perform — exactly as on the paper's shared
/// Morello testbed. The per-OS fields (`fork_fixed_*`, …) capture fixed
/// software path lengths measured indirectly through the paper's anchors.
///
/// Calibration anchors (paper §5.2): hello-world fork latency 54 μs
/// (μFork) / 197 μs (CheriBSD) / 10.7 ms (Nephele); Unixbench Spawn 56 /
/// 198 ms per 1000 forks; Context1 245 / 419 ms per 100 k pipe round
/// trips. All other results must emerge from simulated work.
#[derive(Clone, Debug)]
pub struct CostModel {
    // ---- MMU / memory -------------------------------------------------
    /// Copying one PTE during a bulk page-table copy (cache-friendly,
    /// 512 entries per page-table page).
    pub pte_copy: Ns,
    /// Writing / remapping a single PTE including per-entry TLB
    /// maintenance.
    pub pte_write: Ns,
    /// Changing permissions of one PTE in a batched protection sweep.
    pub pte_protect: Ns,
    /// Extra per-page cost of marking a page fully inaccessible (CoA):
    /// break-before-make TLB invalidation cannot be batched like the
    /// read-only transition CoPA uses.
    pub coa_pte_extra: Ns,
    /// Copying one 4 KiB page (data + tags).
    pub page_copy: Ns,
    /// Inspecting one 16-byte granule's tag during the relocation scan.
    pub granule_check: Ns,
    /// Bulk tag read covering 64 granules at once (Morello `CLoadTags`
    /// reads the tags of a whole capability cache line per issue; the
    /// tag-summary fast path charges one of these per 64-granule word
    /// instead of 64 individual `granule_check`s).
    pub tags_load: Ns,
    /// Rebasing and rewriting one relocated capability.
    pub cap_relocate: Ns,
    /// Allocating a physical frame.
    pub page_alloc: Ns,
    /// Content-hashing one 4 KiB page for the cross-child frame-dedup
    /// index, or memcmp-verifying a probe hit against the candidate
    /// frame (both stream the whole page through the cache once).
    pub page_hash: Ns,
    /// Zeroing one 4 KiB page (including clearing its capability tags).
    ///
    /// Charged only when a **recycled** frame must actually be scrubbed
    /// before reuse; fresh frames come pre-zeroed from boot, and
    /// allocations whose caller overwrites the whole frame (a Full-copy
    /// fork destination) skip the zero entirely — that saved cost is what
    /// the recycled-frame pool's deferred-zeroing policy models.
    pub zero_page: Ns,
    /// Full TLB flush (VM switches; invalidations on unmap storms).
    pub tlb_flush: Ns,
    /// ASID rewrite on a cross-address-space context switch (Morello TLBs
    /// are ASID-tagged, so no full flush is needed).
    pub asid_switch: Ns,
    /// Taking a synchronous fault (entry + dispatch + ERET).
    pub fault_entry: Ns,
    /// Fork admission pre-flight: reading the free-frame/watermark
    /// counters and booking the reservation. Fixed work on every fork —
    /// must stay negligible next to `fork_fixed_ufork` or admission
    /// control would show up in the paper's latency anchors.
    pub admission_check: Ns,
    /// Fixed backoff charged between a rolled-back fork attempt and its
    /// reclaim-then-retry. Deterministic (no jitter): the retry schedule
    /// is a pure function of the failure sequence.
    pub reclaim_backoff: Ns,

    // ---- Domain switches ----------------------------------------------
    /// Trap-based syscall entry + exit (monolithic kernel).
    pub trap_syscall: Ns,
    /// Sealed-capability syscall domain switch (μFork, no trap).
    pub sealed_syscall: Ns,
    /// Context switch between threads in the same address space.
    pub ctx_switch: Ns,

    // ---- fork fixed path lengths ---------------------------------------
    /// μFork fixed fork work: region reservation, task struct, PID,
    /// fd-table duplication, register-file relocation, thread creation.
    pub fork_fixed_ufork: Ns,
    /// Monolithic fork fixed work: vmspace creation, proc struct, fd
    /// duplication, scheduler insertion.
    pub fork_fixed_mono: Ns,
    /// Per-PTE cost of monolithic CoW setup (parent *and* child entries
    /// are downgraded and refcounts taken).
    pub pte_cow_mono: Ns,
    /// Hypervisor domain creation for the VM-cloning baseline (Nephele:
    /// new Xen domain, console, event channels, grant tables).
    pub nephele_domain_create: Ns,
    /// Per-page cost of cloning the guest into a new domain.
    pub nephele_per_page: Ns,
    /// Process teardown (exit) fixed work.
    pub proc_exit: Ns,
    /// wait() fixed work once the child has exited.
    pub proc_wait: Ns,
    /// execve() fixed work: image load, PIC setup, GOT population.
    pub exec_fixed: Ns,

    // ---- I/O -----------------------------------------------------------
    /// copyin/copyout per byte between user and kernel (monolithic,
    /// always; μFork, only when TOCTTOU protection is enabled).
    pub copyio_per_byte: Ns,
    /// Per-byte cost of the ram-disk file store.
    pub ramdisk_per_byte: Ns,
    /// Fixed per-operation cost in the file-system layer.
    pub fs_op: Ns,
    /// Per-byte cost of moving data through a pipe.
    pub pipe_per_byte: Ns,

    // ---- Workload CPU --------------------------------------------------
    /// One floating-point-heavy loop iteration (FunctionBench).
    pub flop: Ns,
    /// One generic ALU/memory op in workload compute loops.
    pub cpu_op: Ns,
    /// Serializing one byte of database payload (Redis RDB writer).
    pub serialize_per_byte: Ns,

    // ---- Isolation -----------------------------------------------------
    /// Per-syscall argument validation under full (adversarial)
    /// isolation.
    pub syscall_validate: Ns,
    /// Fixed TOCTTOU cost per syscall carrying user buffers.
    pub tocttou_fixed: Ns,
}

impl CostModel {
    /// The Morello-calibrated default model.
    pub fn morello() -> CostModel {
        CostModel {
            pte_copy: 5.5,
            pte_write: 30.0,
            pte_protect: 1.5,
            coa_pte_extra: 0.7,
            page_copy: 400.0,
            granule_check: 0.9,
            tags_load: 8.0,
            cap_relocate: 12.0,
            page_alloc: 90.0,
            page_hash: 150.0,
            zero_page: 320.0,
            tlb_flush: 2_500.0,
            asid_switch: 150.0,
            fault_entry: 350.0,
            admission_check: 180.0,
            reclaim_backoff: 5_000.0,
            trap_syscall: 500.0,
            sealed_syscall: 45.0,
            ctx_switch: 1_080.0,
            fork_fixed_ufork: 50_000.0,
            fork_fixed_mono: 191_000.0,
            pte_cow_mono: 40.0,
            nephele_domain_create: 10_400_000.0,
            nephele_per_page: 700.0,
            proc_exit: 1_500.0,
            proc_wait: 800.0,
            exec_fixed: 30_000.0,
            copyio_per_byte: 0.45,
            ramdisk_per_byte: 0.35,
            fs_op: 1_200.0,
            pipe_per_byte: 0.3,
            flop: 1.2,
            cpu_op: 0.8,
            serialize_per_byte: 0.7,
            syscall_validate: 60.0,
            tocttou_fixed: 120.0,
        }
    }

    /// Cost of scanning one full page (256 granules) for tags, granule by
    /// granule — the naive sweep the tag-summary fast path replaces.
    pub fn page_scan(&self) -> Ns {
        self.granule_check * 256.0
    }

    /// Cost of a tag-summary sweep of one page: four bulk tag reads
    /// (`CLoadTags`, 64 granules each) plus one `granule_check` per set
    /// tag actually inspected.
    pub fn page_scan_summary(&self, tagged: u64) -> Ns {
        self.tags_load * 4.0 + self.granule_check * tagged as f64
    }

    /// Cost of a transparent page copy: fault + frame alloc + copy.
    pub fn fault_copy_page(&self) -> Ns {
        self.fault_entry + self.page_alloc + self.page_copy
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::morello()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::morello();
        for v in [
            c.pte_copy,
            c.page_copy,
            c.granule_check,
            c.cap_relocate,
            c.trap_syscall,
            c.sealed_syscall,
            c.fork_fixed_ufork,
            c.fork_fixed_mono,
            c.nephele_domain_create,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn relative_order_matches_hardware() {
        let c = CostModel::morello();
        // The relationships the paper's design arguments depend on.
        assert!(c.sealed_syscall < c.trap_syscall, "sealed calls beat traps");
        assert!(c.fork_fixed_ufork < c.fork_fixed_mono);
        assert!(c.fork_fixed_mono < c.nephele_domain_create);
        assert!(c.pte_copy < c.pte_cow_mono);
        assert!(c.granule_check < c.page_copy);
        // Zeroing a page is write-only: cheaper than a read+write copy,
        // but far more than the allocator bookkeeping it piggybacks on.
        assert!(c.zero_page < c.page_copy);
        assert!(c.zero_page > c.page_alloc);
        // Hashing reads the page once; copying reads and writes it. If
        // hashing ever cost more than copying, dedup could never win.
        assert!(c.page_hash < c.page_copy);
        // A bulk tag read must beat checking its 64 granules one by one,
        // or the fast path would be a pessimization.
        assert!(c.tags_load < 64.0 * c.granule_check);
        // Admission pre-flight must be lost in the fixed fork path (well
        // under 1%), or it would distort the calibrated latency anchors;
        // the reclaim backoff sits between a fault and the fixed path.
        assert!(c.admission_check * 100.0 < c.fork_fixed_ufork);
        assert!(c.reclaim_backoff > c.fault_entry);
        assert!(c.reclaim_backoff < c.fork_fixed_ufork);
    }

    #[test]
    fn derived_costs() {
        let c = CostModel::morello();
        assert!((c.page_scan() - 256.0 * c.granule_check).abs() < 1e-9);
        assert!(c.fault_copy_page() > c.page_copy);
        // Empty page: 4 bulk reads, nothing else. Dense page: the summary
        // sweep converges on the naive sweep plus the bulk-read overhead.
        assert!((c.page_scan_summary(0) - 4.0 * c.tags_load).abs() < 1e-9);
        assert!(c.page_scan_summary(0) < c.page_scan());
        assert!(c.page_scan_summary(256) > c.page_scan());
    }
}
