//! Operation counters for mechanism-level assertions.

use std::fmt;

/// Counts of primitive operations performed by a simulated kernel.
///
/// Where the paper argues about *mechanism* ("CoPA copies only pages the
/// child loads capabilities from"), tests assert on these counters rather
/// than on simulated time, which makes them robust to cost-model
/// recalibration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Pages copied (for any reason).
    pub pages_copied: u64,
    /// Pages copied eagerly during fork (GOT, allocator metadata, full-copy
    /// strategy).
    pub pages_copied_eager: u64,
    /// Copy-on-write faults resolved.
    pub cow_faults: u64,
    /// Copy-on-access faults resolved.
    pub coa_faults: u64,
    /// Capability-load (CoPA) faults resolved.
    pub cap_load_faults: u64,
    /// User accesses that exhausted the transparent-fault retry budget
    /// without resolving (a kernel invariant breach; should stay 0).
    pub fault_retries_exhausted: u64,
    /// Fault resolutions that reclaimed the frame in place (refcount was
    /// already 1, so no copy was needed).
    pub pages_reclaimed: u64,
    /// Capabilities relocated into a child region.
    pub caps_relocated: u64,
    /// Granules scanned for tags (inspected individually).
    pub granules_scanned: u64,
    /// Granules the tag-summary fast path skipped without inspection
    /// (their tag bit was clear in a bulk tag read).
    pub granules_skipped: u64,
    /// Bulk tag-summary words loaded (`CLoadTags`-style, 64 granules
    /// per word).
    pub tag_words_loaded: u64,
    /// Source-region lookups performed while relocating capabilities.
    pub region_lookups: u64,
    /// PTEs copied or created.
    pub ptes_written: u64,
    /// System calls executed.
    pub syscalls: u64,
    /// Trap-based kernel entries (monolithic baseline).
    pub traps: u64,
    /// Sealed-capability kernel entries (μFork).
    pub sealed_entries: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// forks completed.
    pub forks: u64,
    /// execs completed.
    pub execs: u64,
    /// Isolation violations detected (and refused).
    pub isolation_violations: u64,
    /// Bytes copied for TOCTTOU protection.
    pub tocttou_bytes: u64,
    /// Fixed-size chunks processed by the parallel fork walk.
    pub fork_chunks: u64,
    /// Frame allocations satisfied by stealing from another shard's pool.
    pub alloc_steals: u64,
    /// Frame allocations satisfied from the recycled-frame pool.
    pub frames_recycled: u64,
    /// Recycled-frame allocations that skipped the zeroing scrub because
    /// the caller overwrites the whole frame (deferred-zeroing win).
    pub zeroing_skipped: u64,
    /// Forks admitted with a cheaper strategy than requested (admission
    /// control downgraded Full→CoA→CoPA under memory pressure).
    pub forks_degraded: u64,
    /// Fork transactions rolled back through the journal (failure or
    /// injected fault at some journal op).
    pub fork_rollbacks: u64,
    /// Side-effect operations recorded in fork journals.
    pub journal_ops: u64,
    /// Reclaim passes run inline on a hot path by the NoMem retry loop
    /// (recycled pools scrubbed / deferred-zero queues drained while a
    /// fork or fault waits).
    pub reclaim_inline: u64,
    /// Reclaim batches run by the background reclaim daemon (scheduled
    /// off the hot path, driven by the pressure watermarks).
    pub reclaim_background: u64,
    /// Frames the background daemon scrubbed into the clean-frame
    /// magazines.
    pub frames_prezeroed: u64,
    /// `Zeroed`-policy allocations served pre-scrubbed from a clean-frame
    /// magazine (no inline zeroing charged).
    pub magazine_hits: u64,
    /// μprocesses killed by the OOM last resort so a fork under memory
    /// exhaustion could be admitted.
    pub oom_kills: u64,
    /// Simulated nanoseconds spent in reclaim backoff between fork
    /// retries (whole ns; the f64 charge is truncated when accumulated).
    pub fork_backoff_ns: u64,
    /// Background-copy chunks resolved inline by a child fault jumping
    /// the pipelined fork's copy queue (demand priority).
    pub pipeline_chunks_jumped: u64,
    /// Cumulative bytes a pipelined fork committed with the copy still
    /// outstanding (deferred pages × page size, summed over forks).
    pub pipeline_bytes_behind: u64,
    /// Pages a dirty-scoped fork classified as dirty and routed through
    /// the full copy/CoW machinery (`CopyScope::DirtySince` only).
    pub pages_dirty_copied: u64,
    /// Pages a dirty-scoped fork shared as clean: refcount bump plus CoW
    /// protect, no frame allocation, no tag scan.
    pub pages_shared_clean: u64,
    /// Eagerly-copied pages satisfied from the cross-child frame-dedup
    /// index instead of a fresh private frame.
    pub frames_deduped: u64,
    /// Dedup index work: content hashes computed plus memcmp
    /// verifications of probe hits.
    pub dedup_hash_probes: u64,
    /// Messages pushed through shared-memory descriptor rings.
    pub ring_msgs: u64,
    /// Ring endpoint capabilities carried across a fork (sealed caps
    /// relocated by the register walk, registry ends duplicated).
    pub ring_caps_relocated: u64,
    /// Push attempts that found the ring full (producer stalled).
    pub ring_full_stalls: u64,
}

impl OpCounters {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = OpCounters::default();
    }

    /// Adds `other` into `self` field-wise (merging a step's counters into
    /// the machine totals).
    pub fn merge(&mut self, other: &OpCounters) {
        self.pages_copied += other.pages_copied;
        self.pages_copied_eager += other.pages_copied_eager;
        self.cow_faults += other.cow_faults;
        self.coa_faults += other.coa_faults;
        self.cap_load_faults += other.cap_load_faults;
        self.fault_retries_exhausted += other.fault_retries_exhausted;
        self.pages_reclaimed += other.pages_reclaimed;
        self.caps_relocated += other.caps_relocated;
        self.granules_scanned += other.granules_scanned;
        self.granules_skipped += other.granules_skipped;
        self.tag_words_loaded += other.tag_words_loaded;
        self.region_lookups += other.region_lookups;
        self.ptes_written += other.ptes_written;
        self.syscalls += other.syscalls;
        self.traps += other.traps;
        self.sealed_entries += other.sealed_entries;
        self.ctx_switches += other.ctx_switches;
        self.forks += other.forks;
        self.execs += other.execs;
        self.isolation_violations += other.isolation_violations;
        self.tocttou_bytes += other.tocttou_bytes;
        self.fork_chunks += other.fork_chunks;
        self.alloc_steals += other.alloc_steals;
        self.frames_recycled += other.frames_recycled;
        self.zeroing_skipped += other.zeroing_skipped;
        self.forks_degraded += other.forks_degraded;
        self.fork_rollbacks += other.fork_rollbacks;
        self.journal_ops += other.journal_ops;
        self.reclaim_inline += other.reclaim_inline;
        self.reclaim_background += other.reclaim_background;
        self.frames_prezeroed += other.frames_prezeroed;
        self.magazine_hits += other.magazine_hits;
        self.oom_kills += other.oom_kills;
        self.fork_backoff_ns += other.fork_backoff_ns;
        self.pipeline_chunks_jumped += other.pipeline_chunks_jumped;
        self.pipeline_bytes_behind += other.pipeline_bytes_behind;
        self.pages_dirty_copied += other.pages_dirty_copied;
        self.pages_shared_clean += other.pages_shared_clean;
        self.frames_deduped += other.frames_deduped;
        self.dedup_hash_probes += other.dedup_hash_probes;
        self.ring_msgs += other.ring_msgs;
        self.ring_caps_relocated += other.ring_caps_relocated;
        self.ring_full_stalls += other.ring_full_stalls;
    }

    /// Difference `self - earlier`, for measuring a window of activity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` exceeds `self` anywhere
    /// (counters are monotonic).
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            pages_copied: self.pages_copied - earlier.pages_copied,
            pages_copied_eager: self.pages_copied_eager - earlier.pages_copied_eager,
            cow_faults: self.cow_faults - earlier.cow_faults,
            coa_faults: self.coa_faults - earlier.coa_faults,
            cap_load_faults: self.cap_load_faults - earlier.cap_load_faults,
            fault_retries_exhausted: self.fault_retries_exhausted - earlier.fault_retries_exhausted,
            pages_reclaimed: self.pages_reclaimed - earlier.pages_reclaimed,
            caps_relocated: self.caps_relocated - earlier.caps_relocated,
            granules_scanned: self.granules_scanned - earlier.granules_scanned,
            granules_skipped: self.granules_skipped - earlier.granules_skipped,
            tag_words_loaded: self.tag_words_loaded - earlier.tag_words_loaded,
            region_lookups: self.region_lookups - earlier.region_lookups,
            ptes_written: self.ptes_written - earlier.ptes_written,
            syscalls: self.syscalls - earlier.syscalls,
            traps: self.traps - earlier.traps,
            sealed_entries: self.sealed_entries - earlier.sealed_entries,
            ctx_switches: self.ctx_switches - earlier.ctx_switches,
            forks: self.forks - earlier.forks,
            execs: self.execs - earlier.execs,
            isolation_violations: self.isolation_violations - earlier.isolation_violations,
            tocttou_bytes: self.tocttou_bytes - earlier.tocttou_bytes,
            fork_chunks: self.fork_chunks - earlier.fork_chunks,
            alloc_steals: self.alloc_steals - earlier.alloc_steals,
            frames_recycled: self.frames_recycled - earlier.frames_recycled,
            zeroing_skipped: self.zeroing_skipped - earlier.zeroing_skipped,
            forks_degraded: self.forks_degraded - earlier.forks_degraded,
            fork_rollbacks: self.fork_rollbacks - earlier.fork_rollbacks,
            journal_ops: self.journal_ops - earlier.journal_ops,
            reclaim_inline: self.reclaim_inline - earlier.reclaim_inline,
            reclaim_background: self.reclaim_background - earlier.reclaim_background,
            frames_prezeroed: self.frames_prezeroed - earlier.frames_prezeroed,
            magazine_hits: self.magazine_hits - earlier.magazine_hits,
            oom_kills: self.oom_kills - earlier.oom_kills,
            fork_backoff_ns: self.fork_backoff_ns - earlier.fork_backoff_ns,
            pipeline_chunks_jumped: self.pipeline_chunks_jumped - earlier.pipeline_chunks_jumped,
            pipeline_bytes_behind: self.pipeline_bytes_behind - earlier.pipeline_bytes_behind,
            pages_dirty_copied: self.pages_dirty_copied - earlier.pages_dirty_copied,
            pages_shared_clean: self.pages_shared_clean - earlier.pages_shared_clean,
            frames_deduped: self.frames_deduped - earlier.frames_deduped,
            dedup_hash_probes: self.dedup_hash_probes - earlier.dedup_hash_probes,
            ring_msgs: self.ring_msgs - earlier.ring_msgs,
            ring_caps_relocated: self.ring_caps_relocated - earlier.ring_caps_relocated,
            ring_full_stalls: self.ring_full_stalls - earlier.ring_full_stalls,
        }
    }
}

impl fmt::Display for OpCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pages copied: {} (eager {}, reclaimed {}), faults: cow {} / coa {} / capload {} \
             (retries exhausted {})",
            self.pages_copied,
            self.pages_copied_eager,
            self.pages_reclaimed,
            self.cow_faults,
            self.coa_faults,
            self.cap_load_faults,
            self.fault_retries_exhausted
        )?;
        writeln!(
            f,
            "caps relocated: {}, granules scanned: {} (skipped {}, tag words {}), \
             region lookups: {}, ptes written: {}",
            self.caps_relocated,
            self.granules_scanned,
            self.granules_skipped,
            self.tag_words_loaded,
            self.region_lookups,
            self.ptes_written
        )?;
        writeln!(
            f,
            "syscalls: {} (traps {}, sealed {}), ctx switches: {}, forks: {}, violations: {}",
            self.syscalls,
            self.traps,
            self.sealed_entries,
            self.ctx_switches,
            self.forks,
            self.isolation_violations
        )?;
        writeln!(
            f,
            "fork chunks: {}, alloc steals: {}, frames recycled: {} (zeroing skipped {})",
            self.fork_chunks, self.alloc_steals, self.frames_recycled, self.zeroing_skipped
        )?;
        writeln!(
            f,
            "journal ops: {}, rollbacks: {}, forks degraded: {}, reclaim passes: {} inline / \
             {} background, backoff: {} ns",
            self.journal_ops,
            self.fork_rollbacks,
            self.forks_degraded,
            self.reclaim_inline,
            self.reclaim_background,
            self.fork_backoff_ns
        )?;
        writeln!(
            f,
            "survival: frames prezeroed {}, magazine hits {}, oom kills {}",
            self.frames_prezeroed, self.magazine_hits, self.oom_kills
        )?;
        writeln!(
            f,
            "pipeline: chunks jumped {}, bytes behind {}",
            self.pipeline_chunks_jumped, self.pipeline_bytes_behind
        )?;
        writeln!(
            f,
            "dirty scope: dirty copied {}, shared clean {}; dedup: frames {}, probes {}",
            self.pages_dirty_copied,
            self.pages_shared_clean,
            self.frames_deduped,
            self.dedup_hash_probes
        )?;
        write!(
            f,
            "rings: msgs {}, caps relocated {}, full stalls {}",
            self.ring_msgs, self.ring_caps_relocated, self.ring_full_stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = OpCounters {
            pages_copied: 10,
            syscalls: 5,
            ..OpCounters::default()
        };
        let mut b = a;
        b.pages_copied = 25;
        b.syscalls = 9;
        b.forks = 1;
        let d = b.since(&a);
        assert_eq!(d.pages_copied, 15);
        assert_eq!(d.syscalls, 4);
        assert_eq!(d.forks, 1);
        assert_eq!(d.cow_faults, 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = OpCounters {
            traps: 3,
            ..OpCounters::default()
        };
        a.reset();
        assert_eq!(a, OpCounters::default());
    }

    #[test]
    fn fork_parallel_family_round_trips() {
        let a = OpCounters {
            fork_chunks: 4,
            alloc_steals: 1,
            frames_recycled: 7,
            zeroing_skipped: 6,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.fork_chunks, 8);
        assert_eq!(total.alloc_steals, 2);
        assert_eq!(total.frames_recycled, 14);
        assert_eq!(total.zeroing_skipped, 12);
        let d = total.since(&a);
        assert_eq!(d, a);
        let s = total.to_string();
        assert!(s.contains("fork chunks: 8"));
        assert!(s.contains("frames recycled: 14"));
    }

    #[test]
    fn fault_path_family_round_trips() {
        let a = OpCounters {
            pages_reclaimed: 3,
            fault_retries_exhausted: 1,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.pages_reclaimed, 6);
        assert_eq!(total.fault_retries_exhausted, 2);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("reclaimed 6"));
        assert!(s.contains("retries exhausted 2"));
    }

    #[test]
    fn journal_family_round_trips() {
        let a = OpCounters {
            forks_degraded: 2,
            fork_rollbacks: 3,
            journal_ops: 120,
            reclaim_inline: 4,
            reclaim_background: 9,
            fork_backoff_ns: 10_000,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.forks_degraded, 4);
        assert_eq!(total.fork_rollbacks, 6);
        assert_eq!(total.journal_ops, 240);
        assert_eq!(total.reclaim_inline, 8);
        assert_eq!(total.reclaim_background, 18);
        assert_eq!(total.fork_backoff_ns, 20_000);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("journal ops: 240"));
        assert!(s.contains("rollbacks: 6"));
        assert!(s.contains("forks degraded: 4"));
        assert!(s.contains("reclaim passes: 8 inline / 18 background"));
    }

    #[test]
    fn survival_family_round_trips() {
        let a = OpCounters {
            frames_prezeroed: 40,
            magazine_hits: 33,
            oom_kills: 2,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.frames_prezeroed, 80);
        assert_eq!(total.magazine_hits, 66);
        assert_eq!(total.oom_kills, 4);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("frames prezeroed 80"));
        assert!(s.contains("magazine hits 66"));
        assert!(s.contains("oom kills 4"));
    }

    #[test]
    fn pipeline_family_round_trips() {
        let a = OpCounters {
            pipeline_chunks_jumped: 3,
            pipeline_bytes_behind: 1 << 20,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.pipeline_chunks_jumped, 6);
        assert_eq!(total.pipeline_bytes_behind, 2 << 20);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("chunks jumped 6"));
        assert!(s.contains("bytes behind 2097152"));
    }

    #[test]
    fn dirty_scope_family_round_trips() {
        let a = OpCounters {
            pages_dirty_copied: 12,
            pages_shared_clean: 228,
            frames_deduped: 5,
            dedup_hash_probes: 17,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.pages_dirty_copied, 24);
        assert_eq!(total.pages_shared_clean, 456);
        assert_eq!(total.frames_deduped, 10);
        assert_eq!(total.dedup_hash_probes, 34);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("dirty copied 24"));
        assert!(s.contains("shared clean 456"));
        assert!(s.contains("dedup: frames 10"));
        assert!(s.contains("probes 34"));
    }

    #[test]
    fn ring_family_round_trips() {
        let a = OpCounters {
            ring_msgs: 1000,
            ring_caps_relocated: 12,
            ring_full_stalls: 3,
            ..OpCounters::default()
        };
        let mut total = OpCounters::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.ring_msgs, 2000);
        assert_eq!(total.ring_caps_relocated, 24);
        assert_eq!(total.ring_full_stalls, 6);
        assert_eq!(total.since(&a), a);
        let s = total.to_string();
        assert!(s.contains("rings: msgs 2000"));
        assert!(s.contains("caps relocated 24"));
        assert!(s.contains("full stalls 6"));
    }

    #[test]
    fn display_mentions_key_fields() {
        let a = OpCounters {
            caps_relocated: 42,
            ..OpCounters::default()
        };
        let s = a.to_string();
        assert!(s.contains("caps relocated: 42"));
    }
}
