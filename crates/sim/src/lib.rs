//! Simulated time and the calibrated hardware cost model.
//!
//! The μFork paper's numbers come from real ARM Morello hardware, which we
//! do not have. The reproduction therefore runs every experiment in
//! *simulated time*: each primitive operation both systems perform (page
//! copy, PTE update, trap, sealed-capability domain switch, …) is charged
//! a cost from a single [`CostModel`].
//!
//! Calibration policy (see `DESIGN.md` §2): a handful of constants are
//! anchored against the paper's published micro-measurements (hello-world
//! fork 54 μs on μFork / 197 μs on CheriBSD / 10.7 ms on Nephele;
//! Unixbench Context1 245 / 419 ms). Everything else — scaling with
//! database size, the CoPA/CoA/full-copy gaps, memory curves, crossover
//! points — must *emerge from the simulated work actually performed*, not
//! from per-figure constants.
//!
//! [`OpCounters`] records how much of each primitive actually ran, so
//! tests and the benchmark harness can assert on mechanism (e.g. "CoPA
//! copied only pointer-bearing pages") rather than only on time.

mod clock;
mod cost;
mod counters;
mod lanes;
mod trace;

pub use clock::{Clock, Ns};
pub use cost::CostModel;
pub use counters::OpCounters;
pub use lanes::LaneClocks;
pub use trace::{
    chrome_trace_json, summary_table, EventKind, InstantTotal, PhaseTotal, TraceBuf, TraceEvent,
    TraceRun, DEFAULT_TRACE_CAPACITY, TRACE_SCHEMA, UNATTRIBUTED,
};
