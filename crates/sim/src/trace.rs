//! Structured tracing keyed to simulated nanoseconds.
//!
//! The paper's evaluation (§6) attributes fork latency to individual
//! phases using Morello PMU counters. The reproduction has no PMU, but it
//! has something better: every nanosecond of simulated time enters the
//! clock through an explicit charge. [`TraceBuf`] taps that stream —
//! each charge is attributed to the currently open *phase span*, so
//! per-phase totals are built from **the same `f64` additions, in the
//! same order**, as the kernel clock itself. `charged_total()` over a
//! fresh context is therefore *bitwise* equal to the context's
//! `kernel_ns`, and per-phase sums tile end-to-end time exactly up to
//! floating-point re-association (validated at ~1e-9 relative by the CI
//! trace-smoke job).
//!
//! Determinism contract: events carry simulated timestamps (and lane ids
//! under the parallel walk) that are pure functions of the inputs — same
//! seed + same worker count ⇒ byte-identical Chrome-trace export.
//!
//! Zero overhead when disabled: every entry point is a single branch on
//! [`TraceBuf::is_enabled`]; the disabled buffer owns no allocations.

/// Schema identifier stamped into the Chrome-trace export.
pub const TRACE_SCHEMA: &str = "ufork-trace-fork/v1";

/// Default event-ring capacity used by [`TraceBuf::enabled`] callers that
/// have no better idea. Aggregated phase/instant totals never drop, so
/// the ring only bounds the *timeline* detail.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A contiguous span of main-timeline kernel work (`ph:"X"`, tid 0).
    Phase,
    /// A span of per-chunk work on a parallel lane (`ph:"X"`, tid lane+1).
    Lane,
    /// A zero-duration marker (`ph:"i"`).
    Instant,
}

/// One recorded event. Timestamps are simulated nanoseconds on the
/// charging context's kernel timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Static event name, e.g. `"fork/walk/copy"`.
    pub name: &'static str,
    /// Span/lane/instant discriminator.
    pub kind: EventKind,
    /// Lane id for [`EventKind::Lane`] events; 0 otherwise.
    pub lane: u32,
    /// Simulated start time (ns).
    pub start_ns: f64,
    /// Simulated duration (ns); 0 for instants.
    pub dur_ns: f64,
}

/// Aggregated totals for one phase name. Never dropped, regardless of
/// ring capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTotal {
    /// Phase name.
    pub name: &'static str,
    /// Sum of simulated ns charged while this phase was open, accumulated
    /// span-by-span in close order.
    pub total_ns: f64,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Longest single span (ns).
    pub max_ns: f64,
}

/// Aggregated count for one instant name. Never dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantTotal {
    /// Instant name.
    pub name: &'static str,
    /// Times it fired.
    pub count: u64,
}

#[derive(Clone, Debug)]
struct OpenPhase {
    name: &'static str,
    start_ns: f64,
    /// Charges accumulated while this span is open, in charge order.
    acc: f64,
}

/// Bucket for charges arriving with no phase open. Kept as a phase so
/// that the sum over all phase totals still tiles end-to-end time.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Bounded ring of trace events plus drop-free aggregation, fed by the
/// accounting context's charge stream.
#[derive(Clone, Debug, Default)]
pub struct TraceBuf {
    enabled: bool,
    cap: usize,
    /// Ring storage; once `events.len() == cap`, `head` marks the oldest
    /// slot and new events overwrite it.
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    phases: Vec<PhaseTotal>,
    instants: Vec<InstantTotal>,
    open: Option<OpenPhase>,
    charged_total: f64,
}

impl TraceBuf {
    /// A disabled buffer: no allocations, every call a single branch.
    pub fn disabled() -> TraceBuf {
        TraceBuf::default()
    }

    /// An enabled buffer with an event ring of `cap` slots (clamped to at
    /// least 1). Aggregated totals are unbounded either way.
    pub fn enabled(cap: usize) -> TraceBuf {
        TraceBuf {
            enabled: true,
            cap: cap.max(1),
            ..TraceBuf::default()
        }
    }

    /// Whether the buffer records anything. All other entry points are
    /// no-ops when this is false.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Feeds one kernel charge into the attribution stream. Called by the
    /// context on every `kernel()` while enabled; the addition order here
    /// mirrors the kernel clock exactly, which is what makes
    /// [`TraceBuf::charged_total`] bitwise-comparable to `kernel_ns`.
    #[inline]
    pub fn on_charge(&mut self, ns: f64) {
        if !self.enabled || ns.is_nan() || ns < 0.0 {
            return;
        }
        self.charged_total += ns;
        match &mut self.open {
            Some(open) => open.acc += ns,
            None => self.fold_phase(UNATTRIBUTED, ns),
        }
    }

    /// Opens a phase span at simulated time `now_ns`, closing any span
    /// already open (phases tile; they never nest).
    pub fn phase(&mut self, name: &'static str, now_ns: f64) {
        if !self.enabled {
            return;
        }
        self.close_open(now_ns);
        self.open = Some(OpenPhase {
            name,
            start_ns: now_ns,
            acc: 0.0,
        });
    }

    /// Closes the open phase span, if any, at simulated time `now_ns`.
    pub fn phase_end(&mut self, now_ns: f64) {
        if !self.enabled {
            return;
        }
        self.close_open(now_ns);
    }

    fn close_open(&mut self, _now_ns: f64) {
        if let Some(open) = self.open.take() {
            self.push(TraceEvent {
                name: open.name,
                kind: EventKind::Phase,
                lane: 0,
                start_ns: open.start_ns,
                dur_ns: open.acc,
            });
            let acc = open.acc;
            self.fold_phase(open.name, acc);
        }
    }

    fn fold_phase(&mut self, name: &'static str, span_ns: f64) {
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.total_ns += span_ns;
                p.count += 1;
                p.max_ns = p.max_ns.max(span_ns);
            }
            None => self.phases.push(PhaseTotal {
                name,
                total_ns: span_ns,
                count: 1,
                max_ns: span_ns,
            }),
        }
    }

    /// Records a zero-duration marker at simulated time `now_ns`.
    pub fn instant(&mut self, name: &'static str, now_ns: f64) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            name,
            kind: EventKind::Instant,
            lane: 0,
            start_ns: now_ns,
            dur_ns: 0.0,
        });
        match self.instants.iter_mut().find(|i| i.name == name) {
            Some(i) => i.count += 1,
            None => self.instants.push(InstantTotal { name, count: 1 }),
        }
    }

    /// Records a span of per-chunk work on a parallel lane. Lane spans
    /// are *not* folded into phase totals — the merged elapsed time of
    /// the parallel section is charged to the main timeline (and thus to
    /// the open phase) by the caller via `LaneClocks::elapsed`.
    pub fn lane_span(&mut self, name: &'static str, lane: u32, start_ns: f64, dur_ns: f64) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            name,
            kind: EventKind::Lane,
            lane,
            start_ns,
            dur_ns,
        });
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Recorded events, oldest first. When the ring wrapped, the oldest
    /// `dropped()` events are gone.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Number of events overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-phase totals, in first-seen order. Includes [`UNATTRIBUTED`]
    /// if any charge arrived with no phase open.
    pub fn phases(&self) -> &[PhaseTotal] {
        &self.phases
    }

    /// Per-instant counts, in first-seen order.
    pub fn instants(&self) -> &[InstantTotal] {
        &self.instants
    }

    /// Count for one instant name (0 if never fired).
    pub fn instant_count(&self, name: &str) -> u64 {
        self.instants
            .iter()
            .find(|i| i.name == name)
            .map_or(0, |i| i.count)
    }

    /// Sum of every kernel charge seen while enabled, in charge order.
    /// Over a fresh context this is bitwise equal to `kernel_ns`.
    pub fn charged_total(&self) -> f64 {
        self.charged_total
    }

    /// Sum of the per-phase totals (the re-associated grouping of
    /// [`TraceBuf::charged_total`]; equal up to f64 re-association).
    pub fn phase_sum(&self) -> f64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }
}

/// One traced run for export: a named timeline (Chrome `pid`) plus its
/// independently measured end-to-end simulated time.
pub struct TraceRun<'a> {
    /// Human label, e.g. `"serial"` or `"par8"`.
    pub name: &'a str,
    /// Chrome trace `pid` this run's events land under.
    pub pid: u32,
    /// The recorded buffer.
    pub buf: &'a TraceBuf,
    /// End-to-end simulated kernel ns of the traced operation, measured
    /// by the caller on the same fresh context that fed `buf`.
    pub end_to_end_ns: f64,
}

fn escape(s: &str) -> String {
    // Event names are static identifiers; escape defensively anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats an `f64` for JSON deterministically (Rust's `Display` for
/// finite doubles is the shortest round-trippable form — stable across
/// runs and platforms).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders one or more traced runs as Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto `displayTimeUnit` format). `ts`/`dur`
/// are microseconds per the format; full-precision nanosecond values ride
/// along in each event's `args` and in the machine-readable `runs`
/// section (schema [`TRACE_SCHEMA`]).
pub fn chrome_trace_json(runs: &[TraceRun]) -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\n  \"traceEvents\": [\n");
    let mut first = true;
    for run in runs {
        for ev in run.buf.events() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let tid = match ev.kind {
                EventKind::Lane => ev.lane + 1,
                _ => 0,
            };
            let ph = match ev.kind {
                EventKind::Instant => "i",
                _ => "X",
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}, ",
                escape(ev.name),
                ph,
                jnum(ev.start_ns / 1e3),
            ));
            if ev.kind == EventKind::Instant {
                out.push_str("\"s\": \"t\", ");
            } else {
                out.push_str(&format!("\"dur\": {}, ", jnum(ev.dur_ns / 1e3)));
            }
            out.push_str(&format!(
                "\"pid\": {}, \"tid\": {}, \"args\": {{\"start_ns\": {}, \"dur_ns\": {}}}}}",
                run.pid,
                tid,
                jnum(ev.start_ns),
                jnum(ev.dur_ns),
            ));
        }
    }
    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ns\",\n");
    out.push_str(&format!("  \"schema\": \"{TRACE_SCHEMA}\",\n"));
    out.push_str("  \"runs\": [\n");
    for (ri, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"pid\": {}, \"end_to_end_ns\": {}, \"charged_total_ns\": {}, \"dropped_events\": {},\n      \"phases\": [\n",
            escape(run.name),
            run.pid,
            jnum(run.end_to_end_ns),
            jnum(run.buf.charged_total()),
            run.buf.dropped(),
        ));
        for (pi, p) in run.buf.phases().iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"total_ns\": {}, \"count\": {}, \"max_ns\": {}}}{}\n",
                escape(p.name),
                jnum(p.total_ns),
                p.count,
                jnum(p.max_ns),
                if pi + 1 < run.buf.phases().len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("      ],\n      \"instants\": [\n");
        for (ii, i) in run.buf.instants().iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"count\": {}}}{}\n",
                escape(i.name),
                i.count,
                if ii + 1 < run.buf.instants().len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str(&format!(
            "      ]}}{}\n",
            if ri + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a per-phase histogram summary table (name, spans, total µs,
/// max ns, share of charged time) for one buffer.
pub fn summary_table(buf: &TraceBuf) -> String {
    let total = buf.charged_total();
    let mut rows: Vec<&PhaseTotal> = buf.phases().iter().collect();
    rows.sort_by(|a, b| {
        b.total_ns
            .partial_cmp(&a.total_ns)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:>14} {:>12} {:>7}\n",
        "phase", "spans", "total (µs)", "max (ns)", "share"
    ));
    for p in rows {
        let share = if total > 0.0 {
            100.0 * p.total_ns / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<22} {:>8} {:>14.3} {:>12.1} {:>6.1}%\n",
            p.name,
            p.count,
            p.total_ns / 1e3,
            p.max_ns,
            share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing_and_owns_nothing() {
        let mut t = TraceBuf::disabled();
        assert!(!t.is_enabled());
        t.on_charge(10.0);
        t.phase("a", 0.0);
        t.instant("i", 1.0);
        t.lane_span("l", 0, 0.0, 5.0);
        t.phase_end(2.0);
        assert_eq!(t.events().count(), 0);
        assert!(t.phases().is_empty());
        assert!(t.instants().is_empty());
        assert_eq!(t.charged_total(), 0.0);
        assert_eq!(t.events.capacity(), 0, "disabled buffer must not allocate");
    }

    #[test]
    fn charges_attribute_to_the_open_phase_in_order() {
        let mut t = TraceBuf::enabled(64);
        t.phase("a", 0.0);
        t.on_charge(1.5);
        t.on_charge(2.5);
        t.phase("b", 4.0);
        t.on_charge(10.0);
        t.phase_end(14.0);
        let a = &t.phases()[0];
        let b = &t.phases()[1];
        assert_eq!((a.name, a.total_ns, a.count), ("a", 4.0, 1));
        assert_eq!((b.name, b.total_ns, b.count), ("b", 10.0, 1));
        assert_eq!(t.charged_total(), 14.0);
        assert_eq!(t.phase_sum(), 14.0);
        let evs: Vec<_> = t.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[0].dur_ns, 4.0);
        assert_eq!(evs[1].start_ns, 4.0);
    }

    #[test]
    fn charge_with_no_open_phase_lands_in_unattributed() {
        let mut t = TraceBuf::enabled(8);
        t.on_charge(3.0);
        t.phase("p", 3.0);
        t.on_charge(1.0);
        t.phase_end(4.0);
        assert_eq!(t.phases()[0].name, UNATTRIBUTED);
        assert_eq!(t.phases()[0].total_ns, 3.0);
        assert_eq!(t.phase_sum(), t.charged_total());
    }

    #[test]
    fn repeated_spans_aggregate_with_count_and_max() {
        let mut t = TraceBuf::enabled(64);
        for ns in [5.0, 9.0, 2.0] {
            t.phase("walk", 0.0);
            t.on_charge(ns);
        }
        t.phase_end(0.0);
        let p = &t.phases()[0];
        assert_eq!(p.count, 3);
        assert_eq!(p.total_ns, 16.0);
        assert_eq!(p.max_ns, 9.0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = TraceBuf::enabled(3);
        for i in 0..5 {
            t.instant(if i % 2 == 0 { "even" } else { "odd" }, i as f64);
        }
        assert_eq!(t.dropped(), 2);
        let starts: Vec<f64> = t.events().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![2.0, 3.0, 4.0]);
        // Aggregation is drop-free.
        assert_eq!(t.instant_count("even"), 3);
        assert_eq!(t.instant_count("odd"), 2);
    }

    #[test]
    fn lane_spans_do_not_touch_phase_totals() {
        let mut t = TraceBuf::enabled(8);
        t.phase("par", 0.0);
        t.lane_span("chunk", 2, 0.0, 100.0);
        t.on_charge(40.0); // the merged elapsed time
        t.phase_end(40.0);
        assert_eq!(t.phases()[0].total_ns, 40.0);
        let lane = t.events().find(|e| e.kind == EventKind::Lane).unwrap();
        assert_eq!((lane.lane, lane.dur_ns), (2, 100.0));
    }

    #[test]
    fn chrome_export_is_deterministic_and_shaped() {
        let mk = || {
            let mut t = TraceBuf::enabled(16);
            t.phase("fork/fixed", 0.0);
            t.on_charge(50_000.0);
            t.instant("alloc/recycle", 50_000.0);
            t.lane_span("fork/chunk", 1, 50_000.0, 432.7);
            t.phase_end(50_000.0);
            t
        };
        let (a, b) = (mk(), mk());
        let ja = chrome_trace_json(&[TraceRun {
            name: "serial",
            pid: 0,
            buf: &a,
            end_to_end_ns: 50_000.0,
        }]);
        let jb = chrome_trace_json(&[TraceRun {
            name: "serial",
            pid: 0,
            buf: &b,
            end_to_end_ns: 50_000.0,
        }]);
        assert_eq!(ja, jb, "same inputs must export byte-identically");
        assert!(ja.contains("\"traceEvents\""));
        assert!(ja.contains(TRACE_SCHEMA));
        assert!(ja.contains("\"ph\": \"i\""));
        assert!(ja.contains("\"tid\": 2"), "lane 1 renders as tid 2");
        assert!(ja.contains("\"end_to_end_ns\": 50000"));
    }

    #[test]
    fn summary_table_orders_by_total() {
        let mut t = TraceBuf::enabled(8);
        t.phase("small", 0.0);
        t.on_charge(1.0);
        t.phase("big", 1.0);
        t.on_charge(99.0);
        t.phase_end(100.0);
        let s = summary_table(&t);
        let big = s.find("big").unwrap();
        let small = s.find("small").unwrap();
        assert!(big < small, "largest phase first:\n{s}");
    }

    #[test]
    fn nan_and_negative_charges_ignored() {
        let mut t = TraceBuf::enabled(4);
        t.phase("p", 0.0);
        t.on_charge(f64::NAN);
        t.on_charge(-5.0);
        t.on_charge(7.0);
        t.phase_end(7.0);
        assert_eq!(t.charged_total(), 7.0);
        assert_eq!(t.phases()[0].total_ns, 7.0);
    }
}
