//! Baseline operating systems for the μFork evaluation.
//!
//! The paper compares μFork against two systems on the same hardware:
//!
//! * **CheriBSD** ([`MonoOs`]) — a mature, capability-aware *monolithic*
//!   kernel: one page table per process, classic CoW `fork` with no
//!   relocation (the child reuses the parent's virtual addresses),
//!   trap-based system calls, TLB flushes on cross-address-space context
//!   switches, and mandatory copyin/copyout on I/O.
//! * **Nephele** ([`NepheleOs`]) — the "OS as a process" approach: each
//!   process is a whole unikernel VM, and `fork` asks the hypervisor to
//!   clone the entire guest (a new Xen domain, event channels, grant
//!   tables, and the full guest image). System calls inside the unikernel
//!   are cheap; creating and switching processes is not.
//!
//! Both are built on the same multi-address-space core ([`MultiAsOs`]),
//! instantiated with different profiles — they genuinely differ from
//! μFork where the paper says they do (address-space model, fork
//! mechanism, kernel-entry cost), and nowhere else, keeping the
//! comparison controlled.

mod multias;

pub use multias::{MultiAsOs, MultiAsProfile, SyscallStyle};

use ufork_abi::IsolationLevel;
use ufork_sim::CostModel;

/// Configuration shared by both baselines.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Physical memory in MiB.
    pub phys_mib: u32,
    /// Isolation level (affects syscall validation / TOCTTOU charging to
    /// keep parity with μFork's configuration surface).
    pub isolation: IsolationLevel,
    /// Hardware cost model.
    pub cost: CostModel,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            phys_mib: 1024,
            isolation: IsolationLevel::Fault,
            cost: CostModel::morello(),
        }
    }
}

/// A CheriBSD-like monolithic kernel.
pub type MonoOs = MultiAsOs;

/// A Nephele-like VM-cloning unikernel host.
pub type NepheleOs = MultiAsOs;

/// Builds the CheriBSD-like baseline.
pub fn mono(cfg: BaselineConfig) -> MonoOs {
    let cost = cfg.cost.clone();
    MultiAsOs::new(
        MultiAsProfile {
            name: "cheribsd",
            // Shared libraries, dynamic linker, jemalloc arenas mapped
            // into every process (calibrated so a forked hello-world
            // child shows ~0.29 MB proportional RSS, Figure 8).
            extra_image_bytes: 320 * 1024,
            fork_fixed: cost.fork_fixed_mono,
            fork_extra: 0.0,
            pte_cow: cost.pte_cow_mono,
            per_page_extra: 0.0,
            syscall: SyscallStyle::Trap,
            ctx_switch_extra: cost.asid_switch,
            check_caps: true, // CheriBSD runs pure-capability binaries
            copyio: true,
            big_lock: false, // fine-grained SMP kernel
        },
        cfg,
    )
}

/// Builds the Nephele-like VM-cloning baseline.
pub fn nephele(cfg: BaselineConfig) -> NepheleOs {
    let cost = cfg.cost.clone();
    MultiAsOs::new(
        MultiAsProfile {
            name: "nephele",
            // The whole guest OS image is part of every "process"
            // (calibrated to the paper's 1.6 MB per hello-world child).
            extra_image_bytes: 3 * 1024 * 1024,
            fork_fixed: 220_000.0, // guest-side duplication bookkeeping
            fork_extra: cost.nephele_domain_create,
            pte_cow: cost.pte_cow_mono,
            per_page_extra: cost.nephele_per_page,
            syscall: SyscallStyle::Direct, // unikernel: function calls
            ctx_switch_extra: 2.0 * cost.tlb_flush, // VM switch
            check_caps: false,             // x86-64, no CHERI
            copyio: false,
            big_lock: true,
        },
        cfg,
    )
}
