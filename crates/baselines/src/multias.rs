//! The shared multi-address-space kernel core behind both baselines.

use std::collections::BTreeMap;

use ufork::talloc::{TAlloc, UserMem};
use ufork::{ProcLayout, Segment};
use ufork_abi::{Errno, ImageSpec, IsolationLevel, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::{Ctx, MemOs};
use ufork_mem::{MemStats, Pfn, PhysMem, GRANULE_SIZE, PAGE_SIZE};
use ufork_sim::CostModel;
use ufork_vmem::{AccessKind, Fault, PageTable, PteFlags, VirtAddr, Vpn};

use crate::BaselineConfig;

/// How the kernel is entered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallStyle {
    /// Exception-based entry (monolithic kernels).
    Trap,
    /// Direct function call (unikernels).
    Direct,
}

/// Static profile distinguishing the baselines.
#[derive(Clone, Debug)]
pub struct MultiAsProfile {
    /// Diagnostic name.
    pub name: &'static str,
    /// Extra bytes mapped into every process (shared libraries for
    /// CheriBSD; the guest OS image for Nephele).
    pub extra_image_bytes: u64,
    /// Fixed fork path length.
    pub fork_fixed: f64,
    /// Additional fixed fork cost (hypervisor domain creation).
    pub fork_extra: f64,
    /// Per-PTE CoW setup cost.
    pub pte_cow: f64,
    /// Additional per-page fork cost (hypervisor grant plumbing).
    pub per_page_extra: f64,
    /// Kernel-entry style.
    pub syscall: SyscallStyle,
    /// Context-switch cost on top of the base thread switch (TLB flush,
    /// VM switch).
    pub ctx_switch_extra: f64,
    /// Whether memory accesses check CHERI capabilities.
    pub check_caps: bool,
    /// Whether I/O pays copyin/copyout.
    pub copyio: bool,
    /// Whether kernel execution serializes on a big lock.
    pub big_lock: bool,
}

/// Every process sees the same virtual layout starting here — the whole
/// point of multi-address-space fork is that the child's addresses are
/// identical to the parent's, so nothing needs relocating.
const PROC_BASE: u64 = 0x0000_0040_0000;

struct MProc {
    layout: ProcLayout,
    pt: PageTable,
    root: Capability,
    regs: Vec<Option<Capability>>,
    shm_next: u64,
    mmap_next: u64,
}

/// A multi-address-space OS: one page table per process, CoW fork.
pub struct MultiAsOs {
    profile: MultiAsProfile,
    cost: CostModel,
    isolation: IsolationLevel,
    pm: PhysMem,
    procs: BTreeMap<Pid, MProc>,
    shm_objs: BTreeMap<String, Vec<Pfn>>,
}

impl MultiAsOs {
    /// Boots the baseline kernel.
    pub fn new(profile: MultiAsProfile, cfg: BaselineConfig) -> MultiAsOs {
        MultiAsOs {
            profile,
            cost: cfg.cost,
            isolation: cfg.isolation,
            pm: PhysMem::with_mib(cfg.phys_mib),
            procs: BTreeMap::new(),
            shm_objs: BTreeMap::new(),
        }
    }

    /// The baseline's profile.
    pub fn profile(&self) -> &MultiAsProfile {
        &self.profile
    }

    fn proc(&self, pid: Pid) -> SysResult<&MProc> {
        self.procs.get(&pid).ok_or(Errno::Inval)
    }

    fn seg_flags(seg: Segment) -> PteFlags {
        match seg {
            Segment::Text => PteFlags::rx(),
            Segment::Got => PteFlags::ro(),
            _ => PteFlags::rw(),
        }
    }

    fn check_cap(
        &self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        addr: u64,
        len: u64,
        perms: Perms,
    ) -> SysResult<()> {
        if !self.profile.check_caps || !self.isolation.checks_memory() {
            return Ok(());
        }
        let p = self.proc(pid)?;
        // Within its own address space a process may only use
        // capabilities over its mapped span (CheriBSD enforces this via
        // per-process root capabilities).
        if !cap.confined_to(PROC_BASE, p.layout.region_len()) {
            ctx.counters.isolation_violations += 1;
            return Err(Errno::Fault);
        }
        cap.check_access(addr, len, perms).map_err(|_| {
            // A bounds/permission refusal by the capability hardware is
            // the isolation mechanism firing.
            ctx.counters.isolation_violations += 1;
            Errno::Fault
        })
    }

    fn translate(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> SysResult<ufork_vmem::Pte> {
        for _ in 0..3 {
            let res = {
                let p = self.proc(pid)?;
                p.pt.translate(va, kind, false)
            };
            match res {
                Ok(pte) => return Ok(pte),
                Err(Fault::Cow { .. }) => self.resolve_cow(ctx, pid, va)?,
                Err(_) => return Err(Errno::Fault),
            }
        }
        Err(Errno::Fault)
    }

    /// Classic CoW resolution: copy (or reclaim) the frame; the virtual
    /// address stays the same, so there is nothing to relocate.
    fn resolve_cow(&mut self, ctx: &mut Ctx, pid: Pid, va: VirtAddr) -> SysResult<()> {
        ctx.counters.cow_faults += 1;
        ctx.kernel(self.cost.fault_entry);
        let vpn = va.vpn();
        let (pfn, flags) = {
            let p = self.proc(pid)?;
            let pte = p.pt.lookup(vpn).ok_or(Errno::Fault)?;
            let off = vpn.base().0 - PROC_BASE;
            (pte.pfn, Self::seg_flags(p.layout.segment_of(off)))
        };
        let rc = self.pm.refcount(pfn).map_err(|_| Errno::Fault)?;
        let new = if rc > 1 {
            let new = self.pm.alloc_frame().map_err(|_| Errno::NoMem)?;
            self.pm.copy_frame(pfn, new).map_err(|_| Errno::Fault)?;
            self.pm.dec_ref(pfn).map_err(|_| Errno::Fault)?;
            ctx.kernel(self.cost.page_alloc + self.cost.page_copy);
            ctx.counters.pages_copied += 1;
            new
        } else {
            pfn
        };
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        p.pt.map(vpn, new, flags);
        ctx.kernel(self.cost.pte_write);
        ctx.counters.ptes_written += 1;
        Ok(())
    }

    fn talloc_of(&self, pid: Pid) -> SysResult<TAlloc> {
        let p = self.proc(pid)?;
        Ok(TAlloc {
            meta_base: PROC_BASE + p.layout.heap_meta.0,
            max_blocks: p.layout.max_blocks(),
            arena_base: PROC_BASE + p.layout.heap_arena.0,
            arena_len: p.layout.heap_arena.1,
        })
    }
}

impl MemOs for MultiAsOs {
    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn spawn(&mut self, ctx: &mut Ctx, pid: Pid, image: &ImageSpec) -> SysResult<()> {
        // Inflate the image with the per-process overhead (shared libs /
        // guest OS image).
        let mut image = image.clone();
        image.text_bytes += self.profile.extra_image_bytes;
        let layout = ProcLayout::for_image(&image);
        let mut pt = PageTable::new();
        let segs = [
            (layout.text, Segment::Text),
            (layout.got, Segment::Got),
            (layout.data, Segment::Data),
            (layout.stack, Segment::Stack),
            (layout.heap_meta, Segment::HeapMeta),
            (layout.heap_arena, Segment::HeapArena),
        ];
        for ((off, len), seg) in segs {
            for vpn in ufork_vmem::pages_covering(VirtAddr(PROC_BASE + off), len) {
                let pfn = self.pm.alloc_frame().map_err(|_| Errno::NoMem)?;
                pt.map(vpn, pfn, Self::seg_flags(seg));
                ctx.kernel(self.cost.page_alloc + self.cost.pte_write);
                ctx.counters.ptes_written += 1;
            }
        }
        let root = Capability::new_root(PROC_BASE, layout.region_len(), Perms::data());
        // GOT entries: capabilities to globals (same VAs in every AS).
        let got_base = PROC_BASE + layout.got.0;
        for slot in 0..layout.got_slots {
            let target_off = layout.data.0 + (slot * 128) % layout.data.1;
            let target = root
                .with_bounds(PROC_BASE + target_off, 64)
                .map_err(|_| Errno::Fault)?;
            let va = VirtAddr(got_base + slot * GRANULE_SIZE);
            let pte = pt.lookup(va.vpn()).ok_or(Errno::Fault)?;
            self.pm
                .store_cap(pte.pfn, va.page_offset(), &target)
                .map_err(|_| Errno::Fault)?;
        }
        let mut regs = vec![None; 32];
        regs[0] = Some(root);
        regs[1] = Some(
            root.with_bounds(PROC_BASE + layout.stack.0, layout.stack.1)
                .map_err(|_| Errno::Fault)?,
        );
        regs[2] = Some(Capability::new_root(
            PROC_BASE,
            layout.text.1,
            Perms::code(),
        ));
        self.procs.insert(
            pid,
            MProc {
                layout,
                pt,
                root,
                regs,
                shm_next: 0,
                mmap_next: 0,
            },
        );
        let ta = self.talloc_of(pid)?;
        let mut um = BUserMem { os: self, ctx, pid };
        ta.init(&mut um)?;
        Ok(())
    }

    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        ctx.kernel(self.profile.fork_fixed + self.profile.fork_extra);
        let (layout, regs, shm_next, mmap_next, entries) = {
            let p = self.proc(parent)?;
            let entries: Vec<(Vpn, ufork_vmem::Pte)> = p.pt.iter().collect();
            (
                p.layout.clone(),
                p.regs.clone(),
                p.shm_next,
                p.mmap_next,
                entries,
            )
        };
        let mut cpt = PageTable::new();
        for (vpn, pte) in &entries {
            self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
            let off = vpn.base().0 - PROC_BASE;
            let seg = layout.segment_of(off);
            let writable = Self::seg_flags(seg).contains(PteFlags::WRITE);
            let is_shm = seg == Segment::Shm;
            if writable && !is_shm {
                // CoW both sides: no relocation, same virtual addresses.
                cpt.map(*vpn, pte.pfn, pte.flags.with(PteFlags::COW));
                if let Some(ppte) = self.procs.get_mut(&parent).unwrap().pt.lookup_mut(*vpn) {
                    ppte.flags = ppte.flags.with(PteFlags::COW);
                }
            } else {
                cpt.map(*vpn, pte.pfn, pte.flags);
            }
            ctx.kernel(self.profile.pte_cow + self.profile.per_page_extra);
            ctx.counters.ptes_written += 1;
        }
        self.procs.insert(
            child,
            MProc {
                layout,
                pt: cpt,
                root: self.proc(parent)?.root,
                regs,
                shm_next,
                mmap_next,
            },
        );
        Ok(())
    }

    fn destroy(&mut self, ctx: &mut Ctx, pid: Pid) {
        let Some(p) = self.procs.remove(&pid) else {
            return;
        };
        for (_, pte) in p.pt.iter() {
            let _ = self.pm.dec_ref(pte.pfn);
            ctx.kernel(self.cost.pte_write * 0.5);
        }
    }

    fn load(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        self.check_cap(ctx, pid, cap, cap.addr(), buf.len() as u64, Perms::LOAD)?;
        let mut done = 0usize;
        while done < buf.len() {
            let va = VirtAddr(cap.addr() + done as u64);
            let in_page = ((PAGE_SIZE - va.page_offset()) as usize).min(buf.len() - done);
            let pte = self.translate(ctx, pid, va, AccessKind::Load)?;
            self.pm
                .read(pte.pfn, va.page_offset(), &mut buf[done..done + in_page])
                .map_err(|_| Errno::Fault)?;
            done += in_page;
        }
        Ok(())
    }

    fn store(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()> {
        self.check_cap(ctx, pid, cap, cap.addr(), data.len() as u64, Perms::STORE)?;
        let mut done = 0usize;
        while done < data.len() {
            let va = VirtAddr(cap.addr() + done as u64);
            let in_page = ((PAGE_SIZE - va.page_offset()) as usize).min(data.len() - done);
            let pte = self.translate(ctx, pid, va, AccessKind::Store)?;
            self.pm
                .write(pte.pfn, va.page_offset(), &data[done..done + in_page])
                .map_err(|_| Errno::Fault)?;
            done += in_page;
        }
        Ok(())
    }

    fn load_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        let va = VirtAddr(cap.addr());
        if !va.is_granule_aligned() {
            return Err(Errno::Fault);
        }
        self.check_cap(ctx, pid, cap, cap.addr(), GRANULE_SIZE, Perms::LOAD)?;
        let pte = self.translate(ctx, pid, va, AccessKind::CapLoad)?;
        self.pm
            .load_cap(pte.pfn, va.page_offset())
            .map_err(|_| Errno::Fault)
    }

    fn store_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        value: &Capability,
    ) -> SysResult<()> {
        let va = VirtAddr(cap.addr());
        if !va.is_granule_aligned() {
            return Err(Errno::Fault);
        }
        self.check_cap(ctx, pid, cap, cap.addr(), GRANULE_SIZE, Perms::STORE)?;
        let pte = self.translate(ctx, pid, va, AccessKind::CapStore)?;
        self.pm
            .store_cap(pte.pfn, va.page_offset(), value)
            .map_err(|_| Errno::Fault)
    }

    fn malloc(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        let ta = self.talloc_of(pid)?;
        let mut um = BUserMem { os: self, ctx, pid };
        ta.malloc(&mut um, len)
    }

    fn mfree(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability) -> SysResult<()> {
        let ta = self.talloc_of(pid)?;
        let mut um = BUserMem { os: self, ctx, pid };
        ta.free(&mut um, cap)
    }

    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability> {
        self.proc(pid)?
            .regs
            .get(idx)
            .copied()
            .flatten()
            .ok_or(Errno::Inval)
    }

    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()> {
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let slot = p.regs.get_mut(idx).ok_or(Errno::Inval)?;
        *slot = Some(cap);
        Ok(())
    }

    fn shm_open(&mut self, ctx: &mut Ctx, pid: Pid, name: &str, len: u64) -> SysResult<Capability> {
        let pages = len.div_ceil(PAGE_SIZE);
        if !self.shm_objs.contains_key(name) {
            let mut frames = Vec::new();
            for _ in 0..pages {
                frames.push(self.pm.alloc_frame().map_err(|_| Errno::NoMem)?);
            }
            self.shm_objs.insert(name.to_string(), frames);
        }
        let frames = self.shm_objs[name].clone();
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let (shm_off, shm_len) = p.layout.shm;
        if p.shm_next + pages * PAGE_SIZE > shm_len {
            return Err(Errno::NoMem);
        }
        let map_base = PROC_BASE + shm_off + p.shm_next;
        p.shm_next += pages * PAGE_SIZE;
        let root = p.root;
        for (i, pfn) in frames.iter().take(pages as usize).enumerate() {
            self.pm.inc_ref(*pfn).map_err(|_| Errno::Fault)?;
            let vpn = VirtAddr(map_base + i as u64 * PAGE_SIZE).vpn();
            self.procs
                .get_mut(&pid)
                .unwrap()
                .pt
                .map(vpn, *pfn, PteFlags::rw());
            ctx.kernel(self.cost.pte_write);
        }
        root.with_bounds(map_base, len)
            .and_then(|c| c.with_perms(Perms::LOAD | Perms::STORE | Perms::GLOBAL))
            .map_err(|_| Errno::Fault)
    }

    fn mmap_anon(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let (mmap_off, mmap_len) = p.layout.mmap;
        if p.mmap_next + pages * PAGE_SIZE > mmap_len {
            return Err(Errno::NoMem);
        }
        let base = PROC_BASE + mmap_off + p.mmap_next;
        p.mmap_next += pages * PAGE_SIZE;
        let root = p.root;
        for i in 0..pages {
            let pfn = self.pm.alloc_frame().map_err(|_| Errno::NoMem)?;
            let vpn = VirtAddr(base + i * PAGE_SIZE).vpn();
            self.procs
                .get_mut(&pid)
                .unwrap()
                .pt
                .map(vpn, pfn, PteFlags::rw());
            ctx.kernel(self.cost.page_alloc + self.cost.pte_write);
            ctx.counters.ptes_written += 1;
        }
        root.with_bounds(base, len.max(1)).map_err(|_| Errno::Fault)
    }

    fn syscall_entry_cost(&self) -> f64 {
        match self.profile.syscall {
            SyscallStyle::Trap => self.cost.trap_syscall,
            SyscallStyle::Direct => self.cost.sealed_syscall,
        }
    }

    fn syscall_is_trap(&self) -> bool {
        self.profile.syscall == SyscallStyle::Trap
    }

    fn ctx_switch_cost(&self, from: Pid, to: Pid) -> f64 {
        let cross_as = from != to;
        self.cost.ctx_switch
            + if cross_as {
                self.profile.ctx_switch_extra
            } else {
                0.0
            }
    }

    fn big_kernel_lock(&self) -> bool {
        self.profile.big_lock
    }

    fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    fn copyio_cost_per_byte(&self) -> f64 {
        if self.profile.copyio {
            self.cost.copyio_per_byte
        } else {
            0.0
        }
    }

    fn mem_stats(&self, pid: Pid) -> MemStats {
        let Ok(p) = self.proc(pid) else {
            return MemStats::default();
        };
        let frames: Vec<Pfn> = p.pt.iter().map(|(_, pte)| pte.pfn).collect();
        MemStats::for_frames(&self.pm, frames)
    }

    fn allocated_frames(&self) -> u32 {
        self.pm.allocated_frames()
    }

    fn peak_frames(&self) -> u32 {
        self.pm.peak_allocated_frames()
    }

    fn audit_isolation(&self, pid: Pid) -> usize {
        // Separate address spaces: a process cannot name another's pages
        // at all. Audit only the register file for out-of-space caps.
        let Ok(p) = self.proc(pid) else { return 0 };
        p.regs
            .iter()
            .flatten()
            .filter(|c| !c.confined_to(PROC_BASE, p.layout.region_len()))
            .count()
    }
}

struct BUserMem<'a> {
    os: &'a mut MultiAsOs,
    ctx: &'a mut Ctx,
    pid: Pid,
}

impl BUserMem<'_> {
    fn cap_at(&self, va: u64, len: u64) -> SysResult<Capability> {
        self.os
            .proc(self.pid)?
            .root
            .with_bounds(va, len)
            .map_err(|_| Errno::Fault)
    }
}

impl UserMem for BUserMem<'_> {
    fn load(&mut self, va: u64, buf: &mut [u8]) -> SysResult<()> {
        let cap = self.cap_at(va, buf.len() as u64)?;
        self.os.load(self.ctx, self.pid, &cap, buf)
    }

    fn store(&mut self, va: u64, data: &[u8]) -> SysResult<()> {
        let cap = self.cap_at(va, data.len() as u64)?;
        self.os.store(self.ctx, self.pid, &cap, data)
    }

    fn load_cap(&mut self, va: u64) -> SysResult<Option<Capability>> {
        let cap = self.cap_at(va, GRANULE_SIZE)?;
        self.os.load_cap(self.ctx, self.pid, &cap)
    }

    fn store_cap(&mut self, va: u64, value: &Capability) -> SysResult<()> {
        let cap = self.cap_at(va, GRANULE_SIZE)?;
        self.os.store_cap(self.ctx, self.pid, &cap, value)
    }

    fn derive(&self, base: u64, len: u64) -> SysResult<Capability> {
        self.cap_at(base, len)
    }

    fn charge(&mut self, n: u64) {
        self.ctx.user(self.os.cost.cpu_op * n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mono, nephele, BaselineConfig};

    const P: Pid = Pid(1);
    const C: Pid = Pid(2);

    fn cfg() -> BaselineConfig {
        BaselineConfig {
            phys_mib: 64,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn mono_fork_preserves_addresses() {
        let mut os = mono(cfg());
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, P, &ImageSpec::hello_world()).unwrap();
        let a = os.malloc(&mut ctx, P, 64).unwrap();
        os.store(&mut ctx, P, &a, b"before-fork").unwrap();
        os.set_reg(P, 4, a).unwrap();
        os.fork(&mut ctx, P, C).unwrap();
        // Same virtual address in the child — no relocation.
        let ca = os.reg(C, 4).unwrap();
        assert_eq!(ca.base(), a.base());
        let mut b = [0u8; 11];
        os.load(&mut ctx, C, &ca.with_addr(ca.base()).unwrap(), &mut b)
            .unwrap();
        assert_eq!(&b, b"before-fork");
    }

    #[test]
    fn mono_cow_isolates_writes() {
        let mut os = mono(cfg());
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, P, &ImageSpec::hello_world()).unwrap();
        let a = os.malloc(&mut ctx, P, 64).unwrap();
        os.store(&mut ctx, P, &a, &1u64.to_le_bytes()).unwrap();
        os.fork(&mut ctx, P, C).unwrap();
        let faults_before = ctx.counters.cow_faults;
        os.store(&mut ctx, C, &a, &2u64.to_le_bytes()).unwrap();
        assert!(
            ctx.counters.cow_faults > faults_before,
            "child write CoW-faults"
        );
        let mut pb = [0u8; 8];
        os.load(&mut ctx, P, &a, &mut pb).unwrap();
        assert_eq!(u64::from_le_bytes(pb), 1);
        let mut cb = [0u8; 8];
        os.load(&mut ctx, C, &a, &mut cb).unwrap();
        assert_eq!(u64::from_le_bytes(cb), 2);
    }

    #[test]
    fn nephele_fork_is_much_more_expensive() {
        let mut m = mono(cfg());
        let mut n = nephele(cfg());
        let img = ImageSpec::hello_world();
        let mut cm = Ctx::new();
        m.spawn(&mut cm, P, &img).unwrap();
        let mut cm2 = Ctx::new();
        m.fork(&mut cm2, P, C).unwrap();
        let mut cn = Ctx::new();
        n.spawn(&mut cn, P, &img).unwrap();
        let mut cn2 = Ctx::new();
        n.fork(&mut cn2, P, C).unwrap();
        assert!(
            cn2.kernel_ns > 20.0 * cm2.kernel_ns,
            "nephele fork ({:.0}ns) must dwarf mono fork ({:.0}ns)",
            cn2.kernel_ns,
            cm2.kernel_ns
        );
    }

    #[test]
    fn nephele_per_process_memory_includes_guest_image() {
        let mut m = mono(cfg());
        let mut n = nephele(cfg());
        let img = ImageSpec::hello_world();
        let mut c = Ctx::new();
        m.spawn(&mut c, P, &img).unwrap();
        n.spawn(&mut c, P, &img).unwrap();
        let sm = m.mem_stats(P);
        let sn = n.mem_stats(P);
        assert!(sn.rss_bytes > sm.rss_bytes + 2 * 1024 * 1024);
    }

    #[test]
    fn trap_vs_direct_syscall_costs() {
        let m = mono(cfg());
        let n = nephele(cfg());
        assert!(m.syscall_is_trap());
        assert!(!n.syscall_is_trap());
        assert!(m.syscall_entry_cost() > n.syscall_entry_cost());
    }

    #[test]
    fn forged_cap_refused_on_cheribsd() {
        let mut os = mono(cfg());
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, P, &ImageSpec::hello_world()).unwrap();
        let forged = Capability::new_root(0xffff_0000_0000, 64, Perms::data());
        assert_eq!(
            os.store(&mut ctx, P, &forged, &[0]).unwrap_err(),
            Errno::Fault
        );
        assert_eq!(ctx.counters.isolation_violations, 1);
    }

    #[test]
    fn fork_memory_shared_until_written() {
        let mut os = mono(cfg());
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, P, &ImageSpec::hello_world()).unwrap();
        let before = os.allocated_frames();
        os.fork(&mut ctx, P, C).unwrap();
        // CoW: fork itself allocates nothing.
        assert_eq!(os.allocated_frames(), before);
        let s = os.mem_stats(C);
        assert_eq!(s.private_frames, 0);
        assert!(s.shared_frames > 0);
    }
}
