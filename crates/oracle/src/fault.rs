//! Deterministic fault injection around fork.
//!
//! The campaign first runs each scenario cleanly, reading the kernel's
//! frame-allocation attempt counter before and after the operation under
//! test. That yields the exact window of allocation attempts the
//! operation performs; the campaign then replays the scenario once per
//! attempt index, arming [`UforkOs::inject_frame_alloc_failure`] so that
//! precisely the N-th allocation fails.
//!
//! A one-shot allocation failure is *transient*, so the transactional
//! journal must absorb it: the fork rolls back, runs a reclaim pass, and
//! the in-kernel retry succeeds (likewise the fault path's
//! reclaim-then-retry for lazy copies). Every replay must show:
//!
//! * the operation under test **succeeds** despite the injected failure,
//! * the rollback/reclaim machinery actually ran (counters),
//! * no dangling PTEs / unaccounted frames (`audit_kernel`),
//! * the child observes exactly the clean-run values, and
//! * a clean teardown afterwards: zero frames remain (catches any frame
//!   leaked by the rolled-back first attempt).
//!
//! Region exhaustion is *not* transient — no amount of reclaim frees a
//! μprocess region — so that scenario still demands a clean `Err(NoMem)`.
//!
//! Three scenarios cover the paper's fork paths: frame exhaustion during
//! the eager fork walk (all three strategies), frame exhaustion inside
//! lazy CoA-access / CoPA tag-load fault resolution in the child, and
//! μprocess-region exhaustion mid-fork.

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, Errno, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};

use crate::driver::oracle_image;

/// What the campaign exercised (for reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultSummary {
    /// Injection points replayed inside the eager fork walk.
    pub fork_walk_points: u64,
    /// Injection points replayed inside lazy child fault resolution.
    pub lazy_copy_points: u64,
    /// Forks driven into region exhaustion.
    pub region_exhaustion_forks: u64,
}

const STRATEGIES: [CopyStrategy; 3] = [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA];

pub(crate) fn build(strategy: CopyStrategy) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        ..UforkConfig::default()
    })
}

/// Spawns `Pid(1)` and builds a fragmented heap with a pointer cycle:
/// seven allocations, every other one freed, capabilities chaining the
/// survivors. Returns the surviving slot capabilities.
pub(crate) fn prelude(os: &mut UforkOs, ctx: &mut Ctx) -> Result<Vec<Capability>, String> {
    let pid = Pid(1);
    os.spawn(ctx, pid, &oracle_image())
        .map_err(|e| format!("spawn: {e:?}"))?;
    let mut caps = Vec::new();
    for i in 0..7u64 {
        let c = os
            .malloc(ctx, pid, 512)
            .map_err(|e| format!("malloc#{i}: {e:?}"))?;
        os.store(ctx, pid, &c, &(0xA0 + i).to_le_bytes())
            .map_err(|e| format!("write#{i}: {e:?}"))?;
        caps.push(c);
    }
    // Chain: caps[i] granule 1 points at caps[(i+2) % 7].
    for i in 0..7usize {
        let at = caps[i]
            .with_addr(caps[i].base() + 16)
            .map_err(|e| format!("cursor#{i}: {e:?}"))?;
        os.store_cap(ctx, pid, &at, &caps[(i + 2) % 7])
            .map_err(|e| format!("store_cap#{i}: {e:?}"))?;
    }
    // Fragment the free list.
    for i in [1usize, 3, 5] {
        os.mfree(ctx, pid, &caps[i])
            .map_err(|e| format!("free#{i}: {e:?}"))?;
    }
    Ok(vec![caps[0], caps[2], caps[4], caps[6]])
}

/// Derives the child-side view of a parent capability after fork.
pub(crate) fn child_cap(os: &UforkOs, parent_cap: &Capability) -> Result<Capability, String> {
    let p_root = os.reg(Pid(1), 0).map_err(|e| format!("p root: {e:?}"))?;
    let c_root = os.reg(Pid(2), 0).map_err(|e| format!("c root: {e:?}"))?;
    let delta = c_root.base() as i64 - p_root.base() as i64;
    parent_cap
        .rebase(delta, &c_root)
        .map_err(|e| format!("rebase: {e:?}"))
}

/// Asserts the kernel is consistent and the parent intact after an
/// absorbed failure (rollback + retry inside the kernel).
pub(crate) fn check_consistent(os: &mut UforkOs, ctx: &mut Ctx, label: &str) -> Result<(), String> {
    let (dangling, unaccounted) = os.audit_kernel();
    if dangling != 0 || unaccounted != 0 {
        return Err(format!(
            "{label}: audit found {dangling} dangling PTEs, {unaccounted} unaccounted frames"
        ));
    }
    // Parent must still be fully usable.
    let c = os
        .malloc(ctx, Pid(1), 64)
        .map_err(|e| format!("{label}: parent malloc after failure: {e:?}"))?;
    os.store(ctx, Pid(1), &c, &[0x5A; 8])
        .map_err(|e| format!("{label}: parent write after failure: {e:?}"))?;
    os.mfree(ctx, Pid(1), &c)
        .map_err(|e| format!("{label}: parent free after failure: {e:?}"))?;
    Ok(())
}

pub(crate) fn teardown_clean(os: &mut UforkOs, ctx: &mut Ctx, label: &str) -> Result<(), String> {
    for pid in [Pid(2), Pid(1)] {
        if os.region_of(pid).is_ok() {
            os.destroy(ctx, pid);
        }
    }
    let frames = os.allocated_frames();
    if frames != 0 {
        return Err(format!("{label}: {frames} frames alive after teardown"));
    }
    let (dangling, unaccounted) = os.audit_kernel();
    if dangling != 0 || unaccounted != 0 {
        return Err(format!(
            "{label}: post-teardown audit: {dangling} dangling PTEs, {unaccounted} unaccounted"
        ));
    }
    Ok(())
}

/// Frame exhaustion at every allocation attempt of the eager fork walk.
fn fork_walk_campaign(summary: &mut FaultSummary) -> Result<(), String> {
    for strategy in STRATEGIES {
        // Clean run: find the fork's allocation-attempt window.
        let (a0, a1) = {
            let mut os = build(strategy);
            let mut ctx = Ctx::new();
            prelude(&mut os, &mut ctx)?;
            let a0 = os.frame_alloc_attempts();
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("{strategy:?}: clean fork failed: {e:?}"))?;
            (a0, os.frame_alloc_attempts())
        };
        if a1 == a0 {
            return Err(format!(
                "{strategy:?}: fork performed no frame allocations (window empty)"
            ));
        }
        for attempt in a0..a1 {
            let label = format!("{strategy:?} fork-walk attempt {attempt}");
            let mut os = build(strategy);
            let mut ctx = Ctx::new();
            let caps = prelude(&mut os, &mut ctx)?;
            os.inject_frame_alloc_failure(attempt);
            // A one-shot failure is transient: the journal rolls the
            // partial fork back, reclaims, and the retry succeeds.
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("{label}: fork did not absorb the failure: {e:?}"))?;
            if ctx.counters.fork_rollbacks == 0 {
                return Err(format!("{label}: no rollback recorded"));
            }
            if ctx.counters.reclaim_inline == 0 {
                return Err(format!("{label}: no reclaim pass recorded"));
            }
            check_consistent(&mut os, &mut ctx, &label)?;
            let mut b = [0u8; 8];
            let cc = child_cap(&os, &caps[0])?;
            os.load(&mut ctx, Pid(2), &cc, &mut b)
                .map_err(|e| format!("{label}: child read after retry: {e:?}"))?;
            if u64::from_le_bytes(b) != 0xA0 {
                return Err(format!(
                    "{label}: child sees {:#x}, expected 0xA0",
                    u64::from_le_bytes(b)
                ));
            }
            teardown_clean(&mut os, &mut ctx, &label)?;
            summary.fork_walk_points += 1;
        }
    }
    Ok(())
}

/// Frame exhaustion inside the child's lazy fault resolution (CoA page
/// materialization / CoPA capability-load relocation).
fn lazy_copy_campaign(summary: &mut FaultSummary) -> Result<(), String> {
    for strategy in [CopyStrategy::CoA, CopyStrategy::CoPA] {
        // Clean run to find the window of the child's first access.
        let (a0, a1, expected) = {
            let mut os = build(strategy);
            let mut ctx = Ctx::new();
            let caps = prelude(&mut os, &mut ctx)?;
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("{strategy:?}: fork: {e:?}"))?;
            let cc = child_cap(&os, &caps[0])?;
            let a0 = os.frame_alloc_attempts();
            let loaded = child_access(&mut os, &mut ctx, &cc, strategy)?;
            (a0, os.frame_alloc_attempts(), loaded)
        };
        if a1 == a0 {
            return Err(format!(
                "{strategy:?}: child access triggered no frame allocation"
            ));
        }
        for attempt in a0..a1 {
            let label = format!("{strategy:?} lazy-copy attempt {attempt}");
            let mut os = build(strategy);
            let mut ctx = Ctx::new();
            let caps = prelude(&mut os, &mut ctx)?;
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("{label}: fork: {e:?}"))?;
            let cc = child_cap(&os, &caps[0])?;
            os.inject_frame_alloc_failure(attempt);
            // The fault path's reclaim-then-retry absorbs the one-shot
            // failure: the access succeeds and sees the pre-fork value.
            let v = child_access(&mut os, &mut ctx, &cc, strategy)
                .map_err(|e| format!("{label}: access did not absorb the failure: {e}"))?;
            if v != expected {
                return Err(format!(
                    "{label}: absorbed access saw {v:#x}, clean run saw {expected:#x}"
                ));
            }
            if ctx.counters.reclaim_inline == 0 {
                return Err(format!("{label}: no reclaim pass recorded"));
            }
            let (dangling, unaccounted) = os.audit_kernel();
            if dangling != 0 || unaccounted != 0 {
                return Err(format!(
                    "{label}: audit: {dangling} dangling, {unaccounted} unaccounted"
                ));
            }
            teardown_clean(&mut os, &mut ctx, &label)?;
            summary.lazy_copy_points += 1;
        }
    }
    Ok(())
}

/// The child's first touch of `cc`: a plain read under CoA (any access
/// faults), a tagged capability load under CoPA (LC_FAULT fires), then a
/// read through the loaded capability.
fn child_access(
    os: &mut UforkOs,
    ctx: &mut Ctx,
    cc: &Capability,
    strategy: CopyStrategy,
) -> Result<u64, String> {
    if strategy == CopyStrategy::CoA {
        let mut b = [0u8; 8];
        os.load(ctx, Pid(2), cc, &mut b)
            .map_err(|e| format!("coa load: {e:?}"))?;
        Ok(u64::from_le_bytes(b))
    } else {
        // CoPA: the pointer granule is tagged, so this load faults.
        let at = cc
            .with_addr(cc.base() + 16)
            .map_err(|e| format!("cursor: {e:?}"))?;
        let target = os
            .load_cap(ctx, Pid(2), &at)
            .map_err(|e| format!("copa load_cap: {e:?}"))?
            .ok_or_else(|| "copa: pointer granule lost its tag".to_string())?;
        let tat = target
            .with_addr(target.base())
            .map_err(|e| format!("target cursor: {e:?}"))?;
        let mut b = [0u8; 8];
        os.load(ctx, Pid(2), &tat, &mut b)
            .map_err(|e| format!("copa read-through: {e:?}"))?;
        Ok(u64::from_le_bytes(b))
    }
}

/// Region exhaustion: a μprocess area sized for only a few regions makes
/// fork fail at region reservation; the failure must be clean.
fn region_exhaustion_campaign(summary: &mut FaultSummary) -> Result<(), String> {
    for strategy in STRATEGIES {
        let image = oracle_image();
        let region_len = ufork::ProcLayout::for_image(&image).region_len();
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: 256,
            strategy,
            // Room for the parent and a couple of children, not more.
            uproc_area_len: region_len * 4,
            ..UforkConfig::default()
        });
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        let mut forked = 0u32;
        let mut next = 2u32;
        loop {
            if next > 8 {
                return Err(format!(
                    "{strategy:?}: region exhaustion never hit in {forked} forks"
                ));
            }
            let frames_before = os.allocated_frames();
            match os.fork(&mut ctx, Pid(1), Pid(next)) {
                Ok(()) => {
                    forked += 1;
                    next += 1;
                }
                Err(Errno::NoMem) => {
                    let label = format!("{strategy:?} region exhaustion");
                    if os.region_of(Pid(next)).is_ok() {
                        return Err(format!("{label}: failed fork left child"));
                    }
                    if os.allocated_frames() != frames_before {
                        return Err(format!("{label}: failed fork leaked frames"));
                    }
                    let (d, u) = os.audit_kernel();
                    if d != 0 || u != 0 {
                        return Err(format!("{label}: audit {d}/{u}"));
                    }
                    // Parent and existing children still usable.
                    let c = os
                        .malloc(&mut ctx, Pid(1), 64)
                        .map_err(|e| format!("{label}: parent malloc: {e:?}"))?;
                    os.mfree(&mut ctx, Pid(1), &c)
                        .map_err(|e| format!("{label}: parent free: {e:?}"))?;
                    break;
                }
                Err(e) => return Err(format!("{strategy:?}: unexpected fork error {e:?}")),
            }
        }
        if forked == 0 {
            return Err(format!("{strategy:?}: no fork fit in the shrunken area"));
        }
        // Full teardown still releases everything.
        for pid in (1..next + 1).map(Pid) {
            if os.region_of(pid).is_ok() {
                os.destroy(&mut ctx, pid);
            }
        }
        if os.allocated_frames() != 0 {
            return Err(format!("{strategy:?}: frames alive after teardown"));
        }
        summary.region_exhaustion_forks += u64::from(forked);
    }
    Ok(())
}

/// Runs the whole campaign; returns what was exercised.
pub fn fault_campaign() -> Result<FaultSummary, String> {
    let mut summary = FaultSummary::default();
    fork_walk_campaign(&mut summary)?;
    lazy_copy_campaign(&mut summary)?;
    region_exhaustion_campaign(&mut summary)?;
    Ok(summary)
}
