//! The four-way differential comparison and divergence shrinking.
//!
//! Every generated [`KernelProgram`] runs under all three μFork copy
//! strategies (Full, CoA, CoPA) *and* the multi-address-space reference
//! kernel. The four normalized observations must be identical; on a
//! divergence the failing program is minimized by chunk-removal
//! shrinking (re-running all four backends per candidate) before the
//! report is produced, so the smallest reproducing op sequence is what
//! a human sees.
//!
//! Each μFork backend runs with a *different* ASLR seed derived from the
//! case seed: observations are region-relative, so they must agree no
//! matter where the regions land — this exercises the relocation
//! normalization rather than assuming it.

use ufork::{UforkConfig, UforkOs};
use ufork_abi::CopyStrategy;
use ufork_baselines::{mono, BaselineConfig};

use crate::driver::{run_program, RunResult};
use crate::gen::KernelProgram;

/// The four kernels under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// μFork with eager full copies.
    Full,
    /// μFork with copy-on-any-access.
    CoA,
    /// μFork with copy-on-write + copy-on-capability-load.
    CoPA,
    /// The per-process-page-table reference kernel.
    MultiAs,
}

/// All backends, in reporting order.
pub const ALL_BACKENDS: [Backend; 4] =
    [Backend::Full, Backend::CoA, Backend::CoPA, Backend::MultiAs];

impl Backend {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Full => "ufork-full",
            Backend::CoA => "ufork-coa",
            Backend::CoPA => "ufork-copa",
            Backend::MultiAs => "multias",
        }
    }
}

/// Physical memory given to each backend (generous: programs are small).
const PHYS_MIB: u32 = 256;

/// Runs one program on one backend, including the μFork-only
/// post-teardown kernel audit (dangling PTEs / unaccounted frames).
pub fn run_backend(backend: Backend, aslr: u64, prog: &KernelProgram) -> Result<RunResult, String> {
    match backend {
        Backend::MultiAs => {
            let mut os = mono(BaselineConfig {
                phys_mib: PHYS_MIB,
                ..BaselineConfig::default()
            });
            run_program(&mut os, prog)
        }
        _ => {
            let strategy = match backend {
                Backend::Full => CopyStrategy::Full,
                Backend::CoA => CopyStrategy::CoA,
                _ => CopyStrategy::CoPA,
            };
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: PHYS_MIB,
                strategy,
                aslr_seed: Some(aslr),
                ..UforkConfig::default()
            });
            let r = run_program(&mut os, prog)?;
            let (dangling, unaccounted) = os.audit_kernel();
            if dangling != 0 || unaccounted != 0 {
                return Err(format!(
                    "{}: kernel audit failed after teardown: {dangling} dangling PTEs, \
                     {unaccounted} unaccounted frames",
                    backend.name()
                ));
            }
            Ok(r)
        }
    }
}

/// Outcome of one differential case.
pub enum CaseOutcome {
    /// All four backends agreed and every invariant held.
    Agree,
    /// A divergence or invariant breach, with the (shrunken) program and
    /// a human-readable explanation.
    Diverged {
        /// The minimized reproducing program.
        program: KernelProgram,
        /// What differed, between which backends.
        report: String,
    },
}

/// Checks one program across all backends. `aslr` seeds the per-backend
/// region placement.
fn check_once(prog: &KernelProgram, aslr: u64) -> Result<(), String> {
    let mut results: Vec<(Backend, RunResult)> = Vec::with_capacity(4);
    for (i, b) in ALL_BACKENDS.iter().enumerate() {
        // A different region layout per μFork backend.
        let r = run_backend(*b, aslr.wrapping_add(i as u64 * 0x9e37), prog)?;
        if r.invariants.isolation_violations != 0 {
            return Err(format!(
                "{}: {} isolation violations",
                b.name(),
                r.invariants.isolation_violations
            ));
        }
        if r.invariants.frames_after_teardown != 0 {
            return Err(format!(
                "{}: {} frames leaked after teardown",
                b.name(),
                r.invariants.frames_after_teardown
            ));
        }
        results.push((*b, r));
    }
    let (b0, first) = &results[0];
    for (b, r) in &results[1..] {
        if let Some(d) = first_difference(&first.obs, &r.obs) {
            return Err(format!("{} vs {}: {d}", b0.name(), b.name()));
        }
    }
    Ok(())
}

/// Describes the first point where two observations differ.
fn first_difference(
    a: &crate::driver::Observation,
    b: &crate::driver::Observation,
) -> Option<String> {
    for (i, (ta, tb)) in a.trace.iter().zip(b.trace.iter()).enumerate() {
        if ta != tb {
            return Some(format!("trace[{i}]: {ta:?} != {tb:?}"));
        }
    }
    if a.trace.len() != b.trace.len() {
        return Some(format!(
            "trace length {} != {}",
            a.trace.len(),
            b.trace.len()
        ));
    }
    for (ord, (fa, fb)) in a.finals.iter().zip(b.finals.iter()).enumerate() {
        if fa != fb {
            match (fa, fb) {
                (Some(pa), Some(pb)) => {
                    for (s, (sa, sb)) in pa.slots.iter().zip(pb.slots.iter()).enumerate() {
                        if sa != sb {
                            return Some(format!("proc#{ord} slot{s}: {sa:?} != {sb:?}"));
                        }
                    }
                }
                _ => return Some(format!("proc#{ord}: {fa:?} != {fb:?}")),
            }
        }
    }
    if a.finals.len() != b.finals.len() {
        return Some(format!(
            "proc count {} != {}",
            a.finals.len(),
            b.finals.len()
        ));
    }
    None
}

/// Runs one differential case, shrinking the program on divergence.
pub fn run_case(prog: &KernelProgram, aslr: u64) -> CaseOutcome {
    match check_once(prog, aslr) {
        Ok(()) => CaseOutcome::Agree,
        Err(first_report) => {
            let (min, report) = shrink(prog.clone(), first_report, aslr);
            CaseOutcome::Diverged {
                program: min,
                report,
            }
        }
    }
}

/// Chunk-removal shrinking: repeatedly drop op spans while the program
/// still diverges, halving the chunk size down to single ops.
fn shrink(mut prog: KernelProgram, mut report: String, aslr: u64) -> (KernelProgram, String) {
    let mut chunk = (prog.ops.len() / 2).max(1);
    let mut budget = 500usize;
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < prog.ops.len() && budget > 0 {
            let end = (start + chunk).min(prog.ops.len());
            let mut candidate = prog.clone();
            candidate.ops.drain(start..end);
            budget -= 1;
            match check_once(&candidate, aslr) {
                Err(r) => {
                    prog = candidate;
                    report = r;
                    removed_any = true;
                    // Same position now holds the next chunk.
                }
                Ok(()) => start = end,
            }
        }
        if chunk == 1 && (!removed_any || budget == 0) {
            return (prog, report);
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}
