//! Randomized μprocess program generation.
//!
//! Two program shapes are generated, both deterministically from a
//! [`Rng`] seeded by `ORACLE_SEED`:
//!
//! * [`KernelProgram`] — a flat op sequence driven directly against a
//!   [`ufork_exec::MemOs`] implementation (mallocs/frees, raw writes,
//!   pointer-graph stores/loads, nested forks, exits). These are the
//!   inputs of the kernel-level differential oracle.
//! * [`MNode`] — a fork *tree* executed on the full `Machine` executive,
//!   where every parent feeds each child patterned bytes through a pipe
//!   and reaps it before continuing. The tree is sequentialized by those
//!   waits, so its observable output (files, pipe traffic, exit codes) is
//!   scheduling- and cost-model-independent — comparable across backends
//!   with different cost models.

use ufork_testkit::Rng;

/// Number of capability handle slots each driven μprocess has.
pub const SLOTS: usize = 8;

/// Heap size of the generated image: small enough that programs can
/// exhaust it (exercising identical `NoMem` paths on every backend).
pub const HEAP_BYTES: u64 = 96 * 1024;

/// Maximum live + exited μprocesses per kernel program.
pub const MAX_PROCS: usize = 6;

/// One operation of a kernel-level oracle program.
///
/// Slots and granule indices are generated unconstrained; the driver
/// skips (deterministically, recording `skip` in the trace) any op whose
/// operands do not refer to a live allocation. This keeps every op
/// sequence valid, which is what makes chunk-removal shrinking sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `slots[slot] = malloc(len)` in the current μprocess.
    Malloc { slot: u8, len: u16 },
    /// `free(slots[slot])`.
    Free { slot: u8 },
    /// Write `val` (8 bytes) at granule `granule` of `slots[slot]`.
    Write { slot: u8, granule: u8, val: u64 },
    /// Store the capability `slots[dst]` into memory at granule
    /// `granule` of `slots[src]` (builds the pointer graph).
    StorePtr { src: u8, granule: u8, dst: u8 },
    /// Overwrite the granule with plain bytes (clears the tag).
    ClearPtr { slot: u8, granule: u8 },
    /// Load the capability stored at granule `granule` of `slots[slot]`
    /// and read 8 bytes through it (exercises CoA/CoPA cap-load faults).
    FollowPtr { slot: u8, granule: u8 },
    /// Fork the current μprocess; the child inherits rebased handles.
    Fork,
    /// Switch the current μprocess to the `idx % alive`-th live one.
    Switch { idx: u8 },
    /// Exit the current μprocess (skipped if it is the last one).
    Exit,
}

/// A generated kernel-level program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelProgram {
    /// The op sequence, executed in order.
    pub ops: Vec<Op>,
}

/// Generates one random op.
pub fn gen_op(rng: &mut Rng) -> Op {
    // Weighted: memory ops dominate, forks are common enough that most
    // programs fork at least once, exits are rare.
    match rng.below(32) {
        0..=5 => Op::Malloc {
            slot: rng.below(SLOTS as u64) as u8,
            len: rng.range(16, 3000) as u16,
        },
        6..=8 => Op::Free {
            slot: rng.below(SLOTS as u64) as u8,
        },
        9..=14 => Op::Write {
            slot: rng.below(SLOTS as u64) as u8,
            granule: rng.below(16) as u8,
            val: rng.next_u64(),
        },
        15..=19 => Op::StorePtr {
            src: rng.below(SLOTS as u64) as u8,
            granule: rng.below(16) as u8,
            dst: rng.below(SLOTS as u64) as u8,
        },
        20..=21 => Op::ClearPtr {
            slot: rng.below(SLOTS as u64) as u8,
            granule: rng.below(16) as u8,
        },
        22..=26 => Op::FollowPtr {
            slot: rng.below(SLOTS as u64) as u8,
            granule: rng.below(16) as u8,
        },
        27..=29 => Op::Fork,
        30 => Op::Switch {
            idx: rng.below(MAX_PROCS as u64) as u8,
        },
        _ => Op::Exit,
    }
}

/// Generates a whole kernel-level program.
pub fn gen_kernel_program(rng: &mut Rng) -> KernelProgram {
    let n = rng.range(6, 60) as usize;
    KernelProgram {
        ops: (0..n).map(|_| gen_op(rng)).collect(),
    }
}

/// One node of a machine-level fork tree (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MNode {
    /// Byte pattern this μprocess logs and mixes into its exit code.
    pub pattern: u8,
    /// How many pattern bytes it appends to its log file.
    pub log_len: u8,
    /// Simulated compute before logging.
    pub compute: u16,
    /// Children forked in order; `send_len[i]` bytes are piped to child
    /// `i` before the fork.
    pub children: Vec<(u8, MNode)>,
}

impl MNode {
    /// Total nodes in the tree (processes the program will create).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }
}

/// Generates a fork tree with at most `budget` nodes.
pub fn gen_tree(rng: &mut Rng, budget: &mut usize, depth: u32) -> MNode {
    *budget = budget.saturating_sub(1);
    let mut children = Vec::new();
    while depth < 3 && *budget > 0 && rng.chance(1, 2) {
        let send_len = rng.range(1, 48) as u8;
        children.push((send_len, gen_tree(rng, budget, depth + 1)));
    }
    MNode {
        pattern: rng.next_u64() as u8,
        log_len: rng.range(1, 32) as u8,
        compute: rng.next_u64() as u16,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_kernel_program(&mut Rng::new(7));
        let b = gen_kernel_program(&mut Rng::new(7));
        assert_eq!(a, b);
        let t1 = gen_tree(&mut Rng::new(9), &mut 6, 0);
        let t2 = gen_tree(&mut Rng::new(9), &mut 6, 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn tree_budget_is_respected() {
        for seed in 0..50 {
            let mut budget = 6;
            let t = gen_tree(&mut Rng::new(seed), &mut budget, 0);
            assert!(t.size() <= 6, "tree too big: {}", t.size());
        }
    }
}
