//! CLI entry: `cargo run -p ufork-oracle -- --seed N --cases M`.
//!
//! Exit code 0 when every backend agreed on every case and every
//! injected fault unwound cleanly; 1 otherwise (with minimized
//! reproductions printed). `--seed`/`--cases` default to the
//! `ORACLE_SEED`/`ORACLE_CASES` environment variables, then to 1/100.

use std::process::ExitCode;

use ufork_oracle::{run_chaos, run_oracle, OracleReport};
use ufork_testkit::env_u64;

struct Args {
    seed: u64,
    cases: u64,
    skip_faults: bool,
    chaos_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: env_u64("ORACLE_SEED", 1),
        cases: env_u64("ORACLE_CASES", 100),
        skip_faults: false,
        chaos_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cases needs an integer")?;
            }
            "--skip-faults" => args.skip_faults = true,
            "--chaos-only" => args.chaos_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: ufork-oracle [--seed N] [--cases M] [--skip-faults] [--chaos-only]\n\
                     \n\
                     Differential fork-semantics oracle: runs M seeded random\n\
                     programs under μFork Full/CoA/CoPA and the multi-AS\n\
                     baseline, compares observable state, replays every\n\
                     mid-fork allocation failure, and aborts every fork\n\
                     journal op. Fully reproducible from the seed (env:\n\
                     ORACLE_SEED, ORACLE_CASES). --chaos-only runs just the\n\
                     journal chaos sweep."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ufork-oracle: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.chaos_only {
        let mut report = OracleReport::default();
        run_chaos(&mut report);
        println!(
            "chaos sweep: {} journal-op aborts ({} with live ring endpoints, {} in the \
             snapshot train, {} in background-reclaim passes, {} in OOM teardowns), all \
             rolled back leak-free; {} mid-storm injection scenarios completed clean",
            report.chaos_points,
            report.ring_chaos_points,
            report.train_chaos_points,
            report.reclaim_chaos_points,
            report.oom_chaos_points,
            report.storm_chaos_scenarios
        );
        return if report.ok() {
            println!("oracle: PASS");
            ExitCode::SUCCESS
        } else {
            for f in &report.failures {
                eprintln!("FAIL: {f}");
            }
            eprintln!("oracle: {} failure(s)", report.failures.len());
            ExitCode::FAILURE
        };
    }
    println!(
        "ufork-oracle: seed={} cases={} (replay: cargo run -p ufork-oracle -- --seed {} --cases {})",
        args.seed, args.cases, args.seed, args.cases
    );
    let report = run_oracle(args.seed, args.cases, args.skip_faults);
    println!(
        "kernel diff: {} cases agreed across ufork-full/coa/copa + multias",
        report.kernel_cases
    );
    println!(
        "machine diff: {} fork trees agreed (pipes, fds, exit codes)",
        report.machine_cases
    );
    println!(
        "ring diff: {} multi-tier ring-fabric runs agreed bitwise across all backends",
        report.ring_cases
    );
    if args.skip_faults {
        println!("fault injection: skipped (--skip-faults)");
    } else {
        println!(
            "fault injection: {} injection points, all absorbed or failed clean",
            report.fault_points
        );
        println!(
            "chaos sweep: {} journal-op aborts ({} with live ring endpoints, {} in the \
             snapshot train, {} in background-reclaim passes, {} in OOM teardowns), all \
             rolled back leak-free; {} mid-storm injection scenarios completed clean",
            report.chaos_points,
            report.ring_chaos_points,
            report.train_chaos_points,
            report.reclaim_chaos_points,
            report.oom_chaos_points,
            report.storm_chaos_scenarios
        );
    }
    if report.ok() {
        println!("oracle: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("oracle: {} failure(s)", report.failures.len());
        ExitCode::FAILURE
    }
}
