//! Machine-level differential: fork trees with pipe traffic.
//!
//! The kernel-level driver covers memory semantics; this module covers
//! the POSIX surface around fork that lives in the executive — file
//! descriptor inheritance, pipe traffic across the fork boundary, wait
//! and exit codes. A generated [`MNode`] tree runs as a real `Program`
//! on the `Machine` executive under all four backends.
//!
//! Backends have different *cost models*, so simulated timing and
//! scheduling interleavings legitimately differ; the generated programs
//! are therefore constructed to be *sequentialized by synchronization*:
//! a parent pipes bytes to a child **before** forking it and then
//! immediately waits for it, so exactly one process does observable work
//! at any time. Every observable below (per-process log files with fd
//! numbers and received pipe bytes, wait results, exit codes, fork
//! count) is then identical across backends regardless of timing.

use std::any::Any;

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{
    BlockingCall, CopyStrategy, Env, Fd, ForkResult, ImageSpec, Program, Resume, StepOutcome,
};
use ufork_baselines::{mono, BaselineConfig};
use ufork_exec::{Machine, MachineConfig};

use crate::diff::Backend;
use crate::gen::MNode;

/// Register slot holding the pipe-receive buffer capability.
const REG_RECV: usize = 16;

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    ReadPipe,
    Waiting,
}

#[derive(Clone)]
struct TreeProg {
    node: MNode,
    phase: Option<Phase>,
    child_ix: usize,
    received: Vec<u8>,
    reaped: Vec<u64>,
    cur_pipe: Option<(Fd, Fd)>,
    expect: u8,
}

impl TreeProg {
    fn new(node: MNode) -> TreeProg {
        TreeProg {
            node,
            phase: None,
            child_ix: 0,
            received: Vec::new(),
            reaped: Vec::new(),
            cur_pipe: None,
            expect: 0,
        }
    }

    /// Writes `content` to a fresh file at `path`; records the fd used.
    fn write_file(&self, env: &mut dyn Env, path: &str, content: &[u8]) -> Option<i32> {
        let fd = env.sys_open(path, true).ok()?;
        let buf = env.malloc(content.len().max(8) as u64).ok()?;
        let at = buf.with_addr(buf.base()).ok()?;
        env.store(&at, content).ok()?;
        let _ = env.sys_write(fd, &at, content.len() as u64);
        let _ = env.sys_close(fd);
        Some(fd.0)
    }

    /// Logs this process' identity: pattern bytes, received pipe bytes,
    /// and the fd number the log file landed on (fd-table observable).
    fn body(&mut self, env: &mut dyn Env) -> StepOutcome {
        env.cpu_ops(u64::from(self.node.compute));
        let pid = env.sys_getpid();
        let mut content: Vec<u8> =
            std::iter::repeat_n(self.node.pattern, self.node.log_len as usize).collect();
        content.extend_from_slice(&self.received);
        let path = format!("log.{}", pid.0);
        if let Some(fd) = self.write_file(env, &path, &content) {
            // Re-open and append the fd number so fd-table divergence
            // across backends shows up in file contents.
            let tail = [fd as u8];
            let _ = self.write_file(env, &format!("fd.{}", pid.0), &tail);
        }
        self.advance(env)
    }

    /// Forks the next child (piping its bytes first), or finishes.
    fn advance(&mut self, env: &mut dyn Env) -> StepOutcome {
        if self.child_ix < self.node.children.len() {
            let (send_len, child) = self.node.children[self.child_ix].clone();
            let Ok((r, w)) = env.sys_pipe() else {
                return StepOutcome::Exit(100);
            };
            let bytes: Vec<u8> = (0..send_len)
                .map(|i| child.pattern.wrapping_add(i))
                .collect();
            if let Ok(buf) = env.malloc(u64::from(send_len).max(8)) {
                if let Ok(at) = buf.with_addr(buf.base()) {
                    let _ = env.store(&at, &bytes);
                    let _ = env.sys_write(w, &at, u64::from(send_len));
                }
            }
            self.cur_pipe = Some((r, w));
            return StepOutcome::Fork;
        }
        let pid = env.sys_getpid();
        let reaped: Vec<u8> = self.reaped.iter().flat_map(|v| v.to_le_bytes()).collect();
        if !reaped.is_empty() {
            let _ = self.write_file(env, &format!("wait.{}", pid.0), &reaped);
        }
        let sum: u32 = self.received.iter().map(|b| u32::from(*b)).sum();
        let code = (u32::from(self.node.pattern) + sum + self.reaped.len() as u32 * 7) & 0x3f;
        StepOutcome::Exit(code as i32)
    }
}

impl Program for TreeProg {
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome {
        match input {
            Resume::Start => self.body(env),
            Resume::Forked(ForkResult::Parent(_)) => {
                if let Some((r, w)) = self.cur_pipe.take() {
                    let _ = env.sys_close(r);
                    let _ = env.sys_close(w);
                }
                self.phase = Some(Phase::Waiting);
                StepOutcome::Block(BlockingCall::Wait)
            }
            Resume::Forked(ForkResult::Child) => {
                // Become the child node's executor.
                let (send_len, child) = self.node.children[self.child_ix].clone();
                self.node = child;
                self.child_ix = 0;
                self.reaped.clear();
                self.received.clear();
                self.expect = send_len;
                let (r, w) = self.cur_pipe.expect("child inherits the fork pipe");
                let _ = env.sys_close(w);
                self.cur_pipe = Some((r, r));
                let Ok(buf) = env.malloc(u64::from(send_len).max(8)) else {
                    return StepOutcome::Exit(101);
                };
                let _ = env.set_reg(REG_RECV, buf);
                let Ok(at) = buf.with_addr(buf.base()) else {
                    return StepOutcome::Exit(102);
                };
                self.phase = Some(Phase::ReadPipe);
                StepOutcome::Block(BlockingCall::Read {
                    fd: r,
                    buf: at,
                    len: u64::from(send_len),
                })
            }
            Resume::Ret(res) => match self.phase.take() {
                Some(Phase::ReadPipe) => {
                    let n = res.unwrap_or(0);
                    if let Ok(buf) = env.reg(REG_RECV) {
                        let mut data = vec![0u8; n as usize];
                        if let Ok(at) = buf.with_addr(buf.base()) {
                            if env.load(&at, &mut data).is_ok() {
                                self.received = data;
                            }
                        }
                    }
                    if let Some((r, _)) = self.cur_pipe.take() {
                        let _ = env.sys_close(r);
                    }
                    self.body(env)
                }
                Some(Phase::Waiting) => {
                    self.reaped.push(res.unwrap_or(u64::MAX));
                    self.child_ix += 1;
                    self.advance(env)
                }
                None => StepOutcome::Exit(103),
            },
        }
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Everything compared across backends for one tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachObs {
    /// Fork count observed by the executive.
    pub forks: u64,
    /// Exit code per pid, in pid order.
    pub exit_codes: Vec<(u32, Option<i32>)>,
    /// `log.*`, `fd.*` and `wait.*` file contents, in pid order.
    pub files: Vec<(String, Option<Vec<u8>>)>,
}

/// Runs one tree on one backend.
pub fn run_tree(backend: Backend, tree: &MNode) -> Result<MachObs, String> {
    let prog = Box::new(TreeProg::new(tree.clone()));
    let image = ImageSpec::hello_world();
    let cfg = MachineConfig::default();
    let (obs, violations) = match backend {
        Backend::MultiAs => {
            let os = mono(BaselineConfig {
                phys_mib: 256,
                ..BaselineConfig::default()
            });
            let mut m = Machine::new(os, cfg);
            m.spawn(&image, prog).map_err(|e| format!("spawn: {e:?}"))?;
            m.run();
            (observe(&m, tree), m.counters().isolation_violations)
        }
        _ => {
            let strategy = match backend {
                Backend::Full => CopyStrategy::Full,
                Backend::CoA => CopyStrategy::CoA,
                _ => CopyStrategy::CoPA,
            };
            let os = UforkOs::new(UforkConfig {
                phys_mib: 256,
                strategy,
                ..UforkConfig::default()
            });
            let mut m = Machine::new(os, cfg);
            m.spawn(&image, prog).map_err(|e| format!("spawn: {e:?}"))?;
            m.run();
            (observe(&m, tree), m.counters().isolation_violations)
        }
    };
    if violations != 0 {
        return Err(format!(
            "{}: {violations} isolation violations",
            backend.name()
        ));
    }
    Ok(obs)
}

fn observe<O: ufork_exec::MemOs>(m: &Machine<O>, tree: &MNode) -> MachObs {
    let nprocs = tree.size() as u32;
    let mut exit_codes = Vec::new();
    let mut files = Vec::new();
    for pid in 1..=nprocs {
        exit_codes.push((pid, m.exit_code(ufork_abi::Pid(pid))));
        for prefix in ["log", "fd", "wait"] {
            let path = format!("{prefix}.{pid}");
            files.push((
                path.clone(),
                m.vfs().file_contents(&path).map(<[u8]>::to_vec),
            ));
        }
    }
    MachObs {
        forks: m.counters().forks,
        exit_codes,
        files,
    }
}

/// Runs one tree across all backends; `Err` describes the divergence of
/// the *minimized* tree.
pub fn run_machine_case(tree: &MNode) -> Result<(), (MNode, String)> {
    match check_tree(tree) {
        Ok(()) => Ok(()),
        Err(report) => {
            let (min, rep) = shrink_tree(tree.clone(), report);
            Err((min, rep))
        }
    }
}

fn check_tree(tree: &MNode) -> Result<(), String> {
    let base = run_tree(Backend::Full, tree).map_err(|e| format!("ufork-full: {e}"))?;
    for b in [Backend::CoA, Backend::CoPA, Backend::MultiAs] {
        let o = run_tree(b, tree).map_err(|e| format!("{}: {e}", b.name()))?;
        if o != base {
            return Err(describe_mach_diff(b, &base, &o));
        }
    }
    Ok(())
}

fn describe_mach_diff(b: Backend, a: &MachObs, o: &MachObs) -> String {
    if a.forks != o.forks {
        return format!(
            "ufork-full vs {}: forks {} != {}",
            b.name(),
            a.forks,
            o.forks
        );
    }
    for (x, y) in a.exit_codes.iter().zip(&o.exit_codes) {
        if x != y {
            return format!("ufork-full vs {}: exit {x:?} != {y:?}", b.name());
        }
    }
    for (x, y) in a.files.iter().zip(&o.files) {
        if x != y {
            return format!("ufork-full vs {}: file {x:?} != {y:?}", b.name());
        }
    }
    format!("ufork-full vs {}: observations differ", b.name())
}

/// Minimizes a diverging tree by repeatedly deleting child subtrees.
fn shrink_tree(mut tree: MNode, mut report: String) -> (MNode, String) {
    let mut budget = 60;
    loop {
        let mut improved = false;
        for candidate in one_child_removed(&tree) {
            if budget == 0 {
                return (tree, report);
            }
            budget -= 1;
            if let Err(r) = check_tree(&candidate) {
                tree = candidate;
                report = r;
                improved = true;
                break;
            }
        }
        if !improved {
            return (tree, report);
        }
    }
}

/// All trees obtainable by removing exactly one child edge.
fn one_child_removed(t: &MNode) -> Vec<MNode> {
    let mut out = Vec::new();
    for i in 0..t.children.len() {
        let mut v = t.clone();
        v.children.remove(i);
        out.push(v);
    }
    for (i, (_, c)) in t.children.iter().enumerate() {
        for rc in one_child_removed(c) {
            let mut v = t.clone();
            v.children[i].1 = rc;
            out.push(v);
        }
    }
    out
}
