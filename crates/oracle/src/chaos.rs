//! Auto-enumerated chaos sweep over the transactional fork journal.
//!
//! Where [`crate::fault`] injects failures at *allocator attempt*
//! granularity, this sweep works at *journal op* granularity: a clean
//! reference fork measures the window of journal records a fork of the
//! oracle image produces, then the scenario is replayed once per record
//! index with [`UforkOs::inject_journal_failure`] armed at exactly that
//! op. Injected journal aborts are flagged fatal — the kernel's
//! reclaim-then-retry loop must *not* absorb them — so each replay must
//! show a textbook transactional abort:
//!
//! * the fork fails (no partial child: no region, no process-table
//!   entry),
//! * every frame taken since the fork began is back
//!   (`allocated_frames` unchanged, `audit_kernel` balanced to zero),
//! * a rollback was recorded and ran in reverse op order,
//! * the parent is fully usable and an immediate retry succeeds with a
//!   bit-correct child,
//! * teardown afterwards releases everything down to zero frames.
//!
//! The sweep enumerates the window automatically, so a new journal op
//! added to the fork path is covered without touching this file. It runs
//! for all three copy strategies plus the parallel and pipelined walks,
//! exercising the rollback of every op kind: the admission reservation,
//! the region grab, eager frame allocations, shared/lazy refcount bumps,
//! child PTE batches, parent COW arming, and the index/process-table
//! inserts.
//!
//! Pipelined fork gets a second, wider window: after its fork commits,
//! the background copy runs per-chunk journal transactions of its own
//! (frame allocations, `PteRemap` rewrites, `RefDec` releases —
//! [`ufork::pipeline`]). [`sweep_pipeline_window`] enumerates every
//! journal op of a reference drain and aborts each one: the failing
//! chunk must roll back whole (the window shrinks only in chunk-sized
//! steps), nothing may leak, a retry drain must complete, and the child
//! must end bit-correct.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_cheri::{Capability, OType};
use ufork_exec::ring::{self, RingPop, RingPush};
use ufork_exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_workloads::storm::{StormConfig, StormZygote};

use crate::fault::{check_consistent, child_cap, prelude, teardown_clean};

/// What the sweep exercised (for reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSummary {
    /// Journal op indices replayed with an injected abort.
    pub points: u64,
    /// Abort points replayed with live shared-memory ring endpoints.
    pub ring_points: u64,
    /// Abort points inside the pipelined background-copy window.
    pub pipeline_points: u64,
    /// Abort points inside the 10-deep dirty-scope snapshot train.
    pub train_points: u64,
    /// Strategy × walk-mode configurations swept.
    pub configs: u64,
    /// Mid-storm injection scenarios run to clean completion.
    pub storm_scenarios: u64,
    /// Fork retries the storm zygotes absorbed across those scenarios.
    pub storm_retries: u64,
    /// Journal rollbacks recorded across those scenarios.
    pub storm_rollbacks: u64,
    /// Abort points inside background-reclaim scrub passes.
    pub reclaim_points: u64,
    /// Abort points inside OOM victim memory teardowns.
    pub oom_points: u64,
}

/// Strategy × walk-mode configurations under sweep. The parallel walk
/// runs once (under Full, the op-richest strategy); lane-count variants
/// share its journal schedule, which the determinism properties already
/// pin down.
const CONFIGS: [(CopyStrategy, WalkMode); 5] = [
    (CopyStrategy::Full, WalkMode::Serial),
    (CopyStrategy::Full, WalkMode::Parallel(4)),
    (CopyStrategy::Full, WalkMode::Pipelined),
    (CopyStrategy::CoA, WalkMode::Serial),
    (CopyStrategy::CoPA, WalkMode::Serial),
];

fn build(strategy: CopyStrategy, walk: WalkMode) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    })
}

fn sweep_config(
    strategy: CopyStrategy,
    walk: WalkMode,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    // Reference run: measure the fork's journal-record window.
    let (j0, j1) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{strategy:?}/{walk:?}: reference fork failed: {e:?}"))?;
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err(format!(
            "{strategy:?}/{walk:?}: fork recorded no journal ops (window empty)"
        ));
    }
    for op in j0..j1 {
        let label = format!("{strategy:?}/{walk:?} journal op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        let frames_before = os.allocated_frames();
        os.inject_journal_failure(op);
        if os.fork(&mut ctx, Pid(1), Pid(2)).is_ok() {
            return Err(format!("{label}: injected abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == 0 {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        if os.region_of(Pid(2)).is_ok() {
            return Err(format!("{label}: aborted fork left a child behind"));
        }
        let frames = os.allocated_frames();
        if frames != frames_before {
            return Err(format!(
                "{label}: {} frames leaked ({frames_before} -> {frames})",
                frames as i64 - frames_before as i64
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        // The injection is one-shot: the retry must produce a complete,
        // correct child.
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: retry fork failed: {e:?}"))?;
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read after retry: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.points += 1;
    }
    summary.configs += 1;
    Ok(())
}

// ---- ring-endpoint chaos -----------------------------------------------

/// Geometry of the chaos ring: a few slots, small fixed messages.
const RING_SLOTS: u64 = 4;
const RING_MSG_BYTES: u64 = 16;
/// Messages left in flight across the aborted fork.
const RING_MSGS: u64 = 3;
/// Register carrying the sealed endpoint capability (kernel reserves
/// 0..=2 for the data root / spare / PCC).
const RING_REG: usize = 5;
const RING_NAME: &str = "chaos:ring";

/// Deterministic payload of in-flight message `i`.
fn ring_msg(i: u64) -> [u8; RING_MSG_BYTES as usize] {
    let mut b = [0u8; RING_MSG_BYTES as usize];
    b[..8].copy_from_slice(&(0x5249_4e47_0000_0000u64 | i).to_le_bytes());
    b[8..].copy_from_slice(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
    b
}

/// Extends the standard prelude with a live ring: a `Shm`-backed window,
/// an initialized header, [`RING_MSGS`] messages in flight, and the
/// sealed endpoint capability parked in register [`RING_REG`] where the
/// fork's register-relocation walk will find it.
fn ring_prelude(os: &mut UforkOs, ctx: &mut Ctx) -> Result<Vec<Capability>, String> {
    let caps = prelude(os, ctx)?;
    let window = os
        .shm_open(
            ctx,
            Pid(1),
            RING_NAME,
            ring::ring_bytes(RING_SLOTS, RING_MSG_BYTES),
        )
        .map_err(|e| format!("ring shm_open: {e:?}"))?;
    ring::ring_init(os, ctx, Pid(1), &window, RING_SLOTS, RING_MSG_BYTES)
        .map_err(|e| format!("ring_init: {e:?}"))?;
    for i in 0..RING_MSGS {
        match ring::ring_push_raw(os, ctx, Pid(1), &window, &ring_msg(i), 1.0) {
            Ok(RingPush::Pushed(_)) => {}
            other => return Err(format!("ring push #{i}: {other:?}")),
        }
    }
    let sealed = window
        .seal(OType::RING_ENDPOINT, &ring::seal_authority())
        .map_err(|e| format!("ring seal: {e:?}"))?;
    os.set_reg(Pid(1), RING_REG, sealed)
        .map_err(|e| format!("ring set_reg: {e:?}"))?;
    Ok(caps)
}

/// Fetches `pid`'s endpoint register, demands the seal survived, and
/// unseals it with the machine authority.
fn ring_window(os: &UforkOs, pid: Pid, label: &str) -> Result<Capability, String> {
    let sealed = os
        .reg(pid, RING_REG)
        .map_err(|e| format!("{label}: pid {} endpoint register: {e:?}", pid.0))?;
    if !sealed.is_sealed() {
        return Err(format!(
            "{label}: pid {} endpoint lost its seal across fork",
            pid.0
        ));
    }
    sealed
        .unseal(&ring::seal_authority())
        .map_err(|e| format!("{label}: pid {} endpoint unseal: {e:?}", pid.0))
}

fn ring_pop_expect(
    os: &mut UforkOs,
    ctx: &mut Ctx,
    pid: Pid,
    window: &Capability,
    now: f64,
    label: &str,
) -> Result<u64, String> {
    match ring::ring_pop_raw(os, ctx, pid, window, now) {
        Ok(RingPop::Popped { seq, data }) => {
            // Pushes always cycle payloads 0..RING_MSGS in order.
            if data != ring_msg(seq % RING_MSGS) {
                return Err(format!(
                    "{label}: pid {} popped seq {seq} with torn payload {data:x?}",
                    pid.0
                ));
            }
            Ok(seq)
        }
        other => Err(format!("{label}: pid {} pop: {other:?}", pid.0)),
    }
}

/// After an aborted fork the ring must be exactly as it stood: header
/// verified, all in-flight messages present, every payload bitwise
/// intact — a message is in or out, never partial. The messages are
/// popped for inspection and re-pushed to restore the in-flight state.
fn check_ring_untorn(os: &mut UforkOs, ctx: &mut Ctx, label: &str) -> Result<(), String> {
    let w = ring_window(os, Pid(1), label)?;
    ring::ring_verify(os, ctx, Pid(1), &w, RING_SLOTS, RING_MSG_BYTES)
        .map_err(|e| format!("{label}: ring header torn: {e:?}"))?;
    let depth =
        ring::ring_depth(os, ctx, Pid(1), &w).map_err(|e| format!("{label}: ring depth: {e:?}"))?;
    if depth != RING_MSGS {
        return Err(format!(
            "{label}: {depth} messages in flight after abort, want {RING_MSGS}"
        ));
    }
    for _ in 0..RING_MSGS {
        let seq = ring_pop_expect(os, ctx, Pid(1), &w, 10.0, label)?;
        match ring::ring_push_raw(os, ctx, Pid(1), &w, &ring_msg(seq % RING_MSGS), 11.0) {
            Ok(RingPush::Pushed(_)) => {}
            other => return Err(format!("{label}: restore push: {other:?}")),
        }
    }
    Ok(())
}

/// Journal chaos with live IPC: the fork in flight carries a shared
/// ring with messages enqueued and a sealed endpoint capability in a
/// register. Every journal op of the reference fork is aborted once;
/// each abort must leave no child, no leaked frame (the shm frames'
/// refcounts roll back with everything else), the parent's sealed
/// endpoint untouched, and the ring bitwise untorn. The retry must then
/// relocate the endpoint seal-intact into the child, and parent and
/// child must drain the same shared ring interleaved — connectivity
/// survives the failed fork and the successful one alike.
fn sweep_ring_config(
    strategy: CopyStrategy,
    walk: WalkMode,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    // Reference run: the journal window of a fork with a live ring.
    let (j0, j1) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        ring_prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("ring/{strategy:?}/{walk:?}: reference fork failed: {e:?}"))?;
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err(format!(
            "ring/{strategy:?}/{walk:?}: fork recorded no journal ops"
        ));
    }
    for op in j0..j1 {
        let label = format!("ring/{strategy:?}/{walk:?} journal op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = ring_prelude(&mut os, &mut ctx)?;
        let frames_before = os.allocated_frames();
        os.inject_journal_failure(op);
        if os.fork(&mut ctx, Pid(1), Pid(2)).is_ok() {
            return Err(format!("{label}: injected abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == 0 {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        if os.region_of(Pid(2)).is_ok() {
            return Err(format!("{label}: aborted fork left a child behind"));
        }
        let frames = os.allocated_frames();
        if frames != frames_before {
            return Err(format!(
                "{label}: {} frames leaked ({frames_before} -> {frames})",
                frames as i64 - frames_before as i64
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        check_ring_untorn(&mut os, &mut ctx, &label)?;
        // Retry: the relocated sealed endpoint must grant the child the
        // same shared window, drained interleaved with the parent.
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: retry fork failed: {e:?}"))?;
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child heap read after retry: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        let pw = ring_window(&os, Pid(1), &label)?;
        let cw = ring_window(&os, Pid(2), &label)?;
        ring::ring_verify(&mut os, &mut ctx, Pid(2), &cw, RING_SLOTS, RING_MSG_BYTES)
            .map_err(|e| format!("{label}: child ring header: {e:?}"))?;
        // Child, parent, child: each pop must observe the other side's
        // head advance — one ring, two address views.
        let s0 = ring_pop_expect(&mut os, &mut ctx, Pid(2), &cw, 20.0, &label)?;
        let s1 = ring_pop_expect(&mut os, &mut ctx, Pid(1), &pw, 21.0, &label)?;
        let s2 = ring_pop_expect(&mut os, &mut ctx, Pid(2), &cw, 22.0, &label)?;
        if s1 != s0 + 1 || s2 != s0 + 2 {
            return Err(format!(
                "{label}: interleaved drain saw seqs {s0},{s1},{s2} (not consecutive)"
            ));
        }
        for (pid, w) in [(Pid(1), &pw), (Pid(2), &cw)] {
            let depth = ring::ring_depth(&mut os, &mut ctx, pid, w)
                .map_err(|e| format!("{label}: final depth: {e:?}"))?;
            if depth != 0 {
                return Err(format!(
                    "{label}: pid {} still sees {depth} messages after drain",
                    pid.0
                ));
            }
        }
        // Unlink the ring object and tear everything down: with the
        // object's own references dropped and both mappings unmapped,
        // the allocator must balance to zero — no frame or capability
        // outlives the fabric.
        if !os.shm_unlink(RING_NAME) {
            return Err(format!("{label}: ring shm object vanished"));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.ring_points += 1;
    }
    Ok(())
}

/// Abort points inside the pipelined background-copy window: a
/// reference run measures the journal ops a full drain of the committed
/// fork's window records, then each op index is aborted in its own
/// replay. At every point the failing chunk must roll back whole —
/// the window only ever shrinks by whole chunks — the kernel must stay
/// balanced, the one-shot injection must not survive into the retry
/// drain, and the fully-drained child must read bit-correct. Teardown
/// to zero frames at each point is the leak check.
fn sweep_pipeline_window(summary: &mut ChaosSummary) -> Result<(), String> {
    let strategy = CopyStrategy::Full;
    let walk = WalkMode::Pipelined;
    // Reference run: fork commits, then the drain's journal window.
    let (j1, j2) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("pipeline reference fork failed: {e:?}"))?;
        let j1 = os.journal_ops_recorded();
        os.pipeline_drain(&mut ctx, Pid(2))
            .map_err(|e| format!("pipeline reference drain failed: {e:?}"))?;
        (j1, os.journal_ops_recorded())
    };
    if j2 == j1 {
        return Err("pipelined background window recorded no journal ops".into());
    }
    for op in j1..j2 {
        let label = format!("pipeline window op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: fork failed: {e:?}"))?;
        let staged = os.pipeline_pending_pages(Pid(2));
        if staged == 0 {
            return Err(format!("{label}: pipelined fork left no window"));
        }
        os.inject_journal_failure(op);
        let rollbacks_before = ctx.counters.fork_rollbacks;
        if os.pipeline_drain(&mut ctx, Pid(2)).is_ok() {
            return Err(format!("{label}: injected chunk abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == rollbacks_before {
            return Err(format!("{label}: chunk abort did not run a rollback"));
        }
        // Chunk atomicity: the window shrinks only in whole chunks, so
        // the failing chunk is exactly as staged — never in between.
        let pending = os.pipeline_pending_pages(Pid(2));
        if pending == 0 || !(staged - pending).is_multiple_of(ufork::CHUNK_PAGES as u64) {
            return Err(format!(
                "{label}: window went {staged} -> {pending} pages (not chunk-aligned)"
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        // The injection is one-shot: the retry drain must complete and
        // the child must end bit-correct.
        os.pipeline_drain(&mut ctx, Pid(2))
            .map_err(|e| format!("{label}: retry drain failed: {e:?}"))?;
        if os.pipeline_pending_pages(Pid(2)) != 0 {
            return Err(format!("{label}: window still open after retry drain"));
        }
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read after drain: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.pipeline_points += 1;
    }
    Ok(())
}

/// Forks in the chaos snapshot train (the "10-deep" of the refcount
/// leak-freedom requirement: clean frames end up shared by the parent
/// plus up to ten live snapshot children).
const TRAIN_DEPTH: u32 = 10;

fn build_train(walk: WalkMode) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy: CopyStrategy::Full,
        walk,
        track_dirty: true,
        dedup_frames: true,
        ..UforkConfig::default()
    })
}

/// The value the train's round-`r` store writes into surviving slot
/// `r % 4`, and the value slot 0 held when the round-`r` child forked
/// (slot 0 is rewritten at rounds 0, 4, 8).
fn train_value(round: u32) -> u64 {
    0xD0 + u64::from(round)
}
fn train_slot0_at(round: u32) -> u64 {
    train_value(round - round % 4)
}

/// Drives one 10-deep snapshot train: per round, dirty one surviving
/// slot, fork a child that stays alive, and drain any pipelined window.
/// An injected journal abort is fatal for the syscall it lands in — the
/// op rolls back and surfaces an error — and the train then retries
/// that one step (the injection is one-shot). Returns how many aborts
/// surfaced.
fn drive_train(
    os: &mut UforkOs,
    ctx: &mut Ctx,
    caps: &[ufork_cheri::Capability],
    label: &str,
) -> Result<u32, String> {
    let mut aborts = 0u32;
    for round in 0..TRAIN_DEPTH {
        let child = Pid(2 + round);
        let slot = &caps[(round % 4) as usize];
        let bytes = train_value(round).to_le_bytes();
        if let Err(e) = os.store(ctx, Pid(1), slot, &bytes) {
            aborts += 1;
            os.store(ctx, Pid(1), slot, &bytes).map_err(|e2| {
                format!("{label}: round {round} store retry ({e:?}) failed: {e2:?}")
            })?;
        }
        let frames_before = os.allocated_frames();
        if let Err(e) = os.fork(ctx, Pid(1), child) {
            aborts += 1;
            if os.region_of(child).is_ok() {
                return Err(format!("{label}: aborted round-{round} fork left a child"));
            }
            if os.allocated_frames() != frames_before {
                return Err(format!("{label}: aborted round-{round} fork leaked frames"));
            }
            os.fork(ctx, Pid(1), child).map_err(|e2| {
                format!("{label}: round {round} fork retry ({e:?}) failed: {e2:?}")
            })?;
        }
        if let Err(e) = os.pipeline_drain(ctx, child) {
            aborts += 1;
            os.pipeline_drain(ctx, child).map_err(|e2| {
                format!("{label}: round {round} drain retry ({e:?}) failed: {e2:?}")
            })?;
        }
    }
    Ok(aborts)
}

/// Every child of the train is a point-in-time snapshot: round `r`'s
/// child must see slot 0 as it stood at its own fork, not the parent's
/// latest write — the dirty scope shares clean pages but must never
/// share dirty ones.
fn check_train_snapshots(
    os: &mut UforkOs,
    ctx: &mut Ctx,
    caps: &[ufork_cheri::Capability],
    label: &str,
) -> Result<(), String> {
    let p_root = os
        .reg(Pid(1), 0)
        .map_err(|e| format!("{label}: p root: {e:?}"))?;
    for round in 0..TRAIN_DEPTH {
        let child = Pid(2 + round);
        let c_root = os
            .reg(child, 0)
            .map_err(|e| format!("{label}: child {round} root: {e:?}"))?;
        let delta = c_root.base() as i64 - p_root.base() as i64;
        let cc = caps[0]
            .rebase(delta, &c_root)
            .map_err(|e| format!("{label}: child {round} rebase: {e:?}"))?;
        let mut b = [0u8; 8];
        os.load(ctx, child, &cc, &mut b)
            .map_err(|e| format!("{label}: child {round} read: {e:?}"))?;
        let want = train_slot0_at(round);
        if u64::from_le_bytes(b) != want {
            return Err(format!(
                "{label}: round-{round} child sees {:#x}, expected its fork-time {want:#x}",
                u64::from_le_bytes(b)
            ));
        }
    }
    Ok(())
}

/// Tears the whole train down — ten children sharing clean frames with
/// the parent through refcounts (and dedup'd frames with each other) —
/// and requires the allocator to balance to zero: the refcount
/// leak-freedom check of the dirty-scope machinery.
fn teardown_train(os: &mut UforkOs, ctx: &mut Ctx, label: &str) -> Result<(), String> {
    for round in 0..TRAIN_DEPTH {
        let child = Pid(2 + round);
        if os.region_of(child).is_ok() {
            os.destroy(ctx, child);
        }
    }
    teardown_clean(os, ctx, label)
}

/// Journal chaos across the dirty-scope snapshot train: a reference
/// train measures the journal window of ten generation-stamped forks
/// (dirty stamps, dirty-track cursor updates, clean-share and dedup
/// refcount bumps, plus everything the base walk records), then each op
/// index is aborted in its own replay. The abort must surface from
/// exactly the step it lands in, that step must retry clean, every
/// later child must still see its own fork-time snapshot, and teardown
/// of the full train must balance to zero frames. The window is
/// enumerated from `journal_ops_recorded`, so any journal op added to
/// the dirty-scope path widens this sweep automatically.
fn sweep_snapshot_train(walk: WalkMode, summary: &mut ChaosSummary) -> Result<(), String> {
    // Reference run: the train's journal window, and zero aborts.
    let (j0, j1) = {
        let mut os = build_train(walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        let aborts = drive_train(&mut os, &mut ctx, &caps, "train reference")?;
        if aborts != 0 {
            return Err(format!(
                "train/{walk:?}: reference run aborted {aborts} times"
            ));
        }
        check_train_snapshots(&mut os, &mut ctx, &caps, "train reference")?;
        teardown_train(&mut os, &mut ctx, "train reference")?;
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err(format!("train/{walk:?}: train recorded no journal ops"));
    }
    for op in j0..j1 {
        let label = format!("train/{walk:?} journal op {op}");
        let mut os = build_train(walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        os.inject_journal_failure(op);
        let aborts = drive_train(&mut os, &mut ctx, &caps, &label)?;
        if aborts != 1 {
            return Err(format!(
                "{label}: expected exactly 1 surfaced abort, saw {aborts}"
            ));
        }
        if ctx.counters.fork_rollbacks == 0 {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        check_train_snapshots(&mut os, &mut ctx, &caps, &label)?;
        check_consistent(&mut os, &mut ctx, &label)?;
        teardown_train(&mut os, &mut ctx, &label)?;
        summary.train_points += 1;
    }
    Ok(())
}

// ---- background-reclaim and OOM-teardown chaos -------------------------

/// Machine-global allocator snapshot for the reclaim/OOM abort checks.
fn alloc_snapshot(os: &UforkOs) -> (u64, u64, u64) {
    let s = os.mem_stats(Pid(1));
    (
        u64::from(os.allocated_frames()),
        s.pending_scrub,
        s.magazine_depth,
    )
}

/// Builds a kernel with the background reclaim daemon enabled, a parent
/// with the standard oracle heap, a forked-and-destroyed child whose
/// frames now sit unscrubbed in the shard pools, and the pressure
/// watermarks forced up so the hysteretic level reads `Elevated` —
/// exactly the state in which the executive would arm the daemon.
fn reclaim_prelude(os: &mut UforkOs, ctx: &mut Ctx) -> Result<Vec<Capability>, String> {
    let caps = prelude(os, ctx)?;
    os.fork(ctx, Pid(1), Pid(2))
        .map_err(|e| format!("reclaim prelude fork: {e:?}"))?;
    os.destroy(ctx, Pid(2));
    // 256 MiB = 65536 frames; a high watermark at capacity means any
    // allocation at all leaves availability below it.
    os.set_pressure_watermarks(32_768, 65_536);
    Ok(caps)
}

fn build_reclaim() -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy: CopyStrategy::Full,
        walk: WalkMode::Serial,
        reclaim_daemon: true,
        ..UforkConfig::default()
    })
}

/// Abort points inside the background reclaim daemon: a reference run
/// measures the journal window of a full scrub drain (every pooled
/// frame scrubbed into the clean-frame magazines, batch by batch), then
/// each `FrameScrub` op index is aborted in its own replay. The dying
/// pass must roll back whole — allocated frames, the unscrubbed-pool
/// count and the magazine depth all exactly as before the pass — the
/// one-shot injection must not survive into the retry, the drain must
/// then complete, and a subsequent fork must actually *hit* the
/// magazines its scrubs filled (pre-zeroed frames served on the fork
/// hot path). Teardown to zero frames at each point is the leak check.
fn sweep_reclaim_window(summary: &mut ChaosSummary) -> Result<(), String> {
    // Reference run: the journal window of a full drain.
    let (j0, j1) = {
        let mut os = build_reclaim();
        let mut ctx = Ctx::new();
        reclaim_prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        loop {
            match os.reclaim_step(&mut ctx) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => return Err(format!("reference reclaim drain failed: {e:?}")),
            }
        }
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err("reclaim drain recorded no journal ops".into());
    }
    for op in j0..j1 {
        let label = format!("reclaim op {op}");
        let mut os = build_reclaim();
        let mut ctx = Ctx::new();
        let caps = reclaim_prelude(&mut os, &mut ctx)?;
        let (frames0, pending0, depth0) = alloc_snapshot(&os);
        if pending0 == 0 {
            return Err(format!("{label}: prelude left nothing to scrub"));
        }
        os.inject_journal_failure(op);
        let rollbacks_before = ctx.counters.fork_rollbacks;
        let mut aborts = 0u32;
        loop {
            let before = alloc_snapshot(&os);
            match os.reclaim_step(&mut ctx) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    aborts += 1;
                    let after = alloc_snapshot(&os);
                    if after != before {
                        return Err(format!(
                            "{label}: dying pass leaked state ({before:?} -> {after:?})"
                        ));
                    }
                }
            }
        }
        if aborts != 1 {
            return Err(format!("{label}: expected 1 surfaced abort, saw {aborts}"));
        }
        if ctx.counters.fork_rollbacks == rollbacks_before {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        let (frames1, pending1, depth1) = alloc_snapshot(&os);
        if frames1 != frames0 {
            return Err(format!(
                "{label}: drain changed allocated frames ({frames0} -> {frames1})"
            ));
        }
        if pending1 != 0 || depth1 != depth0 + pending0 {
            return Err(format!(
                "{label}: drain left {pending1} unscrubbed, magazine {depth0}+{pending0} \
                 -> {depth1}"
            ));
        }
        if ctx.counters.frames_prezeroed < pending0 {
            return Err(format!(
                "{label}: only {} frames counted prezeroed of {pending0}",
                ctx.counters.frames_prezeroed
            ));
        }
        // The payoff: a fork right after the drain must serve its child
        // copies from the magazines the daemon filled.
        let hits_before = ctx.counters.magazine_hits;
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: post-drain fork failed: {e:?}"))?;
        if ctx.counters.magazine_hits == hits_before {
            return Err(format!("{label}: post-drain fork hit no magazine frame"));
        }
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.reclaim_points += 1;
    }
    Ok(())
}

/// Abort points inside the OOM victim memory teardown: a reference run
/// measures the journal window of one `oom_reap` of a forked child
/// (every mapped PTE detach recorded before the batched unmap), then
/// each op index is aborted in its own replay. An aborted kill must
/// leave the victim *completely untouched* — region present, heap
/// bit-readable, not a frame moved — because a victim that survives the
/// abort must still be killable by the retry, which must then release
/// its memory in full. Swept under the eager, CoW-sharing and pipelined
/// walks, since each leaves different reference-count shapes for the
/// teardown to unwind.
fn sweep_oom_teardown(summary: &mut ChaosSummary) -> Result<(), String> {
    const OOM_CONFIGS: [(CopyStrategy, WalkMode); 3] = [
        (CopyStrategy::Full, WalkMode::Serial),
        (CopyStrategy::CoA, WalkMode::Serial),
        (CopyStrategy::Full, WalkMode::Pipelined),
    ];
    for (strategy, walk) in OOM_CONFIGS {
        // Reference run: the reap's journal window.
        let (j0, j1) = {
            let mut os = build(strategy, walk);
            let mut ctx = Ctx::new();
            prelude(&mut os, &mut ctx)?;
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("oom/{strategy:?}/{walk:?}: reference fork: {e:?}"))?;
            let j0 = os.journal_ops_recorded();
            os.oom_reap(&mut ctx, Pid(2))
                .map_err(|e| format!("oom/{strategy:?}/{walk:?}: reference reap: {e:?}"))?;
            (j0, os.journal_ops_recorded())
        };
        if j1 == j0 {
            return Err(format!(
                "oom/{strategy:?}/{walk:?}: reap recorded no journal ops"
            ));
        }
        for op in j0..j1 {
            let label = format!("oom/{strategy:?}/{walk:?} journal op {op}");
            let mut os = build(strategy, walk);
            let mut ctx = Ctx::new();
            let caps = prelude(&mut os, &mut ctx)?;
            os.fork(&mut ctx, Pid(1), Pid(2))
                .map_err(|e| format!("{label}: fork failed: {e:?}"))?;
            let frames_before = os.allocated_frames();
            os.inject_journal_failure(op);
            let rollbacks_before = ctx.counters.fork_rollbacks;
            if os.oom_reap(&mut ctx, Pid(2)).is_ok() {
                return Err(format!("{label}: injected reap abort was absorbed"));
            }
            if ctx.counters.fork_rollbacks == rollbacks_before {
                return Err(format!("{label}: reap abort did not run a rollback"));
            }
            // The victim survives an aborted kill untouched.
            if os.region_of(Pid(2)).is_err() {
                return Err(format!("{label}: aborted reap lost the victim"));
            }
            if os.allocated_frames() != frames_before {
                return Err(format!(
                    "{label}: aborted reap moved frames ({frames_before} -> {})",
                    os.allocated_frames()
                ));
            }
            // Heap integrity check after the frame balance: under CoA
            // this read legitimately materializes a lazily-shared page.
            let cc = child_cap(&os, &caps[0])?;
            let mut b = [0u8; 8];
            os.load(&mut ctx, Pid(2), &cc, &mut b)
                .map_err(|e| format!("{label}: victim read after abort: {e:?}"))?;
            if u64::from_le_bytes(b) != 0xA0 {
                return Err(format!(
                    "{label}: victim sees {:#x} after abort, expected 0xA0",
                    u64::from_le_bytes(b)
                ));
            }
            check_consistent(&mut os, &mut ctx, &label)?;
            // The injection is one-shot: the retried kill must complete
            // and actually release the victim's memory.
            os.oom_reap(&mut ctx, Pid(2))
                .map_err(|e| format!("{label}: retry reap failed: {e:?}"))?;
            if os.region_of(Pid(2)).is_ok() {
                return Err(format!("{label}: victim still present after retry reap"));
            }
            teardown_clean(&mut os, &mut ctx, &label)?;
            summary.oom_points += 1;
        }
    }
    Ok(())
}

/// Which fault a mid-storm scenario arms once the storm is in flight.
#[derive(Clone, Copy, Debug)]
enum StormFault {
    /// A fatal journal abort: the fork in flight rolls back and fails,
    /// and the zygote's retry loop must absorb the failure.
    Journal,
    /// An allocator `NoMem`: the kernel's reclaim-then-retry loop may
    /// absorb it internally, or surface it for the zygote to retry.
    Alloc,
}

/// Mid-storm chaos: run a fork storm on the event-driven scheduler with
/// hundreds of live children, arm a one-shot fault *mid-flight* (after
/// the storm has built up real concurrency), and require the storm to
/// finish as if nothing happened — every child completed, the zygote
/// exits 0, and teardown balances to zero frames. Unlike
/// [`sweep_config`], the fork here fails under load, between thousands
/// of scheduler events, with the allocator warm and the journal window
/// mid-stream — the realistic shape of the failure, not the lab one.
fn storm_chaos(
    strategy: CopyStrategy,
    walk: WalkMode,
    fault: StormFault,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    const CHILDREN: u32 = 300;
    const ARMED_AFTER_FORKS: usize = 100;
    let label = format!("storm/{strategy:?}/{walk:?}/{fault:?}");
    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores: 4,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(StormZygote::new(StormConfig::standard(CHILDREN, 0xC0A5))),
        )
        .map_err(|e| format!("{label}: spawn failed: {e:?}"))?;
    // Let the storm build up: arm only once a third of the children are
    // already live and forking is in full swing.
    while m.fork_log().len() < ARMED_AFTER_FORKS {
        if !m.step() {
            return Err(format!(
                "{label}: machine drained after {} forks, before arming",
                m.fork_log().len()
            ));
        }
    }
    match fault {
        StormFault::Journal => m.os.inject_journal_failure(m.os.journal_ops_recorded() + 7),
        StormFault::Alloc => {
            m.os.inject_frame_alloc_failure(m.os.frame_alloc_attempts() + 13)
        }
    }
    m.run();
    if m.exit_code(pid) != Some(0) {
        return Err(format!(
            "{label}: zygote exited {:?}, expected 0",
            m.exit_code(pid)
        ));
    }
    let z = m
        .program::<StormZygote>(pid)
        .ok_or_else(|| format!("{label}: zygote state lost"))?;
    if z.completed != CHILDREN {
        return Err(format!(
            "{label}: {} of {CHILDREN} children completed",
            z.completed
        ));
    }
    if let StormFault::Journal = fault {
        // A journal abort always records a rollback, wherever it lands.
        if m.counters().fork_rollbacks == 0 {
            return Err(format!("{label}: no rollback recorded"));
        }
        // Under the serial/parallel walks the abort necessarily hits a
        // fork in flight, so it surfaces to the zygote's retry loop.
        // Under the pipelined walk it may instead land in a background
        // chunk, where the copy engine (or a demand fault) re-runs the
        // chunk without any program-visible failure — so no retry is
        // required there.
        if walk != WalkMode::Pipelined && z.retries == 0 {
            return Err(format!("{label}: zygote absorbed no fork failure"));
        }
    }
    let frames = m.os.allocated_frames();
    if frames != 0 {
        return Err(format!("{label}: {frames} frames leaked after drain"));
    }
    summary.storm_scenarios += 1;
    summary.storm_retries += u64::from(z.retries);
    summary.storm_rollbacks += m.counters().fork_rollbacks;
    Ok(())
}

/// Runs the whole sweep; returns what was exercised.
pub fn chaos_sweep() -> Result<ChaosSummary, String> {
    let mut summary = ChaosSummary::default();
    for (strategy, walk) in CONFIGS {
        sweep_config(strategy, walk, &mut summary)?;
    }
    // The same abort sweep with live ring endpoints in flight: every
    // strategy × walk, since each walk has its own Shm refcount-share
    // arm and register-relocation schedule to unwind.
    for (strategy, walk) in CONFIGS {
        sweep_ring_config(strategy, walk, &mut summary)?;
    }
    sweep_pipeline_window(&mut summary)?;
    sweep_reclaim_window(&mut summary)?;
    sweep_oom_teardown(&mut summary)?;
    // The dirty-scope snapshot train, under the serial and pipelined
    // walks (the two the 0.25× bench gate holds).
    sweep_snapshot_train(WalkMode::Serial, &mut summary)?;
    sweep_snapshot_train(WalkMode::Pipelined, &mut summary)?;
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        for fault in [StormFault::Journal, StormFault::Alloc] {
            storm_chaos(strategy, WalkMode::default(), fault, &mut summary)?;
        }
    }
    // The pipelined walk under load: the injection lands mid-storm,
    // either in a fork in flight or inside a background-copy chunk.
    for fault in [StormFault::Journal, StormFault::Alloc] {
        storm_chaos(CopyStrategy::Full, WalkMode::Pipelined, fault, &mut summary)?;
    }
    Ok(summary)
}
