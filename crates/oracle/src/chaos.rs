//! Auto-enumerated chaos sweep over the transactional fork journal.
//!
//! Where [`crate::fault`] injects failures at *allocator attempt*
//! granularity, this sweep works at *journal op* granularity: a clean
//! reference fork measures the window of journal records a fork of the
//! oracle image produces, then the scenario is replayed once per record
//! index with [`UforkOs::inject_journal_failure`] armed at exactly that
//! op. Injected journal aborts are flagged fatal — the kernel's
//! reclaim-then-retry loop must *not* absorb them — so each replay must
//! show a textbook transactional abort:
//!
//! * the fork fails (no partial child: no region, no process-table
//!   entry),
//! * every frame taken since the fork began is back
//!   (`allocated_frames` unchanged, `audit_kernel` balanced to zero),
//! * a rollback was recorded and ran in reverse op order,
//! * the parent is fully usable and an immediate retry succeeds with a
//!   bit-correct child,
//! * teardown afterwards releases everything down to zero frames.
//!
//! The sweep enumerates the window automatically, so a new journal op
//! added to the fork path is covered without touching this file. It runs
//! for all three copy strategies plus the parallel walk, exercising the
//! rollback of every op kind: the admission reservation, the region
//! grab, eager frame allocations, shared/lazy refcount bumps, child PTE
//! batches, parent COW arming, and the index/process-table inserts.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, Pid};
use ufork_exec::{Ctx, MemOs};

use crate::fault::{check_consistent, child_cap, prelude, teardown_clean};

/// What the sweep exercised (for reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSummary {
    /// Journal op indices replayed with an injected abort.
    pub points: u64,
    /// Strategy × walk-mode configurations swept.
    pub configs: u64,
}

/// Strategy × walk-mode configurations under sweep. The parallel walk
/// runs once (under Full, the op-richest strategy); lane-count variants
/// share its journal schedule, which the determinism properties already
/// pin down.
const CONFIGS: [(CopyStrategy, WalkMode); 4] = [
    (CopyStrategy::Full, WalkMode::Serial),
    (CopyStrategy::Full, WalkMode::Parallel(4)),
    (CopyStrategy::CoA, WalkMode::Serial),
    (CopyStrategy::CoPA, WalkMode::Serial),
];

fn build(strategy: CopyStrategy, walk: WalkMode) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    })
}

fn sweep_config(
    strategy: CopyStrategy,
    walk: WalkMode,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    // Reference run: measure the fork's journal-record window.
    let (j0, j1) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{strategy:?}/{walk:?}: reference fork failed: {e:?}"))?;
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err(format!(
            "{strategy:?}/{walk:?}: fork recorded no journal ops (window empty)"
        ));
    }
    for op in j0..j1 {
        let label = format!("{strategy:?}/{walk:?} journal op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        let frames_before = os.allocated_frames();
        os.inject_journal_failure(op);
        if os.fork(&mut ctx, Pid(1), Pid(2)).is_ok() {
            return Err(format!("{label}: injected abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == 0 {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        if os.region_of(Pid(2)).is_ok() {
            return Err(format!("{label}: aborted fork left a child behind"));
        }
        let frames = os.allocated_frames();
        if frames != frames_before {
            return Err(format!(
                "{label}: {} frames leaked ({frames_before} -> {frames})",
                frames as i64 - frames_before as i64
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        // The injection is one-shot: the retry must produce a complete,
        // correct child.
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: retry fork failed: {e:?}"))?;
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read after retry: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.points += 1;
    }
    summary.configs += 1;
    Ok(())
}

/// Runs the whole sweep; returns what was exercised.
pub fn chaos_sweep() -> Result<ChaosSummary, String> {
    let mut summary = ChaosSummary::default();
    for (strategy, walk) in CONFIGS {
        sweep_config(strategy, walk, &mut summary)?;
    }
    Ok(summary)
}
