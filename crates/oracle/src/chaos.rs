//! Auto-enumerated chaos sweep over the transactional fork journal.
//!
//! Where [`crate::fault`] injects failures at *allocator attempt*
//! granularity, this sweep works at *journal op* granularity: a clean
//! reference fork measures the window of journal records a fork of the
//! oracle image produces, then the scenario is replayed once per record
//! index with [`UforkOs::inject_journal_failure`] armed at exactly that
//! op. Injected journal aborts are flagged fatal — the kernel's
//! reclaim-then-retry loop must *not* absorb them — so each replay must
//! show a textbook transactional abort:
//!
//! * the fork fails (no partial child: no region, no process-table
//!   entry),
//! * every frame taken since the fork began is back
//!   (`allocated_frames` unchanged, `audit_kernel` balanced to zero),
//! * a rollback was recorded and ran in reverse op order,
//! * the parent is fully usable and an immediate retry succeeds with a
//!   bit-correct child,
//! * teardown afterwards releases everything down to zero frames.
//!
//! The sweep enumerates the window automatically, so a new journal op
//! added to the fork path is covered without touching this file. It runs
//! for all three copy strategies plus the parallel and pipelined walks,
//! exercising the rollback of every op kind: the admission reservation,
//! the region grab, eager frame allocations, shared/lazy refcount bumps,
//! child PTE batches, parent COW arming, and the index/process-table
//! inserts.
//!
//! Pipelined fork gets a second, wider window: after its fork commits,
//! the background copy runs per-chunk journal transactions of its own
//! (frame allocations, `PteRemap` rewrites, `RefDec` releases —
//! [`ufork::pipeline`]). [`sweep_pipeline_window`] enumerates every
//! journal op of a reference drain and aborts each one: the failing
//! chunk must roll back whole (the window shrinks only in chunk-sized
//! steps), nothing may leak, a retry drain must complete, and the child
//! must end bit-correct.

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_exec::{Ctx, Machine, MachineConfig, MemOs};
use ufork_workloads::storm::{StormConfig, StormZygote};

use crate::fault::{check_consistent, child_cap, prelude, teardown_clean};

/// What the sweep exercised (for reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSummary {
    /// Journal op indices replayed with an injected abort.
    pub points: u64,
    /// Abort points inside the pipelined background-copy window.
    pub pipeline_points: u64,
    /// Strategy × walk-mode configurations swept.
    pub configs: u64,
    /// Mid-storm injection scenarios run to clean completion.
    pub storm_scenarios: u64,
    /// Fork retries the storm zygotes absorbed across those scenarios.
    pub storm_retries: u64,
    /// Journal rollbacks recorded across those scenarios.
    pub storm_rollbacks: u64,
}

/// Strategy × walk-mode configurations under sweep. The parallel walk
/// runs once (under Full, the op-richest strategy); lane-count variants
/// share its journal schedule, which the determinism properties already
/// pin down.
const CONFIGS: [(CopyStrategy, WalkMode); 5] = [
    (CopyStrategy::Full, WalkMode::Serial),
    (CopyStrategy::Full, WalkMode::Parallel(4)),
    (CopyStrategy::Full, WalkMode::Pipelined),
    (CopyStrategy::CoA, WalkMode::Serial),
    (CopyStrategy::CoPA, WalkMode::Serial),
];

fn build(strategy: CopyStrategy, walk: WalkMode) -> UforkOs {
    UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    })
}

fn sweep_config(
    strategy: CopyStrategy,
    walk: WalkMode,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    // Reference run: measure the fork's journal-record window.
    let (j0, j1) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        let j0 = os.journal_ops_recorded();
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{strategy:?}/{walk:?}: reference fork failed: {e:?}"))?;
        (j0, os.journal_ops_recorded())
    };
    if j1 == j0 {
        return Err(format!(
            "{strategy:?}/{walk:?}: fork recorded no journal ops (window empty)"
        ));
    }
    for op in j0..j1 {
        let label = format!("{strategy:?}/{walk:?} journal op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        let frames_before = os.allocated_frames();
        os.inject_journal_failure(op);
        if os.fork(&mut ctx, Pid(1), Pid(2)).is_ok() {
            return Err(format!("{label}: injected abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == 0 {
            return Err(format!("{label}: abort did not run a rollback"));
        }
        if os.region_of(Pid(2)).is_ok() {
            return Err(format!("{label}: aborted fork left a child behind"));
        }
        let frames = os.allocated_frames();
        if frames != frames_before {
            return Err(format!(
                "{label}: {} frames leaked ({frames_before} -> {frames})",
                frames as i64 - frames_before as i64
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        // The injection is one-shot: the retry must produce a complete,
        // correct child.
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: retry fork failed: {e:?}"))?;
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read after retry: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.points += 1;
    }
    summary.configs += 1;
    Ok(())
}

/// Abort points inside the pipelined background-copy window: a
/// reference run measures the journal ops a full drain of the committed
/// fork's window records, then each op index is aborted in its own
/// replay. At every point the failing chunk must roll back whole —
/// the window only ever shrinks by whole chunks — the kernel must stay
/// balanced, the one-shot injection must not survive into the retry
/// drain, and the fully-drained child must read bit-correct. Teardown
/// to zero frames at each point is the leak check.
fn sweep_pipeline_window(summary: &mut ChaosSummary) -> Result<(), String> {
    let strategy = CopyStrategy::Full;
    let walk = WalkMode::Pipelined;
    // Reference run: fork commits, then the drain's journal window.
    let (j1, j2) = {
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        prelude(&mut os, &mut ctx)?;
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("pipeline reference fork failed: {e:?}"))?;
        let j1 = os.journal_ops_recorded();
        os.pipeline_drain(&mut ctx, Pid(2))
            .map_err(|e| format!("pipeline reference drain failed: {e:?}"))?;
        (j1, os.journal_ops_recorded())
    };
    if j2 == j1 {
        return Err("pipelined background window recorded no journal ops".into());
    }
    for op in j1..j2 {
        let label = format!("pipeline window op {op}");
        let mut os = build(strategy, walk);
        let mut ctx = Ctx::new();
        let caps = prelude(&mut os, &mut ctx)?;
        os.fork(&mut ctx, Pid(1), Pid(2))
            .map_err(|e| format!("{label}: fork failed: {e:?}"))?;
        let staged = os.pipeline_pending_pages(Pid(2));
        if staged == 0 {
            return Err(format!("{label}: pipelined fork left no window"));
        }
        os.inject_journal_failure(op);
        let rollbacks_before = ctx.counters.fork_rollbacks;
        if os.pipeline_drain(&mut ctx, Pid(2)).is_ok() {
            return Err(format!("{label}: injected chunk abort was absorbed"));
        }
        if ctx.counters.fork_rollbacks == rollbacks_before {
            return Err(format!("{label}: chunk abort did not run a rollback"));
        }
        // Chunk atomicity: the window shrinks only in whole chunks, so
        // the failing chunk is exactly as staged — never in between.
        let pending = os.pipeline_pending_pages(Pid(2));
        if pending == 0 || !(staged - pending).is_multiple_of(ufork::CHUNK_PAGES as u64) {
            return Err(format!(
                "{label}: window went {staged} -> {pending} pages (not chunk-aligned)"
            ));
        }
        check_consistent(&mut os, &mut ctx, &label)?;
        // The injection is one-shot: the retry drain must complete and
        // the child must end bit-correct.
        os.pipeline_drain(&mut ctx, Pid(2))
            .map_err(|e| format!("{label}: retry drain failed: {e:?}"))?;
        if os.pipeline_pending_pages(Pid(2)) != 0 {
            return Err(format!("{label}: window still open after retry drain"));
        }
        let cc = child_cap(&os, &caps[0])?;
        let mut b = [0u8; 8];
        os.load(&mut ctx, Pid(2), &cc, &mut b)
            .map_err(|e| format!("{label}: child read after drain: {e:?}"))?;
        if u64::from_le_bytes(b) != 0xA0 {
            return Err(format!(
                "{label}: child sees {:#x}, expected 0xA0",
                u64::from_le_bytes(b)
            ));
        }
        teardown_clean(&mut os, &mut ctx, &label)?;
        summary.pipeline_points += 1;
    }
    Ok(())
}

/// Which fault a mid-storm scenario arms once the storm is in flight.
#[derive(Clone, Copy, Debug)]
enum StormFault {
    /// A fatal journal abort: the fork in flight rolls back and fails,
    /// and the zygote's retry loop must absorb the failure.
    Journal,
    /// An allocator `NoMem`: the kernel's reclaim-then-retry loop may
    /// absorb it internally, or surface it for the zygote to retry.
    Alloc,
}

/// Mid-storm chaos: run a fork storm on the event-driven scheduler with
/// hundreds of live children, arm a one-shot fault *mid-flight* (after
/// the storm has built up real concurrency), and require the storm to
/// finish as if nothing happened — every child completed, the zygote
/// exits 0, and teardown balances to zero frames. Unlike
/// [`sweep_config`], the fork here fails under load, between thousands
/// of scheduler events, with the allocator warm and the journal window
/// mid-stream — the realistic shape of the failure, not the lab one.
fn storm_chaos(
    strategy: CopyStrategy,
    walk: WalkMode,
    fault: StormFault,
    summary: &mut ChaosSummary,
) -> Result<(), String> {
    const CHILDREN: u32 = 300;
    const ARMED_AFTER_FORKS: usize = 100;
    let label = format!("storm/{strategy:?}/{walk:?}/{fault:?}");
    let os = UforkOs::new(UforkConfig {
        phys_mib: 256,
        strategy,
        walk,
        ..UforkConfig::default()
    });
    let mut m = Machine::new(
        os,
        MachineConfig {
            cores: 4,
            ..MachineConfig::default()
        },
    );
    let pid = m
        .spawn(
            &ImageSpec::hello_world(),
            Box::new(StormZygote::new(StormConfig::standard(CHILDREN, 0xC0A5))),
        )
        .map_err(|e| format!("{label}: spawn failed: {e:?}"))?;
    // Let the storm build up: arm only once a third of the children are
    // already live and forking is in full swing.
    while m.fork_log().len() < ARMED_AFTER_FORKS {
        if !m.step() {
            return Err(format!(
                "{label}: machine drained after {} forks, before arming",
                m.fork_log().len()
            ));
        }
    }
    match fault {
        StormFault::Journal => m.os.inject_journal_failure(m.os.journal_ops_recorded() + 7),
        StormFault::Alloc => {
            m.os.inject_frame_alloc_failure(m.os.frame_alloc_attempts() + 13)
        }
    }
    m.run();
    if m.exit_code(pid) != Some(0) {
        return Err(format!(
            "{label}: zygote exited {:?}, expected 0",
            m.exit_code(pid)
        ));
    }
    let z = m
        .program::<StormZygote>(pid)
        .ok_or_else(|| format!("{label}: zygote state lost"))?;
    if z.completed != CHILDREN {
        return Err(format!(
            "{label}: {} of {CHILDREN} children completed",
            z.completed
        ));
    }
    if let StormFault::Journal = fault {
        // A journal abort always records a rollback, wherever it lands.
        if m.counters().fork_rollbacks == 0 {
            return Err(format!("{label}: no rollback recorded"));
        }
        // Under the serial/parallel walks the abort necessarily hits a
        // fork in flight, so it surfaces to the zygote's retry loop.
        // Under the pipelined walk it may instead land in a background
        // chunk, where the copy engine (or a demand fault) re-runs the
        // chunk without any program-visible failure — so no retry is
        // required there.
        if walk != WalkMode::Pipelined && z.retries == 0 {
            return Err(format!("{label}: zygote absorbed no fork failure"));
        }
    }
    let frames = m.os.allocated_frames();
    if frames != 0 {
        return Err(format!("{label}: {frames} frames leaked after drain"));
    }
    summary.storm_scenarios += 1;
    summary.storm_retries += u64::from(z.retries);
    summary.storm_rollbacks += m.counters().fork_rollbacks;
    Ok(())
}

/// Runs the whole sweep; returns what was exercised.
pub fn chaos_sweep() -> Result<ChaosSummary, String> {
    let mut summary = ChaosSummary::default();
    for (strategy, walk) in CONFIGS {
        sweep_config(strategy, walk, &mut summary)?;
    }
    sweep_pipeline_window(&mut summary)?;
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        for fault in [StormFault::Journal, StormFault::Alloc] {
            storm_chaos(strategy, WalkMode::default(), fault, &mut summary)?;
        }
    }
    // The pipelined walk under load: the injection lands mid-storm,
    // either in a fork in flight or inside a background-copy chunk.
    for fault in [StormFault::Journal, StormFault::Alloc] {
        storm_chaos(CopyStrategy::Full, WalkMode::Pipelined, fault, &mut summary)?;
    }
    Ok(summary)
}
