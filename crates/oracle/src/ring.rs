//! Ring-fabric differential: the multi-tier [`RingSvc`] workload run on
//! all four backends, comparing ring traffic bitwise.
//!
//! Timing and scheduling legitimately differ across backends (different
//! fork cost models), but the ring fabric is constructed so its
//! *observables* cannot: requests are key-partitioned onto per-worker
//! rings in a deterministic order, every ring is SPSC (one producer
//! process, one consumer process), and the store's per-key update order
//! is fixed by FIFO ring order. So for every ring the push/pop counts
//! and order-sensitive FNV digests — and the store's final KV digest —
//! must be identical across Full/CoA/CoPA and the multi-AS reference,
//! no matter how fork relocated the sealed endpoint capabilities in
//! between. A divergence means a ring was torn, a message duplicated or
//! lost, or an endpoint granted the wrong window after relocation.

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_baselines::{mono, BaselineConfig};
use ufork_exec::{Machine, MachineConfig, MemOs};
use ufork_workloads::ringsvc::{RingSvc, RingSvcConfig};

use crate::diff::Backend;

/// Everything compared across backends for one ring-service run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingObs {
    /// Exit code per pid (frontend, store, workers, snapshot child).
    pub exit_codes: Vec<(u32, Option<i32>)>,
    /// Per-ring `(name, pushed, popped, push digest, pop digest)`, in
    /// registry order.
    pub rings: Vec<(String, u64, u64, u64, u64)>,
    /// The store's serialized final state.
    pub dump: Option<Vec<u8>>,
    /// Requests the frontend sent / responses it got back.
    pub traffic: (u64, u64),
}

/// Runs the multi-tier service on one backend.
pub fn run_ringsvc(backend: Backend, cfg: &RingSvcConfig) -> Result<RingObs, String> {
    let prog = Box::new(RingSvc::new(cfg.clone()));
    let image = ImageSpec::hello_world();
    let mcfg = MachineConfig {
        cores: 4,
        ..MachineConfig::default()
    };
    match backend {
        Backend::MultiAs => {
            let os = mono(BaselineConfig {
                phys_mib: 256,
                ..BaselineConfig::default()
            });
            let mut m = Machine::new(os, mcfg);
            m.spawn(&image, prog).map_err(|e| format!("spawn: {e:?}"))?;
            m.run();
            observe(&m, backend, cfg)
        }
        _ => {
            let strategy = match backend {
                Backend::Full => CopyStrategy::Full,
                Backend::CoA => CopyStrategy::CoA,
                _ => CopyStrategy::CoPA,
            };
            let os = UforkOs::new(UforkConfig {
                phys_mib: 256,
                strategy,
                ..UforkConfig::default()
            });
            let mut m = Machine::new(os, mcfg);
            m.spawn(&image, prog).map_err(|e| format!("spawn: {e:?}"))?;
            m.run();
            observe(&m, backend, cfg)
        }
    }
}

fn observe<O: MemOs>(
    m: &Machine<O>,
    backend: Backend,
    cfg: &RingSvcConfig,
) -> Result<RingObs, String> {
    if m.counters().isolation_violations != 0 {
        return Err(format!(
            "{}: {} isolation violations",
            backend.name(),
            m.counters().isolation_violations
        ));
    }
    // frontend + store + workers + snapshot child, in fork order.
    let nprocs = cfg.workers as u32 + 3;
    let mut exit_codes = Vec::new();
    for pid in 1..=nprocs {
        let code = m.exit_code(Pid(pid));
        if code != Some(0) {
            return Err(format!(
                "{}: pid {pid} exited {code:?}, want Some(0)",
                backend.name()
            ));
        }
        exit_codes.push((pid, code));
    }
    let front = m
        .program::<RingSvc>(Pid(1))
        .ok_or_else(|| format!("{}: frontend program lost", backend.name()))?;
    if front.sent != cfg.requests || front.got != cfg.requests {
        return Err(format!(
            "{}: traffic sent {} got {}, want {} each",
            backend.name(),
            front.sent,
            front.got,
            cfg.requests
        ));
    }
    let rings = m
        .vfs()
        .ring_snapshot()
        .into_iter()
        .map(|(_, name, pushed, popped, pd, qd)| (name, pushed, popped, pd, qd))
        .collect();
    Ok(RingObs {
        exit_codes,
        rings,
        dump: m.vfs().file_contents(&cfg.dump_path).map(<[u8]>::to_vec),
        traffic: (front.sent, front.got),
    })
}

/// Runs one configuration across all four backends and demands bitwise
/// agreement on ring traffic, KV dump, exit codes, and request counts.
pub fn run_ring_case(cfg: &RingSvcConfig) -> Result<RingObs, String> {
    let base = run_ringsvc(Backend::Full, cfg).map_err(|e| format!("ufork-full: {e}"))?;
    if base.dump.is_none() {
        return Err("ufork-full: store never wrote its dump".to_string());
    }
    for b in [Backend::CoA, Backend::CoPA, Backend::MultiAs] {
        let o = run_ringsvc(b, cfg)?;
        if o != base {
            return Err(describe_diff(b, &base, &o));
        }
    }
    Ok(base)
}

fn describe_diff(b: Backend, a: &RingObs, o: &RingObs) -> String {
    for (x, y) in a.rings.iter().zip(&o.rings) {
        if x != y {
            return format!("ufork-full vs {}: ring {x:?} != {y:?}", b.name());
        }
    }
    if a.dump != o.dump {
        return format!(
            "ufork-full vs {}: store dump {:?} != {:?}",
            b.name(),
            a.dump,
            o.dump
        );
    }
    format!(
        "ufork-full vs {}: observations differ ({a:?} != {o:?})",
        b.name()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small end-to-end differential: a few hundred requests through
    /// the full three-tier fabric on every backend, bitwise-compared.
    #[test]
    fn ring_fabric_agrees_across_backends() {
        let cfg = RingSvcConfig {
            requests: 300,
            ..RingSvcConfig::default()
        };
        let obs = run_ring_case(&cfg).expect("backends agree");
        assert_eq!(obs.traffic, (300, 300));
        // 3W rings, all fully drained: pushed == popped on each.
        assert_eq!(obs.rings.len(), 3 * cfg.workers as usize);
        let mut req_msgs = 0;
        for (name, pushed, popped, _, _) in &obs.rings {
            assert_eq!(pushed, popped, "ring {name} drained");
            if name.starts_with("req") {
                req_msgs += pushed;
            }
        }
        assert_eq!(req_msgs, 300, "every request crossed a req ring");
    }
}
