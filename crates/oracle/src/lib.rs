//! Differential fork-semantics oracle for the μFork reproduction.
//!
//! The oracle answers one question from many angles: *do all three μFork
//! copy strategies and the multi-address-space reference kernel agree on
//! the observable semantics of `fork`?* It has five engines:
//!
//! 1. **Kernel-level differential** ([`diff`], [`driver`], [`gen`]) —
//!    seeded random programs of mallocs/frees, raw writes, pointer-graph
//!    stores/loads, nested forks and exits run directly against each
//!    kernel's [`ufork_exec::MemOs`] surface. Post-fork heap images are
//!    compared byte-for-byte for untagged granules and structurally
//!    (bounds, cursor, permissions, seal — all region-relative, i.e.
//!    modulo the documented relocation delta) for tagged ones.
//!    Divergences are minimized by chunk-removal shrinking.
//! 2. **Machine-level differential** ([`machine`]) — fork trees with
//!    pipe traffic, fd inheritance, waits and exit codes run on the full
//!    executive, sequentialized by synchronization so observations are
//!    cost-model-independent.
//! 3. **Deterministic fault injection** ([`fault`]) — every frame
//!    allocation attempt inside the fork walk and inside lazy CoA/CoPA
//!    fault resolution is made to fail, one run per attempt index; the
//!    kernel's reclaim-then-retry must absorb each transient failure
//!    without leaking a frame or a PTE, while μprocess-region exhaustion
//!    mid-fork must fail cleanly.
//! 4. **Journal chaos sweep** ([`chaos`]) — every journal op of a
//!    reference fork is made to abort, one run per op index, and the
//!    transactional rollback must balance frames, refcounts, PTEs and
//!    regions back to zero at each point. A second sweep replays every
//!    abort with live shared-memory ring endpoints and in-flight
//!    messages: the ring must come through untorn and the retried fork
//!    must relocate the sealed endpoints correctly.
//! 5. **Ring-fabric differential** ([`ring`]) — the multi-tier
//!    frontend/worker/store service run on all four backends, with ring
//!    push/pop counts, order-sensitive digests, and the store's final
//!    KV dump compared bitwise.
//!
//! Everything is replayable from a single seed:
//! `cargo run -p ufork-oracle -- --seed N --cases M` (or the
//! `ORACLE_SEED` / `ORACLE_CASES` environment variables).

pub mod chaos;
pub mod diff;
pub mod driver;
pub mod fault;
pub mod gen;
pub mod machine;
pub mod ring;

use ufork_testkit::Rng;

/// Derives the per-case RNG from the suite seed (stable across runs and
/// platforms; case `k` can be replayed alone).
pub fn case_rng(seed: u64, case: u64) -> Rng {
    let mut r = Rng::new(seed.wrapping_add(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    r.split()
}

/// Outcome of a whole oracle run.
#[derive(Debug, Default)]
pub struct OracleReport {
    /// Kernel-level differential cases that agreed.
    pub kernel_cases: u64,
    /// Machine-level differential cases that agreed.
    pub machine_cases: u64,
    /// Fault-injection points exercised (0 when skipped).
    pub fault_points: u64,
    /// Journal chaos-sweep abort points exercised (0 when skipped).
    pub chaos_points: u64,
    /// Chaos abort points replayed with live ring endpoints in flight
    /// (0 when skipped).
    pub ring_chaos_points: u64,
    /// Ring-fabric differential runs that agreed bitwise across all
    /// four backends (0 when skipped).
    pub ring_cases: u64,
    /// Abort points inside the pipelined background-copy window (0 when
    /// skipped).
    pub pipeline_chaos_points: u64,
    /// Abort points inside the 10-deep dirty-scope snapshot train (0
    /// when skipped).
    pub train_chaos_points: u64,
    /// Mid-storm injection scenarios run to clean completion (0 when
    /// skipped).
    pub storm_chaos_scenarios: u64,
    /// Abort points inside background-reclaim scrub passes (0 when
    /// skipped).
    pub reclaim_chaos_points: u64,
    /// Abort points inside OOM victim memory teardowns (0 when
    /// skipped).
    pub oom_chaos_points: u64,
    /// Human-readable failures (empty = success).
    pub failures: Vec<String>,
}

impl OracleReport {
    /// True when every engine passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the kernel-level differential for `cases` seeded programs.
pub fn run_kernel_diff(seed: u64, cases: u64, report: &mut OracleReport) {
    for case in 0..cases {
        let mut rng = case_rng(seed, case);
        let prog = gen::gen_kernel_program(&mut rng);
        let aslr = rng.next_u64();
        match diff::run_case(&prog, aslr) {
            diff::CaseOutcome::Agree => report.kernel_cases += 1,
            diff::CaseOutcome::Diverged { program, report: r } => {
                report.failures.push(format!(
                    "kernel case {case} (seed {seed}): {r}\n  minimized program \
                     ({} ops): {:?}",
                    program.ops.len(),
                    program.ops
                ));
            }
        }
    }
}

/// Runs the machine-level differential for `cases` seeded fork trees.
pub fn run_machine_diff(seed: u64, cases: u64, report: &mut OracleReport) {
    for case in 0..cases {
        // Distinct stream from the kernel diff.
        let mut rng = case_rng(seed ^ 0x6d61_6368, case);
        let mut budget = gen::MAX_PROCS;
        let tree = gen::gen_tree(&mut rng, &mut budget, 0);
        match machine::run_machine_case(&tree) {
            Ok(()) => report.machine_cases += 1,
            Err((min, r)) => {
                report.failures.push(format!(
                    "machine case {case} (seed {seed}): {r}\n  minimized tree: {min:?}"
                ));
            }
        }
    }
}

/// Runs the fault-injection campaign.
pub fn run_faults(report: &mut OracleReport) {
    match fault::fault_campaign() {
        Ok(s) => {
            report.fault_points =
                s.fork_walk_points + s.lazy_copy_points + s.region_exhaustion_forks;
        }
        Err(e) => report.failures.push(format!("fault campaign: {e}")),
    }
}

/// Runs the journal chaos sweep (every journal op index aborted once,
/// plus mid-storm journal/allocator injections under scheduler load).
pub fn run_chaos(report: &mut OracleReport) {
    match chaos::chaos_sweep() {
        Ok(s) => {
            report.chaos_points = s.points;
            report.ring_chaos_points = s.ring_points;
            report.pipeline_chaos_points = s.pipeline_points;
            report.train_chaos_points = s.train_points;
            report.storm_chaos_scenarios = s.storm_scenarios;
            report.reclaim_chaos_points = s.reclaim_points;
            report.oom_chaos_points = s.oom_points;
        }
        Err(e) => report.failures.push(format!("chaos sweep: {e}")),
    }
}

/// Runs the ring-fabric differential: the multi-tier service on all
/// four backends, ring traffic and KV digests compared bitwise.
pub fn run_ring_diff(report: &mut OracleReport) {
    let cfg = ufork_workloads::ringsvc::RingSvcConfig {
        requests: 600,
        ..Default::default()
    };
    match ring::run_ring_case(&cfg) {
        Ok(_) => report.ring_cases += 1,
        Err(e) => report.failures.push(format!("ring differential: {e}")),
    }
}

/// The full oracle: kernel diff, machine diff, ring diff, fault
/// campaign, chaos sweep.
pub fn run_oracle(seed: u64, cases: u64, skip_faults: bool) -> OracleReport {
    let mut report = OracleReport::default();
    run_kernel_diff(seed, cases, &mut report);
    // Machine cases are slower (full executive); run a proportional slice.
    run_machine_diff(seed, cases.div_ceil(5), &mut report);
    run_ring_diff(&mut report);
    if !skip_faults {
        run_faults(&mut report);
        run_chaos(&mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_stable() {
        assert_eq!(case_rng(1, 0).next_u64(), case_rng(1, 0).next_u64());
        assert_ne!(case_rng(1, 0).next_u64(), case_rng(1, 1).next_u64());
        assert_ne!(case_rng(1, 0).next_u64(), case_rng(2, 0).next_u64());
    }
}
