//! Kernel-level differential driver.
//!
//! Runs a [`KernelProgram`] directly against any [`MemOs`] implementation
//! and extracts a *normalized* [`Observation`]: every address is reported
//! relative to the owning μprocess' region base, so observations from
//! μFork (child copied to a different region, capabilities rebased by the
//! relocation delta) and from the multi-address-space baseline (child at
//! the same virtual addresses) are directly comparable. This is the
//! "byte-for-byte modulo the documented relocation delta" comparison:
//! untagged granules are compared as raw bytes, tagged granules
//! structurally (region-relative bounds, cursor, permissions, seal).
//!
//! The driver also checks per-backend *invariants* that are not part of
//! the cross-backend comparison: capability confinement audits and
//! zero leaked frames after tearing every μprocess down.

use ufork_abi::{ImageSpec, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};

use crate::gen::{KernelProgram, Op, HEAP_BYTES, MAX_PROCS, SLOTS};

/// One observed 16-byte granule of a live allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GranuleObs {
    /// Untagged data, raw bytes.
    Bytes([u8; 16]),
    /// A tagged capability, normalized region-relative.
    Cap {
        /// `base - region_base` of the owning μprocess.
        rel_base: u64,
        /// Capability length.
        len: u64,
        /// `addr - region_base` (cursor), wrapping.
        rel_addr: u64,
        /// Permission bits.
        perms: u16,
        /// Whether the capability is sealed.
        sealed: bool,
    },
    /// The granule could not be read (recorded, still comparable).
    Unreadable(String),
}

/// One live allocation at the end of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocObs {
    /// `cap.base() - region_base`.
    pub rel_base: u64,
    /// Allocation length (capability length).
    pub len: u64,
    /// Granule-by-granule contents.
    pub granules: Vec<GranuleObs>,
}

/// Final state of one μprocess.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcObs {
    /// Per-slot allocations (`None` = slot empty).
    pub slots: Vec<Option<AllocObs>>,
}

/// Everything compared across backends for one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// One entry per executed op: the op's normalized outcome.
    pub trace: Vec<String>,
    /// Final state per μprocess ordinal (`None` = exited).
    pub finals: Vec<Option<ProcObs>>,
}

/// Per-backend invariants (not compared, must hold individually).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Invariants {
    /// Sum of `audit_isolation` over all live μprocesses.
    pub isolation_violations: usize,
    /// `allocated_frames()` after destroying every μprocess.
    pub frames_after_teardown: u32,
}

/// Result of driving one program against one backend.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The normalized observation (cross-backend comparable).
    pub obs: Observation,
    /// Backend-local invariants.
    pub invariants: Invariants,
}

struct DrvProc {
    pid: Pid,
    alive: bool,
    /// Base of `reg(0)` — used to compute the fork relocation delta.
    root_base: u64,
    /// Normalization origin for observed addresses: the base of a
    /// calibration allocation made right after spawn. Region bases and
    /// heap offsets are backend-specific (the multi-AS baseline maps
    /// extra image bytes below the heap), but talloc's *internal* arena
    /// offsets are identical across backends, so anchoring at a heap
    /// address makes observations comparable.
    anchor: u64,
    slots: Vec<Option<Capability>>,
}

/// The image every oracle μprocess runs.
pub fn oracle_image() -> ImageSpec {
    ImageSpec::with_heap("oracle", HEAP_BYTES)
}

/// Runs `prog` against `os`, returning the observation + invariants.
///
/// `os` must be freshly constructed; the driver spawns `Pid(1)` itself
/// and destroys everything before returning.
pub fn run_program<O: MemOs>(os: &mut O, prog: &KernelProgram) -> Result<RunResult, String> {
    let mut ctx = Ctx::new();
    let image = oracle_image();
    os.spawn(&mut ctx, Pid(1), &image)
        .map_err(|e| format!("spawn failed: {e:?}"))?;
    let root = os
        .reg(Pid(1), 0)
        .map_err(|e| format!("no data root: {e:?}"))?;
    // Calibration allocation: anchors normalization at a heap address
    // (freed immediately; the talloc state change is identical on every
    // backend, so traces stay aligned).
    let probe = os
        .malloc(&mut ctx, Pid(1), 16)
        .map_err(|e| format!("calibration malloc: {e:?}"))?;
    let anchor = probe.base();
    os.mfree(&mut ctx, Pid(1), &probe)
        .map_err(|e| format!("calibration free: {e:?}"))?;
    let mut procs = vec![DrvProc {
        pid: Pid(1),
        alive: true,
        root_base: root.base(),
        anchor,
        slots: vec![None; SLOTS],
    }];
    let mut current = 0usize;
    let mut trace = Vec::with_capacity(prog.ops.len());

    for op in &prog.ops {
        let t = exec_op(os, &mut ctx, &mut procs, &mut current, *op);
        trace.push(t);
    }

    // Final-state extraction (may materialize lazy pages: every backend
    // performs the identical access sequence, so this is sound).
    let mut finals = Vec::with_capacity(procs.len());
    let mut violations = 0usize;
    for p in &procs {
        if !p.alive {
            finals.push(None);
            continue;
        }
        violations += os.audit_isolation(p.pid);
        let mut slots = Vec::with_capacity(SLOTS);
        for slot in &p.slots {
            slots.push(slot.map(|cap| observe_alloc(os, &mut ctx, p, &cap)));
        }
        finals.push(Some(ProcObs { slots }));
    }

    // Teardown: every frame must come back.
    for p in &procs {
        if p.alive {
            os.destroy(&mut ctx, p.pid);
        }
    }
    Ok(RunResult {
        obs: Observation { trace, finals },
        invariants: Invariants {
            isolation_violations: violations,
            frames_after_teardown: os.allocated_frames(),
        },
    })
}

fn cursor_at(cap: &Capability, off: u64) -> Option<Capability> {
    cap.with_addr(cap.base().checked_add(off)?).ok()
}

fn exec_op<O: MemOs>(
    os: &mut O,
    ctx: &mut Ctx,
    procs: &mut Vec<DrvProc>,
    current: &mut usize,
    op: Op,
) -> String {
    let cur = *current;
    let pid = procs[cur].pid;
    match op {
        Op::Malloc { slot, len } => {
            let slot = slot as usize;
            match os.malloc(ctx, pid, u64::from(len)) {
                Ok(cap) => {
                    let rel = cap.base().wrapping_sub(procs[cur].anchor);
                    procs[cur].slots[slot] = Some(cap);
                    format!("m{slot}=ok@{rel:x}+{}", cap.len())
                }
                Err(e) => format!("m{slot}=err{e:?}"),
            }
        }
        Op::Free { slot } => {
            let slot = slot as usize;
            let Some(cap) = procs[cur].slots[slot] else {
                return "free=skip".into();
            };
            procs[cur].slots[slot] = None;
            match os.mfree(ctx, pid, &cap) {
                Ok(()) => format!("free{slot}=ok"),
                Err(e) => format!("free{slot}=err{e:?}"),
            }
        }
        Op::Write { slot, granule, val } => {
            let Some(cap) = procs[cur].slots[slot as usize] else {
                return "w=skip".into();
            };
            let off = u64::from(granule) * 16;
            if off + 8 > cap.len() {
                return "w=skip".into();
            }
            let Some(at) = cursor_at(&cap, off) else {
                return "w=badcur".into();
            };
            match os.store(ctx, pid, &at, &val.to_le_bytes()) {
                Ok(()) => "w=ok".into(),
                Err(e) => format!("w=err{e:?}"),
            }
        }
        Op::StorePtr { src, granule, dst } => {
            let (Some(s), Some(d)) = (
                procs[cur].slots[src as usize],
                procs[cur].slots[dst as usize],
            ) else {
                return "sp=skip".into();
            };
            let off = u64::from(granule) * 16;
            if off + 16 > s.len() {
                return "sp=skip".into();
            }
            let Some(at) = cursor_at(&s, off) else {
                return "sp=badcur".into();
            };
            match os.store_cap(ctx, pid, &at, &d) {
                Ok(()) => "sp=ok".into(),
                Err(e) => format!("sp=err{e:?}"),
            }
        }
        Op::ClearPtr { slot, granule } => {
            let Some(cap) = procs[cur].slots[slot as usize] else {
                return "cp=skip".into();
            };
            let off = u64::from(granule) * 16;
            if off + 16 > cap.len() {
                return "cp=skip".into();
            }
            let Some(at) = cursor_at(&cap, off) else {
                return "cp=badcur".into();
            };
            match os.store(ctx, pid, &at, &[0xEE; 16]) {
                Ok(()) => "cp=ok".into(),
                Err(e) => format!("cp=err{e:?}"),
            }
        }
        Op::FollowPtr { slot, granule } => {
            let Some(cap) = procs[cur].slots[slot as usize] else {
                return "f=skip".into();
            };
            let off = u64::from(granule) * 16;
            if off + 16 > cap.len() {
                return "f=skip".into();
            }
            let Some(at) = cursor_at(&cap, off) else {
                return "f=badcur".into();
            };
            match os.load_cap(ctx, pid, &at) {
                Ok(Some(target)) => {
                    let rel = target.base().wrapping_sub(procs[cur].anchor);
                    // Only read raw data through the pointer when the
                    // target granule is untagged: tagged granules hold
                    // backend-specific absolute cursors in their byte
                    // view and are compared structurally instead.
                    let Some(tat) = target.with_addr(target.base()).ok() else {
                        return format!("f=ok@{rel:x}:badcur");
                    };
                    match os.load_cap(ctx, pid, &tat) {
                        Ok(Some(inner)) => {
                            let irel = inner.base().wrapping_sub(procs[cur].anchor);
                            format!("f=ok@{rel:x}:cap@{irel:x}")
                        }
                        Ok(None) => {
                            let mut b = [0u8; 8];
                            match os.load(ctx, pid, &tat, &mut b) {
                                Ok(()) => {
                                    format!("f=ok@{rel:x}:{:x}", u64::from_le_bytes(b))
                                }
                                Err(e) => format!("f=ok@{rel:x}:rderr{e:?}"),
                            }
                        }
                        Err(e) => format!("f=ok@{rel:x}:tagerr{e:?}"),
                    }
                }
                Ok(None) => "f=untagged".into(),
                Err(e) => format!("f=err{e:?}"),
            }
        }
        Op::Fork => {
            if procs.len() >= MAX_PROCS {
                return "fork=skip".into();
            }
            let child = Pid(procs.len() as u32 + 1);
            match os.fork(ctx, pid, child) {
                Ok(()) => {
                    let Ok(c_root) = os.reg(child, 0) else {
                        return "fork=noroot".into();
                    };
                    let delta = c_root.base() as i64 - procs[cur].root_base as i64;
                    let slots = procs[cur]
                        .slots
                        .iter()
                        .map(|s| s.and_then(|cap| cap.rebase(delta, &c_root).ok()))
                        .collect();
                    let ord = procs.len();
                    let anchor = procs[cur].anchor.wrapping_add_signed(delta);
                    procs.push(DrvProc {
                        pid: child,
                        alive: true,
                        root_base: c_root.base(),
                        anchor,
                        slots,
                    });
                    // The child runs next (deterministic convention).
                    *current = ord;
                    format!("fork=ok#{ord}")
                }
                Err(e) => format!("fork=err{e:?}"),
            }
        }
        Op::Switch { idx } => {
            let alive: Vec<usize> = (0..procs.len()).filter(|i| procs[*i].alive).collect();
            let ord = alive[idx as usize % alive.len()];
            *current = ord;
            format!("sw={ord}")
        }
        Op::Exit => {
            let alive: Vec<usize> = (0..procs.len()).filter(|i| procs[*i].alive).collect();
            if alive.len() <= 1 {
                return "exit=skip".into();
            }
            os.destroy(ctx, pid);
            procs[cur].alive = false;
            procs[cur].slots.iter_mut().for_each(|s| *s = None);
            *current = (0..procs.len())
                .find(|i| procs[*i].alive)
                .expect("someone survives");
            format!("exit={cur}")
        }
    }
}

fn observe_alloc<O: MemOs>(os: &mut O, ctx: &mut Ctx, p: &DrvProc, cap: &Capability) -> AllocObs {
    let n_granules = cap.len() / 16;
    let mut granules = Vec::with_capacity(n_granules as usize);
    for g in 0..n_granules {
        let Some(at) = cursor_at(cap, g * 16) else {
            granules.push(GranuleObs::Unreadable("badcur".into()));
            continue;
        };
        match os.load_cap(ctx, p.pid, &at) {
            Ok(Some(c)) => granules.push(GranuleObs::Cap {
                rel_base: c.base().wrapping_sub(p.anchor),
                len: c.len(),
                rel_addr: c.addr().wrapping_sub(p.anchor),
                perms: c.perms().bits(),
                sealed: c.is_sealed(),
            }),
            Ok(None) => {
                let mut b = [0u8; 16];
                match os.load(ctx, p.pid, &at, &mut b) {
                    Ok(()) => granules.push(GranuleObs::Bytes(b)),
                    Err(e) => granules.push(GranuleObs::Unreadable(format!("{e:?}"))),
                }
            }
            Err(e) => granules.push(GranuleObs::Unreadable(format!("tag:{e:?}"))),
        }
    }
    AllocObs {
        rel_base: cap.base().wrapping_sub(p.anchor),
        len: cap.len(),
        granules,
    }
}
