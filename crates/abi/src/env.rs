//! The [`Env`] trait: everything a program can do inline.

use ufork_cheri::Capability;

use crate::{Errno, Fd, Pid};

/// Result type for program-visible operations.
pub type SysResult<T> = Result<T, Errno>;

/// The execution environment handed to a [`crate::Program`] on resume.
///
/// Memory operations go through the simulated MMU: capability bounds and
/// permissions are checked, page permissions are enforced, and transparent
/// faults (CoW / CoA / CoPA) are resolved by the kernel *inside* the call,
/// charging simulated time — the program only observes hard failures.
///
/// All operations charge simulated time; [`Env::now`] exposes the clock.
pub trait Env {
    // ---- memory --------------------------------------------------------

    /// Loads `buf.len()` bytes from the capability's cursor.
    fn load(&mut self, cap: &Capability, buf: &mut [u8]) -> SysResult<()>;

    /// Stores `data` at the capability's cursor.
    fn store(&mut self, cap: &Capability, data: &[u8]) -> SysResult<()>;

    /// Loads a capability from the (granule-aligned) cursor.
    ///
    /// Returns `Ok(None)` when the location's tag is clear — the bytes are
    /// plain data. May trigger a CoPA copy when the page has the
    /// load-capability fault bit set.
    fn load_cap(&mut self, cap: &Capability) -> SysResult<Option<Capability>>;

    /// Stores a capability at the (granule-aligned) cursor, setting its
    /// tag.
    fn store_cap(&mut self, cap: &Capability, value: &Capability) -> SysResult<()>;

    // ---- register file ---------------------------------------------------

    /// Reads capability register `idx`.
    ///
    /// Registers are relocated at fork; this is where programs must keep
    /// long-lived pointers (see the crate-level contract).
    fn reg(&self, idx: usize) -> SysResult<Capability>;

    /// Writes capability register `idx`.
    fn set_reg(&mut self, idx: usize, cap: Capability) -> SysResult<()>;

    // ---- user-level allocator --------------------------------------------

    /// Allocates `len` bytes from the μprocess heap.
    ///
    /// The allocator's metadata lives in simulated μprocess memory (block
    /// headers with capability links), so fork genuinely has to copy and
    /// relocate it.
    fn malloc(&mut self, len: u64) -> SysResult<Capability>;

    /// Frees an allocation returned by [`Env::malloc`].
    fn mfree(&mut self, cap: &Capability) -> SysResult<()>;

    // ---- compute ---------------------------------------------------------

    /// Charges `n` generic ALU/memory operations of simulated CPU time.
    fn cpu_ops(&mut self, n: u64);

    /// Charges `n` floating-point loop iterations.
    fn cpu_flops(&mut self, n: u64);

    // ---- non-blocking system calls ----------------------------------------

    /// Writes `len` bytes from `buf`'s cursor to `fd`. Never blocks:
    /// files are ram-disk backed, and a pipe whose bounded buffer cannot
    /// take the whole write returns [`Errno::Again`] (use
    /// [`crate::BlockingCall::Write`] to block until space drains).
    fn sys_write(&mut self, fd: Fd, buf: &Capability, len: u64) -> SysResult<u64>;

    /// Attempts a non-blocking read; `Ok(0)` may mean end-of-file.
    ///
    /// Returns [`Errno::Again`] when no data is available yet — use
    /// [`crate::BlockingCall::Read`] to block instead.
    fn sys_read_nonblock(&mut self, fd: Fd, buf: &Capability, len: u64) -> SysResult<u64>;

    /// Opens (optionally creating) a ram-disk file.
    fn sys_open(&mut self, path: &str, create: bool) -> SysResult<Fd>;

    /// Closes a descriptor.
    fn sys_close(&mut self, fd: Fd) -> SysResult<()>;

    /// Atomically renames a ram-disk file (Redis' tempfile → dump.rdb).
    fn sys_rename(&mut self, from: &str, to: &str) -> SysResult<()>;

    /// Creates a pipe; returns `(read_end, write_end)`.
    fn sys_pipe(&mut self) -> SysResult<(Fd, Fd)>;

    /// Opens (optionally creating) a named shared-memory object of `len`
    /// bytes and maps it, returning a capability to the mapping
    /// (paper §3.7: shared memory across μprocesses).
    fn sys_shm_open(&mut self, name: &str, len: u64) -> SysResult<Capability>;

    /// Maps `len` bytes of fresh anonymous memory into the μprocess'
    /// mmap window, returning a capability to it. The kernel serves the
    /// request from the calling μprocess' own region (paper §4.2: "the
    /// kernel ensures anonymous mmap requests are served by returning
    /// capabilities pointing to the calling μprocess virtual memory
    /// area").
    fn sys_mmap_anon(&mut self, len: u64) -> SysResult<Capability>;

    /// Sends a termination signal to another process (SIGKILL-style:
    /// takes effect before the target's next step).
    fn sys_kill(&mut self, pid: Pid) -> SysResult<()>;

    // ---- shared-memory descriptor rings ------------------------------------

    /// Opens (creating on first open) one end of the named SPSC
    /// descriptor ring with `slots` messages of `msg_bytes` each, backed
    /// by shared-memory frames. Returns the end's descriptor plus a
    /// **sealed** endpoint capability covering the ring window; the
    /// program cannot dereference it (the seal forbids load/store) but
    /// must present it to push/pop, and fork relocates it like any other
    /// register capability — seal intact (paper §3.6: sealed caps are
    /// relocated, not laundered).
    fn sys_ring_open(
        &mut self,
        name: &str,
        slots: u64,
        msg_bytes: u64,
        producer: bool,
    ) -> SysResult<(Fd, Capability)>;

    /// Attempts to push one `msg_bytes`-sized message from `buf` onto the
    /// ring behind `fd` without blocking. `ring` is the sealed endpoint
    /// capability from [`Env::sys_ring_open`]. Returns the bytes
    /// enqueued, [`Errno::Again`] when the ring is full, or
    /// [`Errno::BadFd`] when no consumer end remains (EPIPE).
    fn sys_ring_try_push(
        &mut self,
        fd: Fd,
        ring: &Capability,
        buf: &Capability,
        len: u64,
    ) -> SysResult<u64>;

    /// Attempts to pop one message into `buf` without blocking. Returns
    /// the message size, `Ok(0)` when the ring is empty but producers
    /// remain, or [`crate::RING_EOF`] when it is drained and every
    /// producer end has closed.
    fn sys_ring_try_pop(&mut self, fd: Fd, ring: &Capability, buf: &Capability) -> SysResult<u64>;

    // ---- identity & time ---------------------------------------------------

    /// This μprocess' PID (a real syscall; charged as one).
    fn sys_getpid(&mut self) -> Pid;

    /// Current simulated time in nanoseconds (free: vDSO-style).
    fn now(&self) -> f64;

    // ---- convenience (provided) --------------------------------------------

    /// Loads a little-endian `u64` from the cursor.
    fn load_u64(&mut self, cap: &Capability) -> SysResult<u64> {
        let mut b = [0u8; 8];
        self.load(cap, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Stores a little-endian `u64` at the cursor.
    fn store_u64(&mut self, cap: &Capability, v: u64) -> SysResult<()> {
        self.store(cap, &v.to_le_bytes())
    }

    /// Loads a capability from `base + off`.
    fn load_cap_at(&mut self, base: &Capability, off: u64) -> SysResult<Option<Capability>> {
        let c = base
            .with_addr(base.base() + off)
            .map_err(|_| Errno::Fault)?;
        self.load_cap(&c)
    }

    /// Stores a capability at `base + off`.
    fn store_cap_at(&mut self, base: &Capability, off: u64, value: &Capability) -> SysResult<()> {
        let c = base
            .with_addr(base.base() + off)
            .map_err(|_| Errno::Fault)?;
        self.store_cap(&c, value)
    }
}
