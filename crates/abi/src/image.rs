//! Process image descriptions.

/// Describes the initial memory image of a program, in application terms.
///
/// Each backend translates this into its own layout: μFork lays the image
/// out in a contiguous μprocess region (paper §3.7, Figure 1: code +
/// read-only data, GOT, stack, TLS/heap); the monolithic baseline adds its
/// shared-library and dynamic-allocator overhead; the VM-cloning baseline
/// adds the whole guest OS image.
#[derive(Clone, Debug)]
pub struct ImageSpec {
    /// Program name (diagnostics only).
    pub name: String,
    /// Code + read-only data, in bytes.
    pub text_bytes: u64,
    /// Initialized writable data, in bytes.
    pub data_bytes: u64,
    /// μprocess heap size (build-time-configurable static heap in the
    /// μFork prototype, paper §4.2).
    pub heap_bytes: u64,
    /// Stack size in bytes.
    pub stack_bytes: u64,
    /// Number of GOT slots (one capability per global object/function).
    pub got_slots: u64,
}

impl ImageSpec {
    /// A minimal hello-world-sized image (paper §5.2 microbenchmarks:
    /// a forked minimal process occupies ~0.13 MB on μFork).
    pub fn hello_world() -> ImageSpec {
        ImageSpec {
            name: "hello".into(),
            text_bytes: 48 * 1024,
            data_bytes: 16 * 1024,
            heap_bytes: 128 * 1024,
            stack_bytes: 64 * 1024,
            got_slots: 64,
        }
    }

    /// An image with a heap sized for a given working set, as the μFork
    /// prototype's build-time heap configuration would be.
    pub fn with_heap(name: &str, heap_bytes: u64) -> ImageSpec {
        ImageSpec {
            name: name.into(),
            text_bytes: 512 * 1024,
            data_bytes: 128 * 1024,
            heap_bytes,
            stack_bytes: 128 * 1024,
            got_slots: 256,
        }
    }

    /// Total bytes of the image.
    pub fn total_bytes(&self) -> u64 {
        self.text_bytes + self.data_bytes + self.heap_bytes + self.stack_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_world_is_small() {
        let img = ImageSpec::hello_world();
        assert!(img.total_bytes() <= 512 * 1024);
        assert!(img.got_slots > 0);
    }

    #[test]
    fn with_heap_sizes_heap() {
        let img = ImageSpec::with_heap("redis", 64 << 20);
        assert_eq!(img.heap_bytes, 64 << 20);
        assert!(img.total_bytes() > 64 << 20);
    }
}
