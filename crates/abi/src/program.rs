//! The [`Program`] trait and its step protocol.

use ufork_cheri::Capability;

use crate::env::Env;
use crate::{Errno, Fd, ForkResult};

/// A forkable user program.
///
/// Implementations are state machines: each [`Program::resume`] call runs
/// until the program exits, forks, or needs a blocking call. Host-side
/// state must be plain data (counters, offsets, fds, phase enums) — all
/// capabilities live in registers or simulated memory (see the
/// crate-level contract).
pub trait Program {
    /// Resumes execution.
    fn resume(&mut self, env: &mut dyn Env, input: Resume) -> StepOutcome;

    /// Clones the program state (used by `fork` to create the child's
    /// continuation, as fork duplicates the calling thread).
    fn clone_box(&self) -> Box<dyn Program>;

    /// Downcast hook so harnesses can read results out of a finished
    /// program (e.g. request counters).
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn Program> {
    fn clone(&self) -> Box<dyn Program> {
        self.clone_box()
    }
}

/// Why the program is being resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resume {
    /// First entry.
    Start,
    /// Returning from `fork`.
    Forked(ForkResult),
    /// Returning from a blocking call with its result (`u64` payload:
    /// bytes read, reaped PID, or 0).
    Ret(Result<u64, Errno>),
}

/// A cloneable, opaquely-debuggable boxed program (for [`StepOutcome::Exec`]).
pub struct ProgramBox(pub Box<dyn Program>);

impl Clone for ProgramBox {
    fn clone(&self) -> ProgramBox {
        ProgramBox(self.0.clone_box())
    }
}

impl std::fmt::Debug for ProgramBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProgramBox(..)")
    }
}

/// What the program wants from the kernel.
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// Terminate with an exit code.
    Exit(i32),
    /// Fork this μprocess. The parent and the cloned child are resumed
    /// with [`Resume::Forked`].
    Fork,
    /// Replace this process image and program (`execve`): the old memory
    /// is torn down, a fresh image is loaded, and `program` starts from
    /// [`Resume::Start`]. File descriptors are preserved, as POSIX
    /// requires. Never returns to the old program.
    Exec {
        /// The new process image.
        image: crate::ImageSpec,
        /// The new program.
        program: ProgramBox,
    },
    /// Perform a potentially blocking call; resumed with [`Resume::Ret`].
    Block(BlockingCall),
}

/// Kernel calls that may block the calling thread.
#[derive(Clone, Debug)]
pub enum BlockingCall {
    /// Read up to `len` bytes into `buf` from a pipe/socket/file,
    /// blocking until data (or EOF) is available.
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Destination buffer (cursor = start).
        buf: Capability,
        /// Maximum bytes.
        len: u64,
    },
    /// Write `len` bytes from `buf` to a pipe, blocking while the pipe's
    /// bounded buffer lacks space for the whole write (POSIX small-write
    /// atomicity); returns the bytes written. Fails with
    /// [`Errno::BadFd`] (EPIPE) if the last read end closes while
    /// blocked.
    Write {
        /// Destination descriptor.
        fd: Fd,
        /// Source buffer (cursor = start).
        buf: Capability,
        /// Bytes to write.
        len: u64,
    },
    /// Accept the next connection on a listening descriptor; returns the
    /// connection's descriptor.
    Accept {
        /// Listening descriptor.
        fd: Fd,
    },
    /// Push one message onto a shared-memory descriptor ring, blocking
    /// while it is full; returns the bytes enqueued. `ring` is the
    /// sealed endpoint capability from [`crate::Env::sys_ring_open`] —
    /// programs keep it in a register so fork relocates it, and present
    /// it here as proof of authority.
    RingPush {
        /// Producer-end descriptor.
        fd: Fd,
        /// Sealed endpoint capability.
        ring: Capability,
        /// Source buffer holding the message payload.
        buf: Capability,
        /// Payload bytes (at most the ring's `msg_bytes`).
        len: u64,
    },
    /// Pop one message from a ring into `buf`, blocking while it is
    /// empty; returns the message size, or `Ok(0)` once the ring is
    /// drained and every producer end has closed (EOF, like a pipe
    /// read).
    RingPop {
        /// Consumer-end descriptor.
        fd: Fd,
        /// Sealed endpoint capability.
        ring: Capability,
        /// Destination buffer (at least the ring's `msg_bytes`).
        buf: Capability,
    },
    /// Wait for any child to exit; returns the reaped child's PID.
    Wait,
    /// Sleep for `ns` simulated nanoseconds.
    Sleep {
        /// Duration in nanoseconds.
        ns: f64,
    },
    /// Yield the CPU to another runnable thread.
    Yield,
    /// Create a new thread in this process, running `program` from
    /// [`Resume::Start`]. Threads share memory, file descriptors, and the
    /// register file; `fork` copies only the calling thread (paper §3.4:
    /// "each μprocess may have many threads ... fork ... copies a single
    /// thread"). Returns the new thread's id.
    SpawnThread {
        /// The thread body.
        program: ProgramBox,
    },
    /// Wait for thread `tid` of this process to exit; returns its exit
    /// code.
    JoinThread {
        /// Thread id from [`BlockingCall::SpawnThread`].
        tid: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pid;

    #[derive(Clone)]
    struct Counter(u32);

    impl Program for Counter {
        fn resume(&mut self, _env: &mut dyn Env, _input: Resume) -> StepOutcome {
            self.0 += 1;
            if self.0 >= 2 {
                StepOutcome::Exit(0)
            } else {
                StepOutcome::Block(BlockingCall::Yield)
            }
        }

        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn boxed_programs_clone() {
        let p: Box<dyn Program> = Box::new(Counter(1));
        let _q = p.clone();
    }

    #[test]
    fn resume_variants_carry_payloads() {
        let r = Resume::Forked(ForkResult::Parent(Pid(3)));
        assert!(matches!(r, Resume::Forked(ForkResult::Parent(Pid(3)))));
        let r = Resume::Ret(Ok(7));
        assert!(matches!(r, Resume::Ret(Ok(7))));
    }
}
