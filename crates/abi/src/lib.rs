//! The OS-neutral workload ABI.
//!
//! Every workload in this reproduction (Redis, FaaS Zygote, Nginx,
//! Unixbench, hello-world) is written once against the [`Env`] and
//! [`Program`] traits defined here, and runs unmodified on the μFork
//! kernel and on both baselines — the reproduction's analogue of the
//! paper's "applications which run on Unikraft do not require porting to
//! work with μFork" (§4).
//!
//! # Execution model
//!
//! A [`Program`] is a cloneable state machine. The executive resumes it;
//! the program performs *user-level work* — memory accesses through
//! capabilities, compute, and non-blocking system calls — inline through
//! [`Env`], then returns a [`StepOutcome`]: exit, fork, or a blocking
//! call.
//!
//! `fork` is modelled exactly as POSIX semantics require: when a program
//! returns [`StepOutcome::Fork`], the kernel duplicates its μprocess
//! (memory, registers, file descriptors) **and clones the program state**;
//! the parent is resumed with [`ForkResult::Parent`] and the clone with
//! [`ForkResult::Child`].
//!
//! # The register-file contract
//!
//! All long-lived pointers (capabilities) must be kept either in simulated
//! memory or in the per-thread **register file** ([`Env::reg`] /
//! [`Env::set_reg`]) — never in host-side program state across a
//! [`StepOutcome`]. This mirrors real hardware: at fork, μFork relocates
//! capabilities held in registers and in memory (paper §3.5, step 2), but
//! it cannot see pointers squirrelled away anywhere else. A program that
//! violates the contract holds a stale capability into the *parent's*
//! region after fork — and the isolation machinery will refuse it, which
//! is itself a property the test suite exercises.

use std::fmt;

pub use ufork_cheri::Capability;

mod env;
mod image;
mod program;

pub use env::{Env, SysResult};
pub use image::ImageSpec;
pub use program::{BlockingCall, Program, ProgramBox, Resume, StepOutcome};

/// Sentinel returned by [`Env::sys_ring_try_pop`] when the ring is
/// drained and every producer end has closed — distinguishable from both
/// "message of n bytes" and `Ok(0)` ("empty, producers remain").
pub const RING_EOF: u64 = u64::MAX;

/// A μprocess / process identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

/// A file descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub i32);

impl fmt::Debug for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fd({})", self.0)
    }
}

/// Outcome of `fork`, delivered via [`Resume::Forked`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForkResult {
    /// Resumed in the parent; carries the child's PID.
    Parent(Pid),
    /// Resumed in the (newly created) child.
    Child,
}

/// POSIX-flavoured error numbers surfaced to programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Errno {
    /// Memory fault: capability or page-permission violation.
    Fault,
    /// Out of memory (frames, region space, or heap).
    NoMem,
    /// Bad file descriptor.
    BadFd,
    /// Invalid argument.
    Inval,
    /// No child processes (wait).
    Child,
    /// No such file.
    NoEnt,
    /// Operation not permitted (isolation refusal).
    Perm,
    /// Too many processes / resource exhaustion.
    Again,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Errno::Fault => "EFAULT",
            Errno::NoMem => "ENOMEM",
            Errno::BadFd => "EBADF",
            Errno::Inval => "EINVAL",
            Errno::Child => "ECHILD",
            Errno::NoEnt => "ENOENT",
            Errno::Perm => "EPERM",
            Errno::Again => "EAGAIN",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for Errno {}

/// Isolation level of a deployment (paper §3.6, requirement R4).
///
/// μFork parameterizes isolation because "not all use-cases have the same
/// needs": privilege separation needs the adversarial model, a concurrent
/// web server may settle for fault isolation, and a trusted snapshot child
/// may disable protection entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IsolationLevel {
    /// No isolation: the whole system is trusted to be correct (e.g.
    /// Redis snapshot children). Checks are skipped.
    None,
    /// Non-adversarial fault isolation: memory isolation and cheap kernel
    /// checks, but no TOCTTOU protection (e.g. Nginx workers).
    Fault,
    /// Full adversarial isolation: memory isolation, syscall argument
    /// validation, and TOCTTOU copy-in/copy-out (e.g. qmail-style
    /// privilege separation).
    #[default]
    Full,
}

impl IsolationLevel {
    /// Whether memory accesses are checked against capabilities/regions.
    pub const fn checks_memory(self) -> bool {
        !matches!(self, IsolationLevel::None)
    }

    /// Whether syscall arguments are validated.
    pub const fn validates_syscalls(self) -> bool {
        matches!(self, IsolationLevel::Full)
    }

    /// Whether user buffers are copied to defeat TOCTTOU races.
    pub const fn tocttou_protection(self) -> bool {
        matches!(self, IsolationLevel::Full)
    }
}

/// Memory duplication strategy used by μFork's fork (paper §3.8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CopyStrategy {
    /// Synchronous upfront copy of the whole parent image.
    Full,
    /// Copy-on-access: shared pages are inaccessible to the child; any
    /// access (and any parent write) triggers copy + relocation.
    CoA,
    /// Copy-on-pointer-access: pages are shared read-only; writes by
    /// either side, or a *capability load by the child*, trigger copy +
    /// relocation. Plain reads stay shared.
    #[default]
    CoPA,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_level_feature_matrix() {
        assert!(!IsolationLevel::None.checks_memory());
        assert!(IsolationLevel::Fault.checks_memory());
        assert!(!IsolationLevel::Fault.validates_syscalls());
        assert!(!IsolationLevel::Fault.tocttou_protection());
        assert!(IsolationLevel::Full.validates_syscalls());
        assert!(IsolationLevel::Full.tocttou_protection());
    }

    #[test]
    fn errno_displays_posix_names() {
        assert_eq!(Errno::Fault.to_string(), "EFAULT");
        assert_eq!(Errno::Child.to_string(), "ECHILD");
    }

    #[test]
    fn defaults() {
        assert_eq!(IsolationLevel::default(), IsolationLevel::Full);
        assert_eq!(CopyStrategy::default(), CopyStrategy::CoPA);
    }
}
