//! The transactional fork journal (robustness layer).
//!
//! Every side effect a fork performs — frame allocations, refcount
//! bumps, child PTE inserts, parent COW arming, region and process-table
//! bookkeeping, the admission reservation itself — is recorded as a
//! [`JournalOp`] with a well-defined inverse. A failure at *any* point
//! between the first side effect and the commit rolls the kernel back to
//! its exact pre-fork state by applying the inverses in reverse record
//! order (`UforkOs::rollback_fork` in `fork.rs`), replacing the old
//! ad-hoc `unwind_partial_fork` cleanup.
//!
//! Two recording conventions coexist, both rollback-safe:
//!
//! * **apply-then-record** for fallible side effects (allocations,
//!   refcount bumps): the op lands in the journal only once the effect
//!   exists, so an inverse never runs against nothing;
//! * **record-then-apply** for the batched page-table effects
//!   (`PteMap` before `extend_sorted`, `CowArm` before `protect_many`):
//!   their inverses are idempotent no-ops when the bulk apply never ran
//!   (unmapping an absent VPN, clearing an unset flag).
//!
//! The journal doubles as a deterministic failure-injection surface:
//! every `record` call is numbered since boot and a one-shot trigger
//! makes recording op *n* fail — with the op still recorded, since its
//! side effect already happened (or its inverse is a no-op). The chaos
//! sweep in `ufork-oracle` enumerates every index of a reference fork
//! and asserts frames, refcounts, PTEs and regions balance to zero at
//! each. Injected aborts are flagged so the kernel's reclaim-then-retry
//! loop does not absorb them.

use ufork_abi::Pid;
use ufork_mem::Pfn;
use ufork_vmem::{Pte, Region, Vpn};

/// What the kernel does when fork admission control cannot reserve the
/// frames the requested copy strategy demands.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// No admission control: forks run straight into the allocator and
    /// rely on the journal to unwind mid-walk exhaustion.
    Disabled,
    /// Admission-gate each fork (and each fault-time allocation) against
    /// the reservation ledger, but never substitute a cheaper strategy:
    /// an unsatisfiable demand fails the fork with `NoMem` up front
    /// instead of part-way through the walk.
    #[default]
    Strict,
    /// Degrade `Full → CoA → CoPA` until a strategy's frame demand fits,
    /// failing only when even CoPA's eager pages cannot be reserved.
    Degrade,
}

/// One recorded fork side effect.
///
/// Frame references are owned by `FrameAlloc` / `RefInc` records;
/// `PteMap`'s inverse therefore unmaps without touching refcounts, so
/// each reference is dropped exactly once however far the fork got.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JournalOp {
    /// Admission reserved this many frames (released at commit and at
    /// rollback alike — the reservation is an accounting promise, not a
    /// per-allocation debit).
    ReserveFrames(u64),
    /// The child's contiguous region was allocated.
    RegionAlloc(Region),
    /// A frame was allocated for the child (eager copy destination).
    FrameAlloc(Pfn),
    /// A shared frame's refcount was bumped for a child mapping.
    RefInc(Pfn),
    /// A child PTE reached (or is about to reach) the page table.
    PteMap(Vpn),
    /// A parent PTE was (or is about to be) armed copy-on-write. Only
    /// recorded for PTEs that were *not* already armed, so the inverse
    /// restores the exact pre-fork flags.
    CowArm(Vpn),
    /// The child region was added to the relocation source index.
    IndexInsert(Region),
    /// The child entered the process table.
    ProcInsert(Pid),
    /// An existing child PTE was (or is about to be) rewritten in place
    /// — a pipelined background chunk flipping a staged CoA mapping to
    /// its final frame + flags. The inverse restores the recorded
    /// pre-rewrite PTE exactly, so it is safe record-then-apply.
    PteRemap { vpn: Vpn, old: Pte },
    /// A shared frame's refcount was dropped (the pipelined chunk
    /// releasing the fork-time reference after the copy). Recorded
    /// apply-then-record; the inverse re-takes the reference.
    RefDec(Pfn),
    /// A parent PTE was (or is about to be) stamped with the new fork
    /// generation: generation field overwritten, soft-dirty bit cleared,
    /// COW re-armed on writable pages. Recorded record-then-apply (the
    /// stamp sweep runs after the walk's `protect_many`, so `had_cow`
    /// reflects the post-arm state it restores to); the inverse rewrites
    /// the exact pre-stamp generation/DIRTY/COW state and is idempotent
    /// when the stamp never landed.
    DirtyStamp {
        vpn: Vpn,
        old_gen: u32,
        was_dirty: bool,
        had_cow: bool,
    },
    /// The parent μprocess's dirty-tracking cursor was (or is about to
    /// be) advanced to a new generation. Record-then-apply; the inverse
    /// restores the prior cursor and tracked flag.
    DirtyTrack {
        pid: Pid,
        old_gen: u32,
        old_tracked: bool,
    },
    /// The background reclaim daemon scrubbed a pooled frame into the
    /// clean-frame magazine. Recorded apply-then-record; the inverse
    /// clears the magazine flag (the zeroed bytes stay — a frame marked
    /// unscrubbed but already clean is merely re-zeroed at grant, never
    /// handed out dirty).
    FrameScrub(Pfn),
}

/// The journal of the in-flight fork. Exactly one fork is in flight at a
/// time (the kernel runs under a big lock, paper §4.5), so one journal
/// on the kernel suffices.
#[derive(Default)]
pub(crate) struct ForkJournal {
    ops: Vec<JournalOp>,
    /// Ops recorded since boot — the index space for `fail_at`.
    recorded: u64,
    fail_at: Option<u64>,
    injected: bool,
}

impl ForkJournal {
    /// Records one side effect. On an injected failure the op is still
    /// recorded (its side effect happened; rollback must undo it), the
    /// injected-abort flag is set, and `Err(())` tells the caller to
    /// abort the fork.
    pub(crate) fn record(&mut self, op: JournalOp) -> Result<(), ()> {
        let idx = self.recorded;
        self.recorded += 1;
        self.ops.push(op);
        if self.fail_at == Some(idx) {
            self.fail_at = None;
            self.injected = true;
            return Err(());
        }
        Ok(())
    }

    /// Ops currently staged for the in-flight fork.
    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    /// Drains the staged ops for reverse-order rollback.
    pub(crate) fn take_ops(&mut self) -> Vec<JournalOp> {
        std::mem::take(&mut self.ops)
    }

    /// Commits the fork: drains the staged ops, returning how many there
    /// were and the total frames reserved (for the caller to release).
    pub(crate) fn commit(&mut self) -> (u64, u64) {
        let reserved = self
            .ops
            .iter()
            .map(|op| match op {
                JournalOp::ReserveFrames(n) => *n,
                _ => 0,
            })
            .sum();
        let n = self.ops.len() as u64;
        self.ops.clear();
        (n, reserved)
    }

    /// Total ops recorded since boot (the injection index space).
    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Arms one-shot injection: recording op `idx` (0-based since boot)
    /// fails.
    pub(crate) fn fail_at(&mut self, idx: u64) {
        self.fail_at = Some(idx);
    }

    /// Disarms injection.
    pub(crate) fn clear_failure(&mut self) {
        self.fail_at = None;
    }

    /// True if the last abort came from injection; consumes the flag.
    pub(crate) fn take_injected(&mut self) -> bool {
        std::mem::take(&mut self.injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_since_boot_and_commit_clears() {
        let mut j = ForkJournal::default();
        j.record(JournalOp::ReserveFrames(3)).unwrap();
        j.record(JournalOp::FrameAlloc(Pfn(7))).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.recorded(), 2);
        let (n, reserved) = j.commit();
        assert_eq!((n, reserved), (2, 3));
        assert_eq!(j.len(), 0);
        // The boot-cumulative index space keeps counting.
        j.record(JournalOp::RefInc(Pfn(1))).unwrap();
        assert_eq!(j.recorded(), 3);
    }

    #[test]
    fn injection_is_one_shot_and_records_the_failing_op() {
        let mut j = ForkJournal::default();
        j.fail_at(1);
        j.record(JournalOp::ReserveFrames(1)).unwrap();
        assert!(j.record(JournalOp::FrameAlloc(Pfn(4))).is_err());
        // The failing op is in the journal: its side effect happened.
        assert_eq!(j.len(), 2);
        assert!(j.take_injected());
        assert!(!j.take_injected(), "flag is consumed");
        // Disarmed after firing: the retry records cleanly.
        let _ = j.take_ops();
        j.record(JournalOp::FrameAlloc(Pfn(4))).unwrap();
    }

    #[test]
    fn rollback_drains_in_recorded_order_for_reverse_replay() {
        let mut j = ForkJournal::default();
        j.record(JournalOp::ReserveFrames(2)).unwrap();
        j.record(JournalOp::RefInc(Pfn(9))).unwrap();
        let ops = j.take_ops();
        assert_eq!(
            ops,
            vec![JournalOp::ReserveFrames(2), JournalOp::RefInc(Pfn(9))]
        );
        assert_eq!(j.len(), 0);
    }
}
