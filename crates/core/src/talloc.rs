//! The in-μprocess memory allocator ("talloc", after Unikraft's tinyalloc).
//!
//! The paper ports tinyalloc to CHERI (§4.1: 16-byte alignment, bounded
//! allocations) and μFork proactively copies "pages containing
//! memory-allocator metadata" at fork (§3.5). For that to be meaningful,
//! the allocator's metadata must genuinely live **inside μprocess
//! memory**: block descriptors here hold *capabilities* to their blocks,
//! stored through the same user-level memory path programs use. Fork must
//! therefore copy and relocate them like any other user data — there is no
//! host-side shadow state.
//!
//! Layout (within the `HeapMeta` segment):
//!
//! ```text
//! +0   magic            u64
//! +8   free_head        u64   (index+1 into descriptors; 0 = none)
//! +16  blocks_used      u64   (descriptors ever created)
//! +24  arena_top        u64   (bump offset into the arena)
//! +64  desc[0] ...             32 bytes each:
//!        +0  block capability (tagged granule)
//!        +16 size  u64  (bit 63 = in-use)
//!        +24 next  u64  (free-list link, index+1)
//! ```
//!
//! Because every word above is **user-writable**, the allocator treats it
//! as hostile on the kernel's syscall path: free-list walks are bounded
//! by `max_blocks` (a longer chain necessarily revisits a descriptor, so
//! it is a cycle), link indices are range-checked, and the bump-pointer
//! arithmetic is overflow-checked. Corrupted metadata surfaces as
//! `Errno::Fault` (or `NoMem` for impossible sizes) — never a hang or a
//! panic.

use ufork_abi::{Errno, SysResult};
use ufork_cheri::Capability;

/// Magic value marking an initialized heap.
const MAGIC: u64 = 0x7441_6c6c_6f63_2121; // "tAlloc!!"
const USED_BIT: u64 = 1 << 63;
const HDR_FREE: u64 = 8;
const HDR_USED: u64 = 16;
const HDR_TOP: u64 = 24;
const DESCS: u64 = 64;
const DESC_SIZE: u64 = 32;

/// User-level memory access path the allocator runs on.
///
/// Implemented by each kernel around its MMU: every access checks
/// capabilities and page permissions and resolves transparent faults, so a
/// *child's* allocator operations after fork exercise exactly the CoW /
/// CoA / CoPA machinery the paper describes.
pub trait UserMem {
    /// Loads bytes at a region-absolute virtual address.
    fn load(&mut self, va: u64, buf: &mut [u8]) -> SysResult<()>;
    /// Stores bytes.
    fn store(&mut self, va: u64, data: &[u8]) -> SysResult<()>;
    /// Loads a (possibly tagged) capability.
    fn load_cap(&mut self, va: u64) -> SysResult<Option<Capability>>;
    /// Stores a capability, setting its tag.
    fn store_cap(&mut self, va: u64, cap: &Capability) -> SysResult<()>;
    /// Derives a tightly bounded data capability over `[base, base+len)`
    /// from the μprocess root.
    fn derive(&self, base: u64, len: u64) -> SysResult<Capability>;
    /// Charges `n` generic operations of user CPU time.
    fn charge(&mut self, n: u64);
}

/// Allocator view over one μprocess heap.
///
/// Stateless apart from the addresses: all state is in simulated memory.
pub struct TAlloc {
    /// Base VA of the metadata segment.
    pub meta_base: u64,
    /// Maximum number of block descriptors.
    pub max_blocks: u64,
    /// Base VA of the arena.
    pub arena_base: u64,
    /// Arena length in bytes.
    pub arena_len: u64,
}

/// Aggregate allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TAllocStats {
    /// Descriptors ever created.
    pub blocks_used: u64,
    /// Descriptors currently on the free list.
    pub free_blocks: u64,
    /// Bytes bump-allocated from the arena.
    pub arena_top: u64,
}

fn load_u64(mem: &mut dyn UserMem, va: u64) -> SysResult<u64> {
    let mut b = [0u8; 8];
    mem.load(va, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn store_u64(mem: &mut dyn UserMem, va: u64, v: u64) -> SysResult<()> {
    mem.store(va, &v.to_le_bytes())
}

impl TAlloc {
    fn desc(&self, idx: u64) -> u64 {
        self.meta_base + DESCS + idx * DESC_SIZE
    }

    /// Initializes the heap header (called once at spawn).
    pub fn init(&self, mem: &mut dyn UserMem) -> SysResult<()> {
        store_u64(mem, self.meta_base, MAGIC)?;
        store_u64(mem, self.meta_base + HDR_FREE, 0)?;
        store_u64(mem, self.meta_base + HDR_USED, 0)?;
        store_u64(mem, self.meta_base + HDR_TOP, 0)?;
        Ok(())
    }

    /// Allocates `len` bytes (16-byte aligned, CHERI requirement §4.1).
    pub fn malloc(&self, mem: &mut dyn UserMem, len: u64) -> SysResult<Capability> {
        if len == 0 {
            return Err(Errno::Inval);
        }
        let len = len.div_ceil(16) * 16;
        if load_u64(mem, self.meta_base)? != MAGIC {
            return Err(Errno::Fault);
        }
        mem.charge(8);

        // First fit over the free list (bounded: see module doc).
        let mut prev: Option<u64> = None;
        let mut cur = load_u64(mem, self.meta_base + HDR_FREE)?;
        let mut steps = 0u64;
        while cur != 0 {
            if cur > self.max_blocks || steps >= self.max_blocks {
                return Err(Errno::Fault); // out-of-range link or cycle
            }
            steps += 1;
            let idx = cur - 1;
            let d = self.desc(idx);
            let size = load_u64(mem, d + 16)?;
            let next = load_u64(mem, d + 24)?;
            mem.charge(6);
            if size & USED_BIT != 0 {
                return Err(Errno::Fault); // free-list block marked used
            }
            if size >= len {
                // Unlink and mark used.
                match prev {
                    None => store_u64(mem, self.meta_base + HDR_FREE, next)?,
                    Some(p) => store_u64(mem, self.desc(p) + 24, next)?,
                }
                store_u64(mem, d + 16, size | USED_BIT)?;
                store_u64(mem, d + 24, 0)?;
                let cap = mem.load_cap(d)?.ok_or(Errno::Fault)?;
                return Ok(cap);
            }
            prev = Some(idx);
            cur = next;
        }

        // Carve from the arena.
        let top = load_u64(mem, self.meta_base + HDR_TOP)?;
        if top.checked_add(len).is_none_or(|end| end > self.arena_len) {
            return Err(Errno::NoMem);
        }
        let used = load_u64(mem, self.meta_base + HDR_USED)?;
        if used >= self.max_blocks {
            return Err(Errno::NoMem);
        }
        let base = self.arena_base + top;
        let cap = mem.derive(base, len)?;
        let d = self.desc(used);
        mem.store_cap(d, &cap)?;
        store_u64(mem, d + 16, len | USED_BIT)?;
        store_u64(mem, d + 24, 0)?;
        store_u64(mem, self.meta_base + HDR_USED, used + 1)?;
        store_u64(mem, self.meta_base + HDR_TOP, top + len)?;
        mem.charge(12);
        Ok(cap)
    }

    /// Frees an allocation by its capability.
    pub fn free(&self, mem: &mut dyn UserMem, cap: &Capability) -> SysResult<()> {
        let used = load_u64(mem, self.meta_base + HDR_USED)?;
        if used > self.max_blocks {
            return Err(Errno::Fault); // corrupted descriptor count
        }
        for idx in 0..used {
            let d = self.desc(idx);
            let Some(c) = mem.load_cap(d)? else { continue };
            mem.charge(4);
            if c.base() != cap.base() {
                continue;
            }
            let size = load_u64(mem, d + 16)?;
            if size & USED_BIT == 0 {
                return Err(Errno::Inval); // double free
            }
            store_u64(mem, d + 16, size & !USED_BIT)?;
            let head = load_u64(mem, self.meta_base + HDR_FREE)?;
            store_u64(mem, d + 24, head)?;
            store_u64(mem, self.meta_base + HDR_FREE, idx + 1)?;
            return Ok(());
        }
        Err(Errno::Inval)
    }

    /// Reads aggregate statistics.
    pub fn stats(&self, mem: &mut dyn UserMem) -> SysResult<TAllocStats> {
        let blocks_used = load_u64(mem, self.meta_base + HDR_USED)?;
        let arena_top = load_u64(mem, self.meta_base + HDR_TOP)?;
        let mut free_blocks = 0;
        let mut cur = load_u64(mem, self.meta_base + HDR_FREE)?;
        while cur != 0 {
            if cur > self.max_blocks || free_blocks >= self.max_blocks {
                return Err(Errno::Fault); // out-of-range link or cycle
            }
            free_blocks += 1;
            cur = load_u64(mem, self.desc(cur - 1) + 24)?;
        }
        Ok(TAllocStats {
            blocks_used,
            free_blocks,
            arena_top,
        })
    }

    /// Number of metadata bytes currently in use (header + descriptors),
    /// for the eager-copy sizing at fork. A corrupted descriptor count is
    /// clamped to `max_blocks` — fork sizing must never overflow.
    pub fn meta_bytes_in_use(&self, mem: &mut dyn UserMem) -> SysResult<u64> {
        let used = load_u64(mem, self.meta_base + HDR_USED)?.min(self.max_blocks);
        Ok(DESCS + used * DESC_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use ufork_cheri::Perms;

    /// Flat test memory: one big byte array + sparse capability map.
    struct FlatMem {
        base: u64,
        data: Vec<u8>,
        caps: BTreeMap<u64, Capability>,
        root: Capability,
    }

    impl FlatMem {
        fn new(base: u64, len: u64) -> FlatMem {
            FlatMem {
                base,
                data: vec![0; len as usize],
                caps: BTreeMap::new(),
                root: Capability::new_root(base, len, Perms::data()),
            }
        }
    }

    impl UserMem for FlatMem {
        fn load(&mut self, va: u64, buf: &mut [u8]) -> SysResult<()> {
            let o = (va - self.base) as usize;
            buf.copy_from_slice(&self.data[o..o + buf.len()]);
            Ok(())
        }
        fn store(&mut self, va: u64, data: &[u8]) -> SysResult<()> {
            let o = (va - self.base) as usize;
            self.data[o..o + data.len()].copy_from_slice(data);
            for g in (va / 16)..=((va + data.len() as u64 - 1) / 16) {
                self.caps.remove(&(g * 16));
            }
            Ok(())
        }
        fn load_cap(&mut self, va: u64) -> SysResult<Option<Capability>> {
            Ok(self.caps.get(&va).copied())
        }
        fn store_cap(&mut self, va: u64, cap: &Capability) -> SysResult<()> {
            self.caps.insert(va, *cap);
            Ok(())
        }
        fn derive(&self, base: u64, len: u64) -> SysResult<Capability> {
            self.root.with_bounds(base, len).map_err(|_| Errno::Fault)
        }
        fn charge(&mut self, _n: u64) {}
    }

    fn setup() -> (TAlloc, FlatMem) {
        let ta = TAlloc {
            meta_base: 0x10_0000,
            max_blocks: 64,
            arena_base: 0x10_4000,
            arena_len: 0x4000,
        };
        let mut mem = FlatMem::new(0x10_0000, 0x10_0000);
        ta.init(&mut mem).unwrap();
        (ta, mem)
    }

    #[test]
    fn malloc_returns_bounded_caps() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 100).unwrap();
        let b = ta.malloc(&mut mem, 50).unwrap();
        assert_eq!(a.len(), 112); // rounded to 16
        assert_eq!(b.len(), 64);
        assert_eq!(a.base() % 16, 0);
        assert!(b.base() >= a.top());
        // Bounds are tight: cannot access past the allocation.
        assert!(a.check_access(a.base(), 112, Perms::LOAD).is_ok());
        assert!(a.check_access(a.base(), 113, Perms::LOAD).is_err());
    }

    #[test]
    fn free_and_reuse() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 256).unwrap();
        let a_base = a.base();
        ta.free(&mut mem, &a).unwrap();
        let s = ta.stats(&mut mem).unwrap();
        assert_eq!(s.free_blocks, 1);
        // A smaller allocation reuses the freed block (first fit).
        let b = ta.malloc(&mut mem, 64).unwrap();
        assert_eq!(b.base(), a_base);
        assert_eq!(ta.stats(&mut mem).unwrap().free_blocks, 0);
    }

    #[test]
    fn double_free_rejected() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 32).unwrap();
        ta.free(&mut mem, &a).unwrap();
        assert_eq!(ta.free(&mut mem, &a).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn free_of_unknown_cap_rejected() {
        let (ta, mut mem) = setup();
        let bogus = Capability::new_root(0x10_5000, 16, Perms::data());
        assert_eq!(ta.free(&mut mem, &bogus).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn arena_exhaustion() {
        let (ta, mut mem) = setup();
        assert!(ta.malloc(&mut mem, 0x4000).is_ok());
        assert_eq!(ta.malloc(&mut mem, 16).unwrap_err(), Errno::NoMem);
    }

    #[test]
    fn descriptor_exhaustion() {
        let ta = TAlloc {
            meta_base: 0x10_0000,
            max_blocks: 2,
            arena_base: 0x10_4000,
            arena_len: 0x4000,
        };
        let mut mem = FlatMem::new(0x10_0000, 0x10_0000);
        ta.init(&mut mem).unwrap();
        ta.malloc(&mut mem, 16).unwrap();
        ta.malloc(&mut mem, 16).unwrap();
        assert_eq!(ta.malloc(&mut mem, 16).unwrap_err(), Errno::NoMem);
    }

    #[test]
    fn zero_len_rejected() {
        let (ta, mut mem) = setup();
        assert_eq!(ta.malloc(&mut mem, 0).unwrap_err(), Errno::Inval);
    }

    #[test]
    fn uninitialized_heap_detected() {
        let ta = TAlloc {
            meta_base: 0x10_0000,
            max_blocks: 4,
            arena_base: 0x10_4000,
            arena_len: 0x1000,
        };
        let mut mem = FlatMem::new(0x10_0000, 0x10_0000);
        assert_eq!(ta.malloc(&mut mem, 16).unwrap_err(), Errno::Fault);
    }

    #[test]
    fn meta_bytes_tracks_descriptors() {
        let (ta, mut mem) = setup();
        assert_eq!(ta.meta_bytes_in_use(&mut mem).unwrap(), 64);
        ta.malloc(&mut mem, 16).unwrap();
        ta.malloc(&mut mem, 16).unwrap();
        assert_eq!(ta.meta_bytes_in_use(&mut mem).unwrap(), 64 + 2 * 32);
    }

    #[test]
    fn free_list_cycle_is_a_fault_not_a_hang() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 32).unwrap();
        ta.free(&mut mem, &a).unwrap();
        // Corrupt desc[0].next to point back at itself (index+1 == 1).
        store_u64(&mut mem, ta.desc(0) + 24, 1).unwrap();
        // A request larger than the freed block walks past it — and must
        // detect the cycle instead of spinning forever.
        assert_eq!(ta.malloc(&mut mem, 256).unwrap_err(), Errno::Fault);
        assert_eq!(ta.stats(&mut mem).unwrap_err(), Errno::Fault);
    }

    #[test]
    fn out_of_range_free_link_is_a_fault() {
        let (ta, mut mem) = setup();
        store_u64(&mut mem, ta.meta_base + HDR_FREE, ta.max_blocks + 7).unwrap();
        assert_eq!(ta.malloc(&mut mem, 16).unwrap_err(), Errno::Fault);
        assert_eq!(ta.stats(&mut mem).unwrap_err(), Errno::Fault);
    }

    #[test]
    fn used_block_on_free_list_is_a_fault() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 32).unwrap();
        ta.free(&mut mem, &a).unwrap();
        // Set the USED bit while the block sits on the free list.
        let size = load_u64(&mut mem, ta.desc(0) + 16).unwrap();
        store_u64(&mut mem, ta.desc(0) + 16, size | USED_BIT).unwrap();
        assert_eq!(ta.malloc(&mut mem, 16).unwrap_err(), Errno::Fault);
    }

    #[test]
    fn corrupted_arena_top_cannot_overflow() {
        let (ta, mut mem) = setup();
        store_u64(&mut mem, ta.meta_base + HDR_TOP, u64::MAX - 8).unwrap();
        // top + len would wrap to a tiny value; the checked add refuses.
        assert_eq!(ta.malloc(&mut mem, 32).unwrap_err(), Errno::NoMem);
    }

    #[test]
    fn corrupted_used_count_bounds_free_and_sizing() {
        let (ta, mut mem) = setup();
        let a = ta.malloc(&mut mem, 32).unwrap();
        store_u64(&mut mem, ta.meta_base + HDR_USED, u64::MAX).unwrap();
        // `free` refuses to walk an impossible descriptor table...
        assert_eq!(ta.free(&mut mem, &a).unwrap_err(), Errno::Fault);
        // ...and fork's metadata sizing clamps instead of overflowing.
        assert_eq!(
            ta.meta_bytes_in_use(&mut mem).unwrap(),
            DESCS + ta.max_blocks * DESC_SIZE
        );
    }
}
