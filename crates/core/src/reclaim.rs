//! The memory-pressure survival tier: background reclaim and the OOM
//! last resort (ROADMAP open item 2, robustness layer).
//!
//! Both operations reuse the transactional fork journal as their
//! rollback machinery — exactly one kernel transaction is in flight at
//! a time under the big lock, so the single journal serves forks,
//! pipelined chunks, reclaim passes and OOM teardowns alike, and the
//! chaos sweep's `inject_journal_failure` reaches every one of them.
//!
//! * **Background reclaim** ([`UforkOs::reclaim_step_uproc`]) scrubs
//!   recycled frames from the sharded allocator's deferred-zero queues
//!   into the per-shard clean-frame magazines. It runs as a schedulable
//!   kernel μtask (the executive arms it like the pipelined-fork copy
//!   engine) whenever the hysteretic [`PressureLevel`] leaves `Normal`,
//!   so the zeroing cost of `ZeroPolicy::Zeroed` grants moves off the
//!   fork/fault hot path and onto idle simulated time.
//! * **OOM teardown** ([`UforkOs::oom_reap_uproc`]) releases a victim
//!   μprocess's memory as one journaled transaction: every PTE detach
//!   is recorded before the batched unmap applies (record-then-apply,
//!   same convention as the fork walk), so an abort anywhere in the
//!   sweep restores the victim untouched; past the commit the reference
//!   drops and bookkeeping are infallible. The executive's victim
//!   selection and wait/exit plumbing live in `ufork-exec` — this is
//!   only the memory half the kernel owns.

use ufork_abi::{Errno, Pid, SysResult};
use ufork_exec::Ctx;
use ufork_mem::{PressureLevel, PAGE_SIZE};
use ufork_vmem::{Pte, Vpn};

use crate::journal::JournalOp;
use crate::kernel::UforkOs;

/// Frames one background reclaim pass scrubs at most, bounding the
/// simulated time a single daemon μtask step holds the big lock.
pub const RECLAIM_BATCH: u64 = 8;

impl UforkOs {
    /// True when the background reclaim daemon has useful work: the
    /// daemon is enabled, allocator pressure has left `Normal` (by the
    /// hysteretic level, so engagement does not flap at the watermark),
    /// and unscrubbed pooled frames exist.
    pub(crate) fn reclaim_pending_uproc(&self) -> bool {
        self.reclaim_daemon
            && self.pm.pressure() > PressureLevel::Normal
            && self.pm.pending_scrub() > 0
    }

    /// One bounded background-reclaim pass: scrubs up to
    /// [`RECLAIM_BATCH`] pooled frames into the clean-frame magazines,
    /// charging the zeroing to background simulated time under the
    /// `mem/reclaim_bg` phase. Returns how many frames were scrubbed;
    /// `Ok(0)` means no work (pressure normal, queues drained, or the
    /// daemon disabled) and the executive disarms the μtask.
    ///
    /// Each scrub is journaled apply-then-record, so an injected abort
    /// mid-pass rolls every flag back and leaks nothing — the chaos
    /// sweep audits exactly that.
    pub(crate) fn reclaim_step_uproc(&mut self, ctx: &mut Ctx) -> SysResult<u64> {
        if !self.reclaim_pending_uproc() {
            return Ok(0);
        }
        debug_assert_eq!(self.journal.len(), 0, "journal busy entering reclaim");
        ctx.phase("mem/reclaim_bg");
        let mut scrubbed = 0u64;
        while scrubbed < RECLAIM_BATCH {
            let Some(pfn) = self.pm.scrub_one() else {
                break;
            };
            scrubbed += 1;
            ctx.kernel(self.cost.zero_page);
            if self.journal.record(JournalOp::FrameScrub(pfn)).is_err() {
                self.rollback_fork(ctx);
                let _ = self.journal.take_injected();
                ctx.phase_end();
                return Err(Errno::Fault);
            }
        }
        let (ops, reserved) = self.journal.commit();
        debug_assert_eq!(reserved, 0, "reclaim reserves no frames");
        ctx.counters.journal_ops += ops;
        if scrubbed > 0 {
            ctx.counters.reclaim_background += 1;
            ctx.counters.frames_prezeroed += scrubbed;
        }
        ctx.phase_end();
        Ok(scrubbed)
    }

    /// Resident frames mapped by `pid` — the dominant OOM badness input
    /// (killing the largest resident set frees the most memory per
    /// kill). Zero for unknown pids.
    pub(crate) fn resident_pages_uproc(&self, pid: Pid) -> u64 {
        let Ok(p) = self.proc(pid) else { return 0 };
        let start = p.region.base.vpn();
        let end = Vpn(p.region.top().0.div_ceil(PAGE_SIZE));
        self.pt.range(start, end).count() as u64
    }

    /// Tears down `pid`'s memory as one journaled OOM transaction.
    ///
    /// Stage 1 (journaled, record-then-apply): every mapped PTE's
    /// detach is recorded as a [`JournalOp::PteRemap`] before the
    /// batched `unmap_range` runs. An abort anywhere in the recording
    /// sweep rolls back to the exact pre-reap state — the inverses
    /// rewrite PTEs that were never removed, which is idempotent — so
    /// the victim survives an aborted kill untouched and a later retry
    /// reaps it cleanly.
    ///
    /// Stage 2 (infallible, past the commit): drop the per-mapping
    /// frame references, hand back any open pipelined-fork reservation,
    /// and retire or free the region — mirroring
    /// [`MemOs::destroy`](ufork_exec::MemOs::destroy), which becomes a
    /// no-op for this pid afterwards (the executive still runs its own
    /// exit path for threads/fds/zombies).
    pub(crate) fn oom_reap_uproc(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<()> {
        let Some(region) = self.procs.get(&pid).map(|p| p.region) else {
            return Ok(());
        };
        debug_assert_eq!(self.journal.len(), 0, "journal busy entering oom reap");
        ctx.phase("fork/oom");
        let start = region.base.vpn();
        let end = Vpn(region.top().0.div_ceil(PAGE_SIZE));
        let mapped: Vec<(Vpn, Pte)> = self.pt.range(start, end).collect();
        for &(vpn, old) in &mapped {
            if self
                .journal
                .record(JournalOp::PteRemap { vpn, old })
                .is_err()
            {
                self.rollback_fork(ctx);
                let _ = self.journal.take_injected();
                ctx.phase_end();
                return Err(Errno::Fault);
            }
        }
        let unmapped: Vec<(Vpn, Pte)> = self.pt.unmap_range(start, end);
        ctx.kernel(self.cost.pte_write * 0.5 * unmapped.len() as f64);
        let (ops, reserved) = self.journal.commit();
        debug_assert_eq!(reserved, 0, "oom reap reserves no frames");
        ctx.counters.journal_ops += ops;

        // Past the commit nothing can fail: pure reference drops and
        // bookkeeping, identical to `destroy`'s tail.
        let p = self
            .procs
            .remove(&pid)
            .expect("victim vanished mid-oom-reap");
        if let Some(s) = self.pipelines.remove(&pid) {
            self.pm.release(s.reserved);
        }
        for (_, pte) in unmapped {
            let _ = self.pm.dec_ref(pte.pfn);
        }
        if p.had_children {
            // Still a relocation source for frames its children share.
            self.retired.push(p.region);
        } else {
            self.region_index.remove(p.region);
            let _ = self.regions.free(p.region);
        }
        ctx.phase_end();
        Ok(())
    }
}
