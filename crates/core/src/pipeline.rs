//! The background half of the pipelined fork
//! ([`crate::fork_par::WalkMode::Pipelined`]).
//!
//! A pipelined fork commits after the prologue: every would-be-eager
//! page is staged on the *shared* parent frame with CoA-style
//! protection (the child cannot touch it without faulting, the parent
//! is CoW-armed so its writes divert to a private copy), and the child
//! is runnable at lazy-strategy latency. What remains — the actual
//! copy + capability relocation of the deferred span — is tracked here
//! as a per-child [`PipelineState`] and consumed in
//! [`crate::fork_par::CHUNK_PAGES`]-page chunks, the same chunk
//! geometry as the parallel walk:
//!
//! * **Background stream** — the executive pumps
//!   [`UforkOs::pipeline_copy_next`] as scheduler-visible copy-engine
//!   μtasks, one chunk per event, until the window is drained. The
//!   stream is a single copy lane per child: background copies share
//!   the machine with running μprocesses, so one streaming lane bounds
//!   interference while demand-priority faults (below) cover the
//!   latency-critical pages.
//! * **Demand priority** — a child fault on an uncopied page
//!   (`Fault::CoAccess`, see `fault.rs`) jumps the copy queue: the
//!   fault resolves that page's *whole chunk* inline on the faulting
//!   context, marks it done, and the background stream skips it.
//!
//! Every chunk is a journaled transaction of its own, reusing the fork
//! journal (the kernel runs one fork *or* one chunk at a time under the
//! big lock): frame allocations are recorded apply-then-record, the PTE
//! rewrite as [`JournalOp::PteRemap`] record-then-apply (its inverse
//! restores the staged CoA mapping exactly), and the release of the
//! fork-time shared reference as [`JournalOp::RefDec`]. A mid-chunk
//! failure rolls back through `UforkOs::rollback_fork` like a mid-fork
//! failure: the chunk is atomically all-or-nothing, so at every abort
//! point the child is either fully copied up to a chunk boundary or
//! exactly as staged — never in between. Memory exhaustion retries
//! through the same bounded reclaim loop as fork.
//!
//! Admission stays sound across the window: the fork's reservation is
//! not released at commit for the deferred pages (see
//! `UforkOs::commit_fork` in `fork.rs`); the hold travels in
//! [`PipelineState::reserved`] and is released chunk by chunk as the
//! background allocations consume the promise, with any remainder
//! (pages adopted in place because the parent exited) handed back when
//! the window closes.

use ufork_abi::{Errno, Pid, SysResult};
use ufork_cheri::Capability;
use ufork_exec::Ctx;
use ufork_sim::LaneClocks;
use ufork_vmem::{PteFlags, Region, Vpn};

use crate::fork::{dedup_probe, DedupProbe, MAX_FORK_RETRIES};
use crate::fork_par::CHUNK_PAGES;
use crate::journal::JournalOp;
use crate::kernel::UforkOs;
use crate::reloc::{reloc_cost, relocate_frame, ScanMode};

/// One background-copy chunk: up to [`CHUNK_PAGES`] staged child pages
/// in ascending-VPN order, flipped to their final frames atomically.
pub(crate) struct PipeChunk {
    pub(crate) pages: Vec<(Vpn, PteFlags)>,
    pub(crate) done: bool,
}

/// A committed pipelined fork's background-copy window.
pub(crate) struct PipelineState {
    /// The child's region (relocation target of every chunk).
    pub(crate) region: Region,
    /// The child's root capability (relocation authority).
    pub(crate) root: Capability,
    pub(crate) chunks: Vec<PipeChunk>,
    /// First chunk index that may still be pending (skip hint for the
    /// background stream; demand jumps punch holes beyond it).
    pub(crate) next: usize,
    /// Admission frames still held for the uncopied span.
    pub(crate) reserved: u64,
    /// Staged pages not yet copied.
    pub(crate) pending_pages: u64,
}

impl PipelineState {
    pub(crate) fn new(
        region: Region,
        root: Capability,
        deferred: Vec<(Vpn, PteFlags)>,
        reserved: u64,
    ) -> PipelineState {
        let pending_pages = deferred.len() as u64;
        let chunks = deferred
            .chunks(CHUNK_PAGES)
            .map(|pages| PipeChunk {
                pages: pages.to_vec(),
                done: false,
            })
            .collect();
        PipelineState {
            region,
            root,
            chunks,
            next: 0,
            reserved,
            pending_pages,
        }
    }
}

impl UforkOs {
    /// Pages of `pid`'s background-copy window still uncopied (0 once
    /// the window has drained, or for a non-pipelined child).
    pub fn pipeline_pending_pages(&self, pid: Pid) -> u64 {
        self.pipelines.get(&pid).map_or(0, |s| s.pending_pages)
    }

    /// Total uncopied background pages across all children.
    pub fn pipeline_backlog_pages(&self) -> u64 {
        self.pipelines.values().map(|s| s.pending_pages).sum()
    }

    /// Children with a background-copy window still open.
    pub fn pipeline_children(&self) -> Vec<Pid> {
        self.pipelines.keys().copied().collect()
    }

    /// The pending chunk containing `vpn` in `pid`'s window, if any —
    /// the demand-priority lookup the CoA fault path uses to decide
    /// whether to jump the copy queue.
    pub(crate) fn pipeline_chunk_of(&self, pid: Pid, vpn: Vpn) -> Option<usize> {
        let s = self.pipelines.get(&pid)?;
        // Chunks and pages-within-chunks are in ascending VPN order
        // (walk order), so locate by binary search on chunk bounds.
        let idx = s
            .chunks
            .partition_point(|c| c.pages.last().is_some_and(|&(last, _)| last < vpn));
        let c = s.chunks.get(idx)?;
        (!c.done && c.pages.binary_search_by_key(&vpn, |&(v, _)| v).is_ok()).then_some(idx)
    }

    /// Copies the next pending chunk of `pid`'s window, absorbing
    /// transient memory exhaustion through the bounded reclaim loop.
    /// Returns the chunk's index, or `None` when the window is closed
    /// (drained, or `pid` never had one).
    pub fn pipeline_copy_next(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<Option<usize>> {
        let idx = {
            let Some(s) = self.pipelines.get_mut(&pid) else {
                return Ok(None);
            };
            while s.next < s.chunks.len() && s.chunks[s.next].done {
                s.next += 1;
            }
            (s.next < s.chunks.len()).then_some(s.next)
        };
        let Some(idx) = idx else {
            // A live pipeline always has a pending chunk (the window is
            // closed when the last one completes), but stay defensive:
            // close it out rather than looping forever.
            debug_assert!(false, "pipeline left open with no pending chunk");
            if let Some(s) = self.pipelines.remove(&pid) {
                self.pm.release(s.reserved);
            }
            return Ok(None);
        };
        self.pipeline_copy_chunk(ctx, pid, idx)?;
        Ok(Some(idx))
    }

    /// Synchronously drains `pid`'s whole background window on `ctx`,
    /// folding per-chunk costs through [`LaneClocks`] exactly like the
    /// parallel walk does (single lane: the background stream), with one
    /// `fork/pipeline/chunk` span per chunk tiling the window. Returns
    /// the number of chunks copied. This is the test/oracle/bench path;
    /// the executive pumps [`UforkOs::pipeline_copy_next`] instead.
    pub fn pipeline_drain(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<u64> {
        if !self.pipelines.contains_key(&pid) {
            return Ok(0);
        }
        ctx.phase("fork/pipeline/copy");
        let base = ctx.kernel_ns;
        let mut lanes = LaneClocks::new(1);
        let mut chunks = 0u64;
        loop {
            let mut scratch = Ctx::new();
            let idx = match self.pipeline_copy_next(&mut scratch, pid) {
                Ok(Some(idx)) => idx,
                Ok(None) => break,
                Err(e) => {
                    // Keep what the failed chunk charged — the rollback
                    // work and its counters must survive the error.
                    ctx.kernel(lanes.elapsed() + scratch.kernel_ns);
                    ctx.counters.merge(&scratch.counters);
                    ctx.phase_end();
                    return Err(e);
                }
            };
            let cost = scratch.kernel_ns;
            ctx.lane_span("fork/pipeline/chunk", 0, base + lanes.lane(idx), cost);
            lanes.charge(idx, cost);
            ctx.counters.merge(&scratch.counters);
            chunks += 1;
        }
        ctx.kernel(lanes.elapsed());
        ctx.phase_end();
        Ok(chunks)
    }

    /// Copies chunk `idx` of `pid`'s window (the demand-priority entry:
    /// the CoA fault path calls this with the faulting child's context,
    /// so the child pays for the chunk it jumped the queue for). Shares
    /// the fork's bounded reclaim-then-retry loop.
    pub(crate) fn pipeline_copy_chunk(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        idx: usize,
    ) -> SysResult<()> {
        use crate::fork::ForkFail;
        let mut retries = 0;
        loop {
            match self.pipeline_chunk_attempt(ctx, pid, idx) {
                Ok(()) => return Ok(()),
                Err(ForkFail::Fatal(e)) => return Err(e),
                Err(ForkFail::Retryable(e)) => {
                    if retries >= MAX_FORK_RETRIES {
                        return Err(e);
                    }
                    retries += 1;
                    ctx.phase("fork/reclaim");
                    let scrubbed = self.pm.reclaim_pass();
                    let backoff = self.cost.reclaim_backoff + self.cost.zero_page * scrubbed as f64;
                    ctx.kernel(backoff);
                    ctx.counters.reclaim_inline += 1;
                    ctx.counters.fork_backoff_ns += backoff as u64;
                }
            }
        }
    }

    /// One transactional attempt at chunk `idx`: copy (or adopt) every
    /// page, relocate its capabilities, flip the PTE to its final
    /// frame + flags, and drop the fork-time shared reference. On `Err`
    /// the journal has been rolled back — the chunk is exactly as
    /// staged.
    fn pipeline_chunk_attempt(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        idx: usize,
    ) -> Result<(), crate::fork::ForkFail> {
        use crate::fork::ForkFail;
        debug_assert_eq!(
            self.journal.len(),
            0,
            "journal must be empty between chunks"
        );
        let (region, root, pages) = {
            let s = self
                .pipelines
                .get(&pid)
                .ok_or(ForkFail::Fatal(Errno::Inval))?;
            let c = s.chunks.get(idx).ok_or(ForkFail::Fatal(Errno::Inval))?;
            if c.done {
                return Ok(());
            }
            (s.region, s.root, c.pages.clone())
        };
        let validates = self.isolation.validates_syscalls();
        let mut allocs = 0u64;

        for &(c_vpn, final_flags) in &pages {
            ctx.phase("fork/pipeline/copy");
            let pte = self.pt.lookup(c_vpn).ok_or(ForkFail::Fatal(Errno::Fault))?;
            debug_assert!(
                pte.flags.contains(PteFlags::COA),
                "a pending staged page is CoA-protected"
            );
            let refcount = self
                .pm
                .refcount(pte.pfn)
                .map_err(|_| ForkFail::Fatal(Errno::Fault))?;
            // Cross-child dedup: a sibling's background window may have
            // already materialized this exact content — share its frame
            // instead of allocating another copy. Only probed while the
            // staged frame is still shared; a sole-owner page adopts in
            // place below, which is strictly cheaper than any probe.
            let probe = if self.dedup_frames && refcount > 1 {
                ctx.phase("fork/dedup");
                dedup_probe(
                    &self.pm,
                    &self.pt,
                    &mut self.dedup,
                    &self.cost,
                    ctx,
                    pte.pfn,
                )
            } else {
                DedupProbe::Skip
            };
            if let DedupProbe::Hit(shared) = probe {
                if self.pm.inc_ref(shared).is_err() {
                    return Err(self.abort_fork(ctx, Errno::Fault));
                }
                if self.journal.record(JournalOp::RefInc(shared)).is_err() {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
                ctx.phase("fork/pipeline/pte");
                if self
                    .journal
                    .record(JournalOp::PteRemap {
                        vpn: c_vpn,
                        old: pte,
                    })
                    .is_err()
                {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
                // CoW-protected so the canonical content stays stable.
                self.pt.map(c_vpn, shared, final_flags.with(PteFlags::COW));
                ctx.kernel(self.cost.pte_write);
                ctx.counters.ptes_written += 1;
                ctx.counters.frames_deduped += 1;
                // Drop the fork-time staged reference (refcount ≥ 2
                // observed above, so this never frees the frame).
                if self.pm.dec_ref(pte.pfn).is_err() {
                    return Err(self.abort_fork(ctx, Errno::Fault));
                }
                if self.journal.record(JournalOp::RefDec(pte.pfn)).is_err() {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
                continue;
            }
            let pfn = if refcount > 1 {
                // The frame is still shared (the usual case): allocate
                // the child's private copy. The allocation consumes the
                // admission promise held since the commit.
                let new = match crate::fork::alloc_zeroed_charged(&mut self.pm, &self.cost, ctx) {
                    Ok(n) => n,
                    Err(_) => return Err(self.abort_fork(ctx, Errno::NoMem)),
                };
                if self.journal.record(JournalOp::FrameAlloc(new)).is_err() {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
                allocs += 1;
                if self.pm.copy_frame(pte.pfn, new).is_err() {
                    return Err(self.abort_fork(ctx, Errno::Fault));
                }
                ctx.kernel(self.cost.page_alloc + self.cost.page_copy);
                ctx.counters.pages_copied += 1;
                new
            } else {
                // Sole owner — every other sharer CoW'd its mapping
                // away or exited, so the fork-time frame (which still
                // holds the snapshot) is adopted in place.
                ctx.counters.pages_reclaimed += 1;
                pte.pfn
            };

            ctx.phase("fork/pipeline/reloc");
            let (pm, index) = (&mut self.pm, &self.region_index);
            let stats = relocate_frame(
                pm,
                pfn,
                region,
                &root,
                &|addr| index.lookup(addr),
                ScanMode::TagSummary,
            );
            ctx.counters.region_lookups += index.take_lookups();
            ctx.kernel(reloc_cost(&self.cost, &stats));
            ctx.counters.granules_scanned += stats.granules_scanned;
            ctx.counters.granules_skipped += stats.granules_skipped;
            ctx.counters.tag_words_loaded += stats.tag_words_loaded;
            ctx.counters.caps_relocated += stats.relocated + stats.cleared;

            ctx.phase("fork/pipeline/pte");
            // Record-then-apply: the inverse restores the staged CoA
            // mapping exactly, a no-op if the rewrite never ran.
            if self
                .journal
                .record(JournalOp::PteRemap {
                    vpn: c_vpn,
                    old: pte,
                })
                .is_err()
            {
                return Err(self.abort_fork(ctx, Errno::NoMem));
            }
            let mut flags = final_flags;
            if let DedupProbe::Miss(hash) = probe {
                // Register the fresh copy as the canonical frame for
                // this content (CoW-armed so it stays byte-stable while
                // indexed; no journal op — stale entries self-invalidate
                // on the next probe).
                self.dedup.insert(hash, pfn, c_vpn.0);
                flags = flags.with(PteFlags::COW);
            }
            self.pt.map(c_vpn, pfn, flags);
            ctx.kernel(self.cost.pte_write);
            ctx.counters.ptes_written += 1;
            if validates {
                ctx.kernel(self.cost.page_scan() + self.cost.tocttou_fixed);
            }
            if pfn != pte.pfn {
                // Drop the fork-time shared reference (apply-then-record
                // — on an injected record failure the op is still in the
                // journal and rollback re-takes the reference). Observed
                // refcount ≥ 2 above, so this never frees the frame.
                if self.pm.dec_ref(pte.pfn).is_err() {
                    return Err(self.abort_fork(ctx, Errno::Fault));
                }
                if self.journal.record(JournalOp::RefDec(pte.pfn)).is_err() {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
            }
        }

        // Chunk commit: clear the journal, consume the admission hold the
        // allocations fulfilled, and close the window if this was the
        // last pending chunk.
        let (ops, reserved) = self.journal.commit();
        debug_assert_eq!(reserved, 0, "chunks never reserve");
        ctx.counters.journal_ops += ops;
        ctx.counters.fork_chunks += 1;
        let s = self
            .pipelines
            .get_mut(&pid)
            .ok_or(ForkFail::Fatal(Errno::Inval))?;
        s.chunks[idx].done = true;
        s.pending_pages = s.pending_pages.saturating_sub(pages.len() as u64);
        let consumed = allocs.min(s.reserved);
        s.reserved -= consumed;
        self.pm.release(consumed);
        if s.pending_pages == 0 {
            let remainder = s.reserved;
            self.pipelines.remove(&pid);
            self.pm.release(remainder);
            ctx.instant("fork/pipeline/done");
        }
        Ok(())
    }
}
