//! μFork: a single-address-space OS kernel with POSIX `fork` support.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (SOSP 2025, Kressel/Lefeuvre/Olivier): an emulation of POSIX processes
//! (**μprocesses**) inside one address space, where `fork` copies the
//! parent's memory *to a different location in the same address space* and
//! CHERI-style capabilities solve the two problems that creates:
//!
//! 1. **Relocation** (paper §3.4, §4.2) — absolute memory references in
//!    child memory still point into the parent's region after the copy.
//!    Capability tags identify them reliably; [`reloc`] rebases each into
//!    the child's region with bounds clamped to it.
//! 2. **Isolation** (paper §3.6, §4.3–4.4) — capabilities bound every
//!    μprocess to its own contiguous region; sealed capabilities provide
//!    trap-less kernel entry; user capabilities lack the system permission
//!    so privileged instructions are unavailable; syscall validation and
//!    TOCTTOU buffer copies are individually toggleable (requirement R4).
//!
//! The copy itself is lazy: [`UforkOs`] implements the three strategies of
//! paper §3.8 — synchronous **Full** copy, **CoA** (copy on any child
//! access), and **CoPA** (copy on writes and on *capability loads* by the
//! child, via the CHERI fault-on-capability-load page bit).
//!
//! The kernel plugs into the `ufork-exec` executive through the
//! [`ufork_exec::MemOs`] trait, so identical workload code runs here and on
//! the baselines.
//!
//! # Examples
//!
//! ```
//! use ufork::{UforkConfig, UforkOs};
//! use ufork_abi::{ImageSpec, Pid};
//! use ufork_exec::{Ctx, MemOs};
//!
//! let mut os = UforkOs::new(UforkConfig::default());
//! let mut ctx = Ctx::new();
//! os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world()).unwrap();
//! os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
//! // The child's registers were relocated into its own region.
//! let parent_root = os.reg(Pid(1), 0).unwrap();
//! let child_root = os.reg(Pid(2), 0).unwrap();
//! assert_ne!(parent_root.base(), child_root.base());
//! ```

mod fault;
mod fork;
pub mod fork_par;
mod gate;
mod journal;
mod kernel;
mod layout;
mod pipeline;
mod reclaim;
pub mod region_index;
pub mod reloc;
pub mod talloc;

pub use fork::CopyScope;
pub use fork_par::{WalkMode, CHUNK_PAGES};
pub use gate::SyscallGate;
pub use journal::FallbackPolicy;
pub use kernel::{UforkConfig, UforkOs};
pub use layout::{ProcLayout, Segment};
pub use reclaim::RECLAIM_BATCH;
pub use region_index::{FrozenIndex, RegionIndex};
pub use reloc::ScanMode;
pub use talloc::{TAlloc, TAllocStats, UserMem};
