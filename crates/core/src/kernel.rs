//! The μFork kernel: μprocesses in a single address space.

use std::collections::BTreeMap;

use ufork_abi::{CopyStrategy, Errno, ImageSpec, IsolationLevel, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::{Ctx, MemOs};
use ufork_mem::{FrameDedupIndex, MemStats, Pfn, PhysMem, GRANULE_SIZE, PAGE_SIZE};
use ufork_sim::CostModel;
use ufork_vmem::{AccessKind, PageTable, PteFlags, Region, RegionAllocator, VirtAddr, Vpn};

use crate::fork_par::WalkMode;
use crate::gate::SyscallGate;
use crate::journal::{FallbackPolicy, ForkJournal};
use crate::layout::{ProcLayout, Segment};
use crate::region_index::RegionIndex;
use crate::reloc::ScanMode;
use crate::talloc::{TAlloc, UserMem};

/// μFork kernel configuration.
#[derive(Clone, Debug)]
pub struct UforkConfig {
    /// Physical memory size in MiB.
    pub phys_mib: u32,
    /// Memory duplication strategy for fork (paper §3.8).
    pub strategy: CopyStrategy,
    /// Isolation level (paper §3.6).
    pub isolation: IsolationLevel,
    /// Hardware cost model.
    pub cost: CostModel,
    /// Seed for μprocess region ASLR (`None` disables it).
    pub aslr_seed: Option<u64>,
    /// Span of the μprocess area in bytes (shrink to provoke region
    /// exhaustion in tests).
    pub uproc_area_len: u64,
    /// Proactively copy GOT + allocator-metadata pages at fork (paper
    /// §3.5). Disable to ablate: under CoPA the pages are then copied
    /// lazily on the child's first capability load instead.
    pub eager_fork_copies: bool,
    /// How the relocation scan discovers tagged granules: the
    /// `CLoadTags`-style tag-summary fast path (default), or the naive
    /// per-granule sweep kept as an ablation. The naive mode also uses the
    /// legacy rebuild-and-linear-scan region lookup, so it reproduces the
    /// pre-optimization host cost faithfully.
    pub scan: ScanMode,
    /// How the fork walk executes the eager copy/relocate sweep: the
    /// single-lane serial walk (default, the ablation baseline) or the
    /// multi-worker parallel engine with deterministic lane clocks.
    /// `Parallel` requires the tag-summary scan; under `ScanMode::Naive`
    /// it falls back to the serial legacy walk.
    pub walk: WalkMode,
    /// What fork admission control does when the requested copy
    /// strategy's frame demand cannot be reserved: fail up front
    /// (`Strict`, default), degrade `Full → CoA → CoPA` until the demand
    /// fits (`Degrade`), or skip the pre-flight entirely (`Disabled`).
    pub fallback: FallbackPolicy,
    /// Maintain per-PTE fork-generation stamps and soft-dirty bits so
    /// repeat forks from the same parent can use
    /// [`CopyScope::DirtySince`](crate::CopyScope) and touch only pages
    /// written since the previous fork (ROADMAP item 2). Off by default:
    /// single-shot forks pay the stamp sweep without ever reaping it.
    pub track_dirty: bool,
    /// Probe the cross-child [`FrameDedupIndex`] before materializing an
    /// eager copy, so identical (untagged) frames are shared across
    /// sibling children instead of copied per child. Off by default.
    pub dedup_frames: bool,
    /// Run the background reclaim daemon: a schedulable kernel μtask
    /// (driven by the executive, like the pipelined-fork copy engine)
    /// that scrubs recycled frames into the clean-frame magazines
    /// whenever allocator pressure reaches `Elevated`, so grant-time
    /// zeroing of `ZeroPolicy::Zeroed` allocations hits pre-zeroed
    /// frames off the hot path. Off by default: with the daemon off the
    /// executive never schedules reclaim μtasks and all zeroing stays
    /// inline, preserving prior schedules exactly.
    pub reclaim_daemon: bool,
}

impl Default for UforkConfig {
    fn default() -> UforkConfig {
        UforkConfig {
            phys_mib: 1024,
            strategy: CopyStrategy::CoPA,
            isolation: IsolationLevel::Full,
            cost: CostModel::morello(),
            aslr_seed: None,
            uproc_area_len: UPROC_AREA_LEN,
            eager_fork_copies: true,
            scan: ScanMode::default(),
            walk: WalkMode::default(),
            fallback: FallbackPolicy::default(),
            track_dirty: false,
            dedup_frames: false,
            reclaim_daemon: false,
        }
    }
}

/// Kernel-side state of one μprocess.
pub(crate) struct UProc {
    pub(crate) region: Region,
    pub(crate) layout: ProcLayout,
    /// Kernel-held root capability over the whole region.
    pub(crate) root: Capability,
    /// Capability register file (relocated at fork, paper §3.5 step 2).
    pub(crate) regs: Vec<Option<Capability>>,
    /// Bump offset for the next shm mapping in the shm window.
    pub(crate) shm_next: u64,
    /// Bump offset for the next anonymous mmap in the mmap window.
    pub(crate) mmap_next: u64,
    /// True once the μprocess has forked (its region is then retired, not
    /// reused, so relocation lookups on shared frames stay unambiguous).
    pub(crate) had_children: bool,
    /// Fork generation its PTEs were last stamped with (dirty tracking).
    /// Valid only while `dirty_tracked` is set.
    pub(crate) dirty_gen: u32,
    /// True once a fork under `track_dirty` has stamped this μprocess's
    /// PTEs, making `CopyScope::DirtySince(dirty_gen)` sound for the
    /// next fork.
    pub(crate) dirty_tracked: bool,
}

/// Number of capability registers per μprocess.
pub const NUM_REGS: usize = 32;

/// Base of the μprocess area in the single address space (the kernel
/// occupies high memory).
const UPROC_AREA_BASE: u64 = 0x0000_0010_0000;
/// Span of the μprocess area.
const UPROC_AREA_LEN: u64 = 1 << 44;
/// Kernel text location (for the syscall gate).
const KERNEL_TEXT_BASE: u64 = 0xffff_0000_0000;

/// The μFork single-address-space kernel.
///
/// Implements [`MemOs`]; see the crate docs for the design summary.
pub struct UforkOs {
    pub(crate) cost: CostModel,
    pub(crate) strategy: CopyStrategy,
    pub(crate) eager_fork_copies: bool,
    pub(crate) isolation: IsolationLevel,
    pub(crate) scan: ScanMode,
    pub(crate) walk: WalkMode,
    pub(crate) fallback: FallbackPolicy,
    pub(crate) track_dirty: bool,
    pub(crate) dedup_frames: bool,
    pub(crate) reclaim_daemon: bool,
    /// Cross-child frame-dedup index (empty unless `dedup_frames`).
    pub(crate) dedup: FrameDedupIndex,
    /// Journal of the in-flight fork's side effects (empty between
    /// forks); see [`crate::journal`].
    pub(crate) journal: ForkJournal,
    pub(crate) pm: PhysMem,
    /// THE page table — a single address space has exactly one.
    pub(crate) pt: PageTable,
    pub(crate) regions: RegionAllocator,
    pub(crate) procs: BTreeMap<Pid, UProc>,
    /// Open background-copy windows of committed pipelined forks, keyed
    /// by child pid; see [`crate::pipeline`].
    pub(crate) pipelines: BTreeMap<Pid, crate::pipeline::PipelineState>,
    /// Regions of exited μprocesses that forked (kept for relocation
    /// source lookups; never reused).
    pub(crate) retired: Vec<Region>,
    /// Sorted index over live + retired regions for O(log n) relocation
    /// source lookups (replaces rebuilding a `Vec` per fork/fault).
    pub(crate) region_index: RegionIndex,
    shm_objs: BTreeMap<String, Vec<Pfn>>,
    gate: SyscallGate,
}

impl UforkOs {
    /// Boots the kernel: physical memory, region allocator, syscall gate.
    pub fn new(cfg: UforkConfig) -> UforkOs {
        let mut regions =
            RegionAllocator::new(VirtAddr(UPROC_AREA_BASE), cfg.uproc_area_len, PAGE_SIZE);
        if let Some(seed) = cfg.aslr_seed {
            regions.set_aslr_seed(seed);
        }
        let kernel_text = Capability::new_root(KERNEL_TEXT_BASE, 0x100_0000, Perms::kernel());
        let gate = SyscallGate::new(&kernel_text, KERNEL_TEXT_BASE + 0x1000)
            .expect("gate construction is infallible at boot");
        UforkOs {
            cost: cfg.cost,
            strategy: cfg.strategy,
            eager_fork_copies: cfg.eager_fork_copies,
            isolation: cfg.isolation,
            scan: cfg.scan,
            walk: cfg.walk,
            fallback: cfg.fallback,
            track_dirty: cfg.track_dirty,
            dedup_frames: cfg.dedup_frames,
            reclaim_daemon: cfg.reclaim_daemon,
            dedup: FrameDedupIndex::new(),
            journal: ForkJournal::default(),
            pm: PhysMem::with_mib(cfg.phys_mib),
            pt: PageTable::new(),
            regions,
            procs: BTreeMap::new(),
            pipelines: BTreeMap::new(),
            retired: Vec::new(),
            region_index: RegionIndex::new(),
            shm_objs: BTreeMap::new(),
            gate,
        }
    }

    /// The trap-less syscall gate (sealed entry capability).
    pub fn gate(&self) -> &SyscallGate {
        &self.gate
    }

    /// Forks with an explicit [`CopyScope`](crate::CopyScope), bypassing
    /// the automatic scope selection in [`MemOs::fork`]. A
    /// `DirtySince(gen)` request that is not sound — dirty tracking off,
    /// the parent never stamped, or `gen` not the parent's current
    /// cursor — is silently widened to `Everything` (copying more than
    /// asked is always safe; copying less never is).
    pub fn fork_scoped(
        &mut self,
        ctx: &mut Ctx,
        parent: Pid,
        child: Pid,
        scope: crate::CopyScope,
    ) -> SysResult<()> {
        let scope = match scope {
            crate::CopyScope::DirtySince(gen)
                if self.track_dirty
                    && self
                        .proc(parent)
                        .is_ok_and(|p| p.dirty_tracked && p.dirty_gen == gen) =>
            {
                scope
            }
            _ => crate::CopyScope::Everything,
        };
        let r = self.fork_uproc(ctx, parent, child, scope);
        ctx.phase_end();
        r
    }

    /// The parent's current dirty-tracking generation, if its PTEs have
    /// been stamped (i.e. it has forked at least once under
    /// [`UforkConfig::track_dirty`]). `None` means only
    /// `CopyScope::Everything` is sound.
    pub fn fork_generation(&self, pid: Pid) -> Option<u32> {
        let p = self.proc(pid).ok()?;
        p.dirty_tracked.then_some(p.dirty_gen)
    }

    /// Test support for the generation-bit hygiene property: how many of
    /// `pid`'s PTEs currently carry the soft-dirty bit. Right after a
    /// fork under [`UforkConfig::track_dirty`] this must be zero — the
    /// stamp clears every dirty bit exactly once — and each store-kind
    /// fault afterwards raises exactly one.
    pub fn dirty_page_count(&self, pid: Pid) -> SysResult<usize> {
        let p = self.proc(pid)?;
        let start = p.region.base.vpn();
        let end = ufork_vmem::Vpn(p.region.top().0.div_ceil(ufork_mem::PAGE_SIZE));
        Ok(self
            .pt
            .range(start, end)
            .filter(|(_, pte)| pte.flags.contains(ufork_vmem::PteFlags::DIRTY))
            .count())
    }

    /// The copy strategy in effect.
    pub fn strategy(&self) -> CopyStrategy {
        self.strategy
    }

    /// The region occupied by `pid`, as `(base, len)`.
    pub fn region_of(&self, pid: Pid) -> SysResult<(u64, u64)> {
        let p = self.proc(pid)?;
        Ok((p.region.base.0, p.region.len))
    }

    /// Total frame-allocation attempts since boot (successful or not).
    /// The differential oracle counts a clean run's attempts, then
    /// replays the same program failing each attempt in turn.
    pub fn frame_alloc_attempts(&self) -> u64 {
        self.pm.alloc_attempts()
    }

    /// Arms deterministic fault injection: frame-allocation attempt
    /// number `attempt` (0-based since boot) fails with `NoMem`. One-shot.
    /// Reaches every allocation path — eager fork copies, CoW/CoA/CoPA
    /// fault resolution (including capability-load faults), spawn, mmap.
    pub fn inject_frame_alloc_failure(&mut self, attempt: u64) {
        self.pm.fail_alloc_at(attempt);
    }

    /// Disarms frame-allocation fault injection.
    pub fn clear_frame_alloc_failure(&mut self) {
        self.pm.clear_alloc_failure();
    }

    /// Total frame-copy attempts since boot (successful or not), the
    /// index space for [`UforkOs::inject_frame_copy_failure`].
    pub fn frame_copy_attempts(&self) -> u64 {
        self.pm.copy_attempts()
    }

    /// Arms deterministic copy-failure injection: frame-copy attempt
    /// number `attempt` (0-based since boot) fails as if the destination
    /// frame were poisoned. One-shot. Reaches the eager fork copies and
    /// CoW/CoA/CoPA fault resolution.
    pub fn inject_frame_copy_failure(&mut self, attempt: u64) {
        self.pm.fail_copy_at(attempt);
    }

    /// Disarms frame-copy fault injection.
    pub fn clear_frame_copy_failure(&mut self) {
        self.pm.clear_copy_failure();
    }

    /// Total fork-journal ops recorded since boot, the index space for
    /// [`UforkOs::inject_journal_failure`]. The chaos sweep measures a
    /// clean fork's op window with this, then replays the same fork
    /// failing each op in turn.
    pub fn journal_ops_recorded(&self) -> u64 {
        self.journal.recorded()
    }

    /// Arms deterministic journal fault injection: recording journal op
    /// number `op` (0-based since boot) fails, aborting and rolling back
    /// the fork in flight. One-shot. Unlike allocator-level `NoMem`,
    /// injected journal aborts are *not* absorbed by the
    /// reclaim-then-retry loop — the fork fails so the sweep can audit
    /// the rollback.
    pub fn inject_journal_failure(&mut self, op: u64) {
        self.journal.fail_at(op);
    }

    /// Disarms journal fault injection.
    pub fn clear_journal_failure(&mut self) {
        self.journal.clear_failure();
    }

    /// Overrides the allocator's pressure watermarks (both counted in
    /// *available* frames). Tests and the chaos sweep use this to force
    /// elevated pressure on an otherwise lightly-loaded machine, so the
    /// background reclaim daemon engages without filling physical
    /// memory first.
    pub fn set_pressure_watermarks(&mut self, low: u32, high: u32) {
        self.pm.set_watermarks(low, high);
    }

    /// Cumulative sharded-allocator statistics (also surfaced per-process
    /// through [`MemStats::alloc`] via [`MemOs::mem_stats`]).
    pub fn alloc_shard_stats(&self) -> ufork_mem::ShardStats {
        self.pm.shard_stats()
    }

    /// Audits global kernel memory state; the invariants a failed or
    /// unwound fork must not break. Returns `(dangling_ptes,
    /// unaccounted_frames)`:
    ///
    /// * a PTE is *dangling* if it maps a page outside every live
    ///   μprocess region, or targets a frame that is no longer allocated;
    /// * a frame is *unaccounted* if its total refcount across all live
    ///   PTEs and shm objects does not equal its allocator refcount
    ///   (i.e. references were leaked or double-freed).
    pub fn audit_kernel(&self) -> (usize, usize) {
        use std::collections::BTreeMap as Map;
        let mut dangling = 0usize;
        let mut refs: Map<u32, u32> = Map::new();
        for (vpn, pte) in self.pt.iter() {
            let va = vpn.base().0;
            let in_live = self
                .procs
                .values()
                .any(|p| va >= p.region.base.0 && va < p.region.top().0);
            if !in_live || self.pm.refcount(pte.pfn).is_err() {
                dangling += 1;
                continue;
            }
            *refs.entry(pte.pfn.0).or_default() += 1;
        }
        // Shm objects hold one reference per frame while the object is
        // alive, on top of one per mapping.
        for frames in self.shm_objs.values() {
            for pfn in frames {
                *refs.entry(pfn.0).or_default() += 1;
            }
        }
        let mut unaccounted = 0usize;
        for (&raw, &seen) in &refs {
            match self.pm.refcount(Pfn(raw)) {
                Ok(rc) if rc == seen => {}
                _ => unaccounted += 1,
            }
        }
        // Frames allocated but not referenced by any PTE or shm object
        // are leaks.
        unaccounted += (self.pm.allocated_frames() as usize).saturating_sub(refs.len());
        (dangling, unaccounted)
    }

    /// Removes a named shared-memory object, dropping the object's own
    /// reference on each backing frame. Live mappings keep their frames
    /// alive through the per-mapping references; once every mapping is
    /// unmapped (process teardown) the frames return to the allocator.
    /// Returns whether the object existed.
    pub fn shm_unlink(&mut self, name: &str) -> bool {
        let Some(frames) = self.shm_objs.remove(name) else {
            return false;
        };
        for pfn in frames {
            let _ = self.pm.dec_ref(pfn);
        }
        true
    }

    /// Page-table flags for a segment when fully owned (not shared).
    pub(crate) fn seg_flags(seg: Segment) -> PteFlags {
        match seg {
            Segment::Text => PteFlags::rx(),
            Segment::Got => PteFlags::ro(),
            // Shm carries the SHARED software bit so every walk (and
            // fault-time remaps) refcount-shares rather than copies.
            Segment::Shm => PteFlags::rw().with(PteFlags::SHARED),
            Segment::Data
            | Segment::Stack
            | Segment::HeapMeta
            | Segment::HeapArena
            | Segment::Mmap => PteFlags::rw(),
        }
    }

    pub(crate) fn proc(&self, pid: Pid) -> SysResult<&UProc> {
        self.procs.get(&pid).ok_or(Errno::Inval)
    }

    /// Legacy region lookup for relocation: rebuilds a `Vec` of live
    /// μprocess regions, then retired regions (most recent first), for
    /// linear scanning. Kept only for [`ScanMode::Naive`], which
    /// reproduces the pre-optimization cost profile; the fast path uses
    /// the incrementally-maintained [`RegionIndex`] instead. Both return
    /// the same region for every address (regions are pairwise disjoint).
    pub(crate) fn source_regions(&self) -> Vec<Region> {
        let mut v: Vec<Region> = self.procs.values().map(|p| p.region).collect();
        v.extend(self.retired.iter().rev().copied());
        v
    }

    /// The allocator view over a μprocess heap.
    pub(crate) fn talloc_of(&self, pid: Pid) -> SysResult<TAlloc> {
        let p = self.proc(pid)?;
        Ok(TAlloc {
            meta_base: p.region.base.0 + p.layout.heap_meta.0,
            max_blocks: p.layout.max_blocks(),
            arena_base: p.region.base.0 + p.layout.heap_arena.0,
            arena_len: p.layout.heap_arena.1,
        })
    }

    /// Reads allocator statistics for a μprocess (through the checked
    /// user path, like the allocator itself).
    pub fn talloc_stats(&mut self, pid: Pid) -> SysResult<crate::talloc::TAllocStats> {
        let ta = self.talloc_of(pid)?;
        let mut ctx = Ctx::new();
        let mut um = KUserMem {
            os: self,
            ctx: &mut ctx,
            pid,
        };
        ta.stats(&mut um)
    }

    /// Maps fresh zeroed frames for `[base, base+len)` with `flags`.
    ///
    /// Frames are allocated up front and the PTEs land in one
    /// [`PageTable::map_range`] batch; if allocation fails partway the
    /// already-allocated frames are released and nothing is mapped.
    fn map_fresh(
        &mut self,
        ctx: &mut Ctx,
        base: VirtAddr,
        len: u64,
        flags: PteFlags,
    ) -> SysResult<()> {
        let mut vpns = ufork_vmem::pages_covering(base, len);
        let Some(start) = vpns.next() else {
            return Ok(());
        };
        let pages = 1 + vpns.count() as u64;
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match self.pm.alloc_frame() {
                Ok(pfn) => frames.push(pfn),
                Err(_) => {
                    for pfn in frames {
                        let _ = self.pm.dec_ref(pfn);
                    }
                    return Err(Errno::NoMem);
                }
            }
        }
        let n = self.pt.map_range(start, frames, flags);
        ctx.kernel((self.cost.page_alloc + self.cost.pte_write) * n as f64);
        ctx.counters.ptes_written += n;
        Ok(())
    }
}

impl MemOs for UforkOs {
    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn spawn(&mut self, ctx: &mut Ctx, pid: Pid, image: &ImageSpec) -> SysResult<()> {
        let layout = ProcLayout::for_image(image);
        let region = self
            .regions
            .alloc(layout.region_len())
            .map_err(|_| Errno::NoMem)?;
        let base = region.base;

        // Map every segment except the shm window (mapped on demand).
        let segs = [
            (layout.text, Segment::Text),
            (layout.got, Segment::Got),
            (layout.data, Segment::Data),
            (layout.stack, Segment::Stack),
            (layout.heap_meta, Segment::HeapMeta),
            (layout.heap_arena, Segment::HeapArena),
        ];
        for ((off, len), seg) in segs {
            self.map_fresh(ctx, VirtAddr(base.0 + off), len, Self::seg_flags(seg))?;
        }

        // The μprocess root: confined to the region, no SYSTEM permission
        // (paper §4.4 principle 2: user code cannot execute privileged
        // instructions).
        let root = Capability::new_root(base.0, layout.region_len(), Perms::data());
        debug_assert!(!root.perms().contains(Perms::SYSTEM));

        // Populate the GOT: one capability per global symbol, pointing
        // into the image's segments (PIC global addressing, paper §3.7).
        let got_base = base.0 + layout.got.0;
        for slot in 0..layout.got_slots {
            let target_off = match slot % 3 {
                0 => layout.text.0 + (slot * 64) % layout.text.1,
                1 => layout.data.0 + (slot * 128) % layout.data.1,
                _ => layout.heap_arena.0 + (slot * 256) % layout.heap_arena.1,
            };
            let target = root
                .with_bounds(
                    base.0 + target_off,
                    64.min(layout.region_len() - target_off),
                )
                .map_err(|_| Errno::Fault)?;
            let va = VirtAddr(got_base + slot * GRANULE_SIZE);
            let pte = self.pt.lookup(va.vpn()).ok_or(Errno::Fault)?;
            self.pm
                .store_cap(pte.pfn, va.page_offset(), &target)
                .map_err(|_| Errno::Fault)?;
        }

        // Plant a small frame-pointer chain in the stack so fork has
        // register- and stack-resident capabilities to relocate.
        let stack_base = base.0 + layout.stack.0;
        for i in 0..4u64 {
            let va = VirtAddr(stack_base + i * 512);
            let target = root
                .with_bounds(stack_base + (i + 1) * 512, 256)
                .map_err(|_| Errno::Fault)?;
            let pte = self.pt.lookup(va.vpn()).ok_or(Errno::Fault)?;
            self.pm
                .store_cap(pte.pfn, va.page_offset(), &target)
                .map_err(|_| Errno::Fault)?;
        }

        let mut regs = vec![None; NUM_REGS];
        regs[0] = Some(root); // data root
        regs[1] = Some(
            root.with_bounds(stack_base, layout.stack.1)
                .map_err(|_| Errno::Fault)?,
        ); // stack pointer
        regs[2] = Some(Capability::new_root(base.0, layout.text.1, Perms::code())); // PCC

        self.procs.insert(
            pid,
            UProc {
                region,
                layout,
                root,
                regs,
                shm_next: 0,
                mmap_next: 0,
                had_children: false,
                dirty_gen: 0,
                dirty_tracked: false,
            },
        );
        self.region_index.insert(region);

        // Initialize the in-memory allocator through the user path.
        let ta = self.talloc_of(pid)?;
        let mut um = KUserMem { os: self, ctx, pid };
        ta.init(&mut um)?;
        Ok(())
    }

    fn fork(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        // Automatic scope selection: once the parent's PTEs carry a
        // generation stamp, every later fork only needs the pages dirtied
        // since — the incremental-snapshot fast path (ROADMAP item 2).
        let scope = match self.proc(parent) {
            Ok(p) if self.track_dirty && p.dirty_tracked => {
                crate::CopyScope::DirtySince(p.dirty_gen)
            }
            _ => crate::CopyScope::Everything,
        };
        let r = self.fork_uproc(ctx, parent, child, scope);
        // Close whatever fork phase is open, on success and error alike,
        // so post-fork charges never inherit a fork phase.
        ctx.phase_end();
        r
    }

    fn destroy(&mut self, ctx: &mut Ctx, pid: Pid) {
        let Some(p) = self.procs.remove(&pid) else {
            return;
        };
        // A child dying mid-window abandons its background copies: the
        // unmap below drops the staged shared references, and the
        // admission hold for the never-copied span is handed back.
        if let Some(s) = self.pipelines.remove(&pid) {
            self.pm.release(s.reserved);
        }
        let start = p.region.base.vpn();
        let end = Vpn(p.region.top().0.div_ceil(PAGE_SIZE));
        for (_, pte) in self.pt.unmap_range(start, end) {
            let _ = self.pm.dec_ref(pte.pfn);
            ctx.kernel(self.cost.pte_write * 0.5);
        }
        if p.had_children {
            // The region stays indexed: still a relocation source for
            // frames the children share.
            self.retired.push(p.region);
        } else {
            self.region_index.remove(p.region);
            let _ = self.regions.free(p.region);
        }
    }

    fn load(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, buf: &mut [u8]) -> SysResult<()> {
        self.user_load(ctx, pid, cap, buf)
    }

    fn store(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability, data: &[u8]) -> SysResult<()> {
        self.user_store(ctx, pid, cap, data)
    }

    fn load_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        self.user_load_cap(ctx, pid, cap)
    }

    fn store_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        value: &Capability,
    ) -> SysResult<()> {
        self.user_store_cap(ctx, pid, cap, value)
    }

    fn malloc(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        let ta = self.talloc_of(pid)?;
        let mut um = KUserMem { os: self, ctx, pid };
        ta.malloc(&mut um, len)
    }

    fn mfree(&mut self, ctx: &mut Ctx, pid: Pid, cap: &Capability) -> SysResult<()> {
        let ta = self.talloc_of(pid)?;
        let mut um = KUserMem { os: self, ctx, pid };
        ta.free(&mut um, cap)
    }

    fn reg(&self, pid: Pid, idx: usize) -> SysResult<Capability> {
        self.proc(pid)?
            .regs
            .get(idx)
            .copied()
            .flatten()
            .ok_or(Errno::Inval)
    }

    fn set_reg(&mut self, pid: Pid, idx: usize, cap: Capability) -> SysResult<()> {
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let slot = p.regs.get_mut(idx).ok_or(Errno::Inval)?;
        *slot = Some(cap);
        Ok(())
    }

    fn shm_open(&mut self, ctx: &mut Ctx, pid: Pid, name: &str, len: u64) -> SysResult<Capability> {
        let pages = len.div_ceil(PAGE_SIZE);
        if !self.shm_objs.contains_key(name) {
            let mut frames = Vec::new();
            for _ in 0..pages {
                frames.push(self.pm.alloc_frame().map_err(|_| Errno::NoMem)?);
            }
            self.shm_objs.insert(name.to_string(), frames);
        }
        let frames = self.shm_objs[name].clone();
        if frames.len() < pages as usize {
            return Err(Errno::Inval);
        }
        let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
        let (shm_off, shm_len) = p.layout.shm;
        if p.shm_next + pages * PAGE_SIZE > shm_len {
            return Err(Errno::NoMem);
        }
        let map_base = p.region.base.0 + shm_off + p.shm_next;
        p.shm_next += pages * PAGE_SIZE;
        let root = p.root;
        for (i, pfn) in frames.iter().take(pages as usize).enumerate() {
            self.pm.inc_ref(*pfn).map_err(|_| Errno::Fault)?;
            let vpn = VirtAddr(map_base + i as u64 * PAGE_SIZE).vpn();
            self.pt.map(vpn, *pfn, Self::seg_flags(Segment::Shm));
            ctx.kernel(self.cost.pte_write);
            ctx.counters.ptes_written += 1;
        }
        // Data-only sharing: no capability load/store permission, so
        // capabilities cannot leak across μprocesses through shm
        // (paper §4.3, "capabilities do not leak across μprocesses").
        root.with_bounds(map_base, len)
            .and_then(|c| c.with_perms(Perms::LOAD | Perms::STORE | Perms::GLOBAL))
            .map_err(|_| Errno::Fault)
    }

    fn mmap_anon(&mut self, ctx: &mut Ctx, pid: Pid, len: u64) -> SysResult<Capability> {
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let (base, root) = {
            let p = self.procs.get_mut(&pid).ok_or(Errno::Inval)?;
            let (mmap_off, mmap_len) = p.layout.mmap;
            if p.mmap_next + pages * PAGE_SIZE > mmap_len {
                return Err(Errno::NoMem);
            }
            let base = p.region.base.0 + mmap_off + p.mmap_next;
            p.mmap_next += pages * PAGE_SIZE;
            (base, p.root)
        };
        self.map_fresh(ctx, VirtAddr(base), pages * PAGE_SIZE, PteFlags::rw())?;
        root.with_bounds(base, len.max(1)).map_err(|_| Errno::Fault)
    }

    fn pipeline_pending(&self, pid: Pid) -> u64 {
        self.pipeline_pending_pages(pid)
    }

    fn pipeline_step(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<bool> {
        self.pipeline_copy_next(ctx, pid).map(|c| c.is_some())
    }

    fn reclaim_pending(&self) -> bool {
        self.reclaim_pending_uproc()
    }

    fn reclaim_step(&mut self, ctx: &mut Ctx) -> SysResult<u64> {
        self.reclaim_step_uproc(ctx)
    }

    fn resident_pages(&self, pid: Pid) -> u64 {
        self.resident_pages_uproc(pid)
    }

    fn oom_reap(&mut self, ctx: &mut Ctx, pid: Pid) -> SysResult<()> {
        self.oom_reap_uproc(ctx, pid)
    }

    fn syscall_entry_cost(&self) -> f64 {
        self.cost.sealed_syscall
    }

    fn syscall_is_trap(&self) -> bool {
        false
    }

    fn ctx_switch_cost(&self, _from: Pid, _to: Pid) -> f64 {
        // Same address space: no page-table switch, no TLB flush.
        self.cost.ctx_switch
    }

    fn big_kernel_lock(&self) -> bool {
        true // Unikraft SMP model (paper §4.5)
    }

    fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    fn copyio_cost_per_byte(&self) -> f64 {
        // Single address space: the kernel reads user buffers in place.
        // (TOCTTOU copies, when enabled, are charged by `charge_syscall`.)
        0.0
    }

    fn mem_stats(&self, pid: Pid) -> MemStats {
        let Ok(p) = self.proc(pid) else {
            return MemStats::default();
        };
        let start = p.region.base.vpn();
        let end = Vpn(p.region.top().0.div_ceil(PAGE_SIZE));
        let frames: Vec<Pfn> = self.pt.range(start, end).map(|(_, pte)| pte.pfn).collect();
        let mut s = MemStats::for_frames(&self.pm, frames);
        s.dedup_entries = self.dedup.len() as u64;
        s
    }

    fn allocated_frames(&self) -> u32 {
        self.pm.allocated_frames()
    }

    fn peak_frames(&self) -> u32 {
        self.pm.peak_allocated_frames()
    }

    fn audit_isolation(&self, pid: Pid) -> usize {
        let Ok(p) = self.proc(pid) else { return 0 };
        let mut violations = 0;
        for cap in p.regs.iter().flatten() {
            if !cap.confined_to(p.region.base.0, p.region.len) {
                violations += 1;
            }
        }
        let start = p.region.base.vpn();
        let end = Vpn(p.region.top().0.div_ceil(PAGE_SIZE));
        for (vpn, pte) in self.pt.range(start, end) {
            // Pages the μprocess cannot load capabilities from do not
            // expose their (possibly stale) contents.
            if !pte.flags.contains(PteFlags::READ)
                || pte.flags.contains(PteFlags::LC_FAULT)
                || pte.flags.contains(PteFlags::COA)
            {
                continue;
            }
            let off = vpn.base().0 - p.region.base.0;
            if p.layout.segment_of(off) == Segment::Shm {
                continue; // shm caps are forbidden by missing perms
            }
            let Ok(frame) = self.pm.frame(pte.pfn) else {
                continue;
            };
            for (_, cap) in frame.tagged_granules() {
                if !cap.confined_to(p.region.base.0, p.region.len) {
                    violations += 1;
                }
            }
        }
        violations
    }
}

/// [`UserMem`] adapter: runs allocator metadata accesses through the
/// kernel's checked user path on behalf of `pid`.
pub(crate) struct KUserMem<'a> {
    pub(crate) os: &'a mut UforkOs,
    pub(crate) ctx: &'a mut Ctx,
    pub(crate) pid: Pid,
}

impl KUserMem<'_> {
    fn cap_at(&self, va: u64, len: u64) -> SysResult<Capability> {
        let p = self.os.proc(self.pid)?;
        p.root.with_bounds(va, len).map_err(|_| Errno::Fault)
    }
}

impl UserMem for KUserMem<'_> {
    fn load(&mut self, va: u64, buf: &mut [u8]) -> SysResult<()> {
        let cap = self.cap_at(va, buf.len() as u64)?;
        self.os.user_load(self.ctx, self.pid, &cap, buf)
    }

    fn store(&mut self, va: u64, data: &[u8]) -> SysResult<()> {
        let cap = self.cap_at(va, data.len() as u64)?;
        self.os.user_store(self.ctx, self.pid, &cap, data)
    }

    fn load_cap(&mut self, va: u64) -> SysResult<Option<Capability>> {
        let cap = self.cap_at(va, GRANULE_SIZE)?;
        self.os.user_load_cap(self.ctx, self.pid, &cap)
    }

    fn store_cap(&mut self, va: u64, value: &Capability) -> SysResult<()> {
        let cap = self.cap_at(va, GRANULE_SIZE)?;
        self.os.user_store_cap(self.ctx, self.pid, &cap, value)
    }

    fn derive(&self, base: u64, len: u64) -> SysResult<Capability> {
        self.cap_at(base, len)
    }

    fn charge(&mut self, n: u64) {
        self.ctx.user(self.os.cost.cpu_op * n as f64);
    }
}

// AccessKind is used by fault.rs; re-import check to keep the compiler
// honest about the module split.
const _: fn() = || {
    let _ = AccessKind::Load;
};
