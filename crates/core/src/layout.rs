//! μprocess region layout (paper §3.7, Figure 1).
//!
//! Each μprocess occupies one contiguous region of the single address
//! space, so isolation mechanisms relying on contiguous bounds can confine
//! it cheaply. Within the region the layout is fixed:
//!
//! ```text
//! +--------------------+  region base
//! | text + rodata (RX) |
//! +--------------------+
//! | GOT (R, caps)      |  copied + relocated eagerly at fork
//! +--------------------+
//! | data (RW)          |
//! +--------------------+
//! | stack (RW)         |
//! +--------------------+
//! | heap metadata (RW) |  allocator block descriptors; eager at fork
//! | heap arena (RW)    |  static heap, build-time sized (paper §4.2)
//! +--------------------+
//! | shm window         |  shared mappings (same frames in every proc)
//! +--------------------+  region top
//! ```
//!
//! Because every μprocess of a program uses the *same* layout, relocation
//! reduces to rebasing by `child_base - source_base`.

use ufork_abi::ImageSpec;
use ufork_mem::PAGE_SIZE;

/// Segments of a μprocess region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Code and read-only data.
    Text,
    /// Global offset table.
    Got,
    /// Initialized writable data.
    Data,
    /// Stack.
    Stack,
    /// Allocator metadata (block descriptors).
    HeapMeta,
    /// Heap arena.
    HeapArena,
    /// Shared-memory window.
    Shm,
    /// Anonymous-mmap window (dynamic memory beyond the static heap).
    Mmap,
}

/// Byte offsets (relative to the region base) of each segment.
#[derive(Clone, Debug)]
pub struct ProcLayout {
    /// Text segment offset (always 0) and length.
    pub text: (u64, u64),
    /// GOT offset and length.
    pub got: (u64, u64),
    /// Data segment offset and length.
    pub data: (u64, u64),
    /// Stack offset and length.
    pub stack: (u64, u64),
    /// Allocator-metadata offset and length.
    pub heap_meta: (u64, u64),
    /// Heap-arena offset and length.
    pub heap_arena: (u64, u64),
    /// Shared-memory window offset and length.
    pub shm: (u64, u64),
    /// Anonymous-mmap window offset and length.
    pub mmap: (u64, u64),
    /// Number of GOT capability slots.
    pub got_slots: u64,
}

/// Size of one allocator block descriptor in bytes (two granules: the
/// block capability, then size + next-index).
pub const BLOCK_DESC_BYTES: u64 = 32;

/// Default shared-memory window size.
pub const SHM_WINDOW_BYTES: u64 = 4 * 1024 * 1024;

/// Default anonymous-mmap window size.
pub const MMAP_WINDOW_BYTES: u64 = 16 * 1024 * 1024;

fn page_up(x: u64) -> u64 {
    x.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

impl ProcLayout {
    /// Computes the layout for an image.
    ///
    /// The allocator metadata area is sized at one descriptor per 2 KiB of
    /// arena (clamped), mirroring tinyalloc's fixed block-descriptor array
    /// (paper §4.1).
    pub fn for_image(image: &ImageSpec) -> ProcLayout {
        let text_len = page_up(image.text_bytes.max(PAGE_SIZE));
        let got_len = page_up((image.got_slots * 16).max(1));
        let data_len = page_up(image.data_bytes.max(PAGE_SIZE));
        let stack_len = page_up(image.stack_bytes.max(PAGE_SIZE));
        let arena_len = page_up(image.heap_bytes.max(PAGE_SIZE));
        let max_blocks = (arena_len / 2048).clamp(128, 262_144);
        let meta_len = page_up(64 + max_blocks * BLOCK_DESC_BYTES);

        let text = (0, text_len);
        let got = (text_len, got_len);
        let data = (got.0 + got_len, data_len);
        let stack = (data.0 + data_len, stack_len);
        let heap_meta = (stack.0 + stack_len, meta_len);
        let heap_arena = (heap_meta.0 + meta_len, arena_len);
        let shm = (heap_arena.0 + arena_len, SHM_WINDOW_BYTES);
        let mmap = (shm.0 + shm.1, MMAP_WINDOW_BYTES);
        ProcLayout {
            text,
            got,
            data,
            stack,
            heap_meta,
            heap_arena,
            shm,
            mmap,
            got_slots: image.got_slots,
        }
    }

    /// Total region length in bytes.
    pub fn region_len(&self) -> u64 {
        self.mmap.0 + self.mmap.1
    }

    /// Bytes that are *mapped* at spawn (everything but the shm window).
    pub fn mapped_len(&self) -> u64 {
        self.shm.0
    }

    /// Maximum number of allocator block descriptors.
    pub fn max_blocks(&self) -> u64 {
        ((self.heap_meta.1 - 64) / BLOCK_DESC_BYTES).min(262_144)
    }

    /// The segment containing the region-relative byte offset.
    pub fn segment_of(&self, off: u64) -> Segment {
        let in_seg = |s: (u64, u64)| off >= s.0 && off < s.0 + s.1;
        if in_seg(self.text) {
            Segment::Text
        } else if in_seg(self.got) {
            Segment::Got
        } else if in_seg(self.data) {
            Segment::Data
        } else if in_seg(self.stack) {
            Segment::Stack
        } else if in_seg(self.heap_meta) {
            Segment::HeapMeta
        } else if in_seg(self.heap_arena) {
            Segment::HeapArena
        } else if in_seg(self.shm) {
            Segment::Shm
        } else {
            Segment::Mmap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_contiguous_and_page_aligned() {
        let l = ProcLayout::for_image(&ImageSpec::hello_world());
        let segs = [
            l.text,
            l.got,
            l.data,
            l.stack,
            l.heap_meta,
            l.heap_arena,
            l.shm,
            l.mmap,
        ];
        let mut expect = 0;
        for (off, len) in segs {
            assert_eq!(off, expect, "segments must be contiguous");
            assert_eq!(off % PAGE_SIZE, 0);
            assert_eq!(len % PAGE_SIZE, 0);
            assert!(len > 0);
            expect = off + len;
        }
        assert_eq!(l.region_len(), expect);
    }

    #[test]
    fn segment_lookup() {
        let l = ProcLayout::for_image(&ImageSpec::hello_world());
        assert_eq!(l.segment_of(0), Segment::Text);
        assert_eq!(l.segment_of(l.got.0), Segment::Got);
        assert_eq!(l.segment_of(l.heap_arena.0), Segment::HeapArena);
        assert_eq!(l.segment_of(l.shm.0), Segment::Shm);
        assert_eq!(l.segment_of(l.region_len() - 1), Segment::Mmap);
    }

    #[test]
    fn metadata_scales_with_arena_but_is_clamped() {
        let small = ProcLayout::for_image(&ImageSpec::hello_world());
        assert!(small.max_blocks() >= 128);
        let big = ProcLayout::for_image(&ImageSpec::with_heap("big", 512 << 20));
        assert!(big.max_blocks() <= 262_144);
        assert!(big.max_blocks() > small.max_blocks());
    }

    #[test]
    fn mapped_len_excludes_shm_and_mmap_windows() {
        let l = ProcLayout::for_image(&ImageSpec::hello_world());
        assert_eq!(
            l.mapped_len() + SHM_WINDOW_BYTES + MMAP_WINDOW_BYTES,
            l.region_len()
        );
    }
}
