//! User memory access and transparent fault resolution (CoW / CoA / CoPA).

use ufork_abi::{Errno, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::Ctx;
use ufork_mem::{GRANULE_SIZE, PAGE_SIZE};
use ufork_vmem::{AccessKind, Fault, PteFlags, VirtAddr};

use ufork_mem::Pfn;

use crate::journal::FallbackPolicy;
use crate::kernel::UforkOs;
use crate::reloc::{reloc_cost, relocate_frame, ScanMode};

impl UforkOs {
    /// Checks a capability for an access, enforcing the μprocess
    /// confinement invariant (paper §4.2: all capabilities available to a
    /// μprocess only grant access within its region).
    fn check_cap(
        &self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        addr: u64,
        len: u64,
        perms: Perms,
    ) -> SysResult<()> {
        if !self.isolation.checks_memory() {
            return Ok(());
        }
        let p = self.proc(pid)?;
        if !cap.confined_to(p.region.base.0, p.region.len) {
            // A capability escaping the region (stale parent pointer,
            // forgery, leaked kernel cap) — the hardware would never have
            // produced it; the kernel refuses and records the violation.
            ctx.counters.isolation_violations += 1;
            return Err(Errno::Fault);
        }
        cap.check_access(addr, len, perms).map_err(|_| {
            // A bounds/permission refusal by the capability hardware is
            // the isolation mechanism firing.
            ctx.counters.isolation_violations += 1;
            Errno::Fault
        })
    }

    /// Translates one page-confined access, resolving transparent faults.
    fn translate_user(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> SysResult<ufork_vmem::Pte> {
        // At most: one strategy fault + one residual CoW fault.
        let mut last: Option<Fault> = None;
        for _ in 0..4 {
            let Some(pte) = self.pt.lookup(va.vpn()) else {
                return Err(Errno::Fault);
            };
            // Peek the tag for capability loads: LC_FAULT only fires when
            // the loaded granule is actually tagged (paper §4.2). The peek
            // is a real hardware tag read, costed like any other tag load
            // so CapLoad-heavy workloads aren't undercosted relative to
            // the CLoadTags model.
            let tagged = if kind == AccessKind::CapLoad {
                ctx.kernel(self.cost.tags_load);
                self.pm
                    .load_cap(pte.pfn, va.granule_align_down().page_offset())
                    .ok()
                    .flatten()
                    .is_some()
            } else {
                false
            };
            match self.pt.translate(va, kind, tagged) {
                Ok(pte) => return Ok(pte),
                Err(f) if f.is_transparent() => {
                    last = Some(f);
                    self.resolve_fault(ctx, pid, f)?;
                }
                Err(_) => return Err(Errno::Fault),
            }
        }
        // Retry budget exhausted: a kernel invariant breach, since
        // `resolve_fault` maps the segment's final flags and a resolved
        // page cannot fault transparently again. Count it (and name the
        // unresolved fault in debug builds) so it is distinguishable from
        // an ordinary permission refusal.
        ctx.counters.fault_retries_exhausted += 1;
        debug_assert!(
            last.is_none(),
            "fault retry budget exhausted for {kind:?} at {va:?}: \
             last transparent fault {last:?} did not resolve"
        );
        Err(Errno::Fault)
    }

    /// Resolves a CoW / CoA / capability-load fault by copying (or
    /// reclaiming) the page and relocating its capabilities (paper §4.2,
    /// "the copy follows three steps").
    pub(crate) fn resolve_fault(&mut self, ctx: &mut Ctx, pid: Pid, fault: Fault) -> SysResult<()> {
        let r = self.resolve_fault_inner(ctx, pid, fault);
        // Close whatever fault phase is open, on success and error alike.
        ctx.phase_end();
        r
    }

    fn resolve_fault_inner(&mut self, ctx: &mut Ctx, pid: Pid, fault: Fault) -> SysResult<()> {
        // Demand priority for the pipelined fork: a child touching a
        // page whose copy is still queued behind the commit jumps the
        // copy queue — the whole chunk resolves inline on the faulting
        // context (marking it done so the background stream skips it),
        // then the access retries against the final mapping. Counted as
        // a queue jump, not a CoA fault: the chunk machinery does the
        // copy/relocate work and charges `fork/pipeline/*` phases.
        if let Fault::CoAccess { .. } = fault {
            if let Some(idx) = self.pipeline_chunk_of(pid, fault.va().vpn()) {
                ctx.counters.pipeline_chunks_jumped += 1;
                ctx.instant("fork/pipeline/jump");
                return self.pipeline_copy_chunk(ctx, pid, idx);
            }
        }
        match fault {
            Fault::Cow { .. } => {
                ctx.counters.cow_faults += 1;
                ctx.instant("fault/cow");
            }
            Fault::CoAccess { .. } => {
                ctx.counters.coa_faults += 1;
                ctx.instant("fault/coa");
            }
            Fault::CapLoad { .. } => {
                ctx.counters.cap_load_faults += 1;
                ctx.instant("fault/capload");
            }
            _ => return Err(Errno::Fault),
        }
        ctx.phase("fault/entry");
        ctx.kernel(self.cost.fault_entry);
        let va = fault.va();
        let vpn = va.vpn();
        let pte = self.pt.lookup(vpn).ok_or(Errno::Fault)?;
        let (region, final_flags) = {
            let p = self.proc(pid)?;
            let off = vpn.base().0 - p.region.base.0;
            (p.region, Self::seg_flags(p.layout.segment_of(off)))
        };
        let refcount = self.pm.refcount(pte.pfn).map_err(|_| Errno::Fault)?;
        let pfn = if refcount > 1 {
            // Step 1+2: point the child PTE at a fresh frame and copy.
            ctx.phase("fault/copy");
            let new = self.fault_alloc_frame(ctx)?;
            if self.pm.copy_frame(pte.pfn, new).is_err() {
                // The fresh frame must not leak when the copy fails: drop
                // our only reference so the allocator reclaims it. The
                // PTE still points at the intact shared frame, so a retry
                // of the access can succeed.
                let _ = self.pm.dec_ref(new);
                return Err(Errno::Fault);
            }
            if self.pm.dec_ref(pte.pfn).is_err() {
                let _ = self.pm.dec_ref(new);
                return Err(Errno::Fault);
            }
            ctx.kernel(self.cost.page_alloc + self.cost.page_copy);
            ctx.counters.pages_copied += 1;
            new
        } else {
            // Last sharer: reclaim in place (no copy needed).
            ctx.counters.pages_reclaimed += 1;
            pte.pfn
        };
        ctx.phase("fault/pte");
        // Soft-dirty maintenance: the first store after a generation
        // stamp lands here (the stamp CoW-armed every writable page), so
        // a store-kind fault marks the page dirty for the next
        // `CopyScope::DirtySince` fork. Non-store resolutions leave the
        // bit clear; their remap still resets the generation to 0, which
        // reads as conservatively dirty.
        let is_store = match fault {
            Fault::Cow { .. } => true, // COW only fires on stores
            Fault::CoAccess { kind, .. } => kind.is_store(),
            _ => false,
        };
        let flags = if self.track_dirty && is_store {
            final_flags.with(PteFlags::DIRTY)
        } else {
            final_flags
        };
        self.pt.map(vpn, pfn, flags);
        ctx.kernel(self.cost.pte_write);
        ctx.counters.ptes_written += 1;

        // Step 3: scan and relocate (paper §4.2). The scan runs on every
        // resolved copy; under the tag-summary fast path an untagged page
        // costs four bulk tag reads and nothing more, and for parent-side
        // CoW faults it finds nothing to fix up.
        ctx.phase("fault/reloc");
        let root = self.proc(pid)?.root;
        let mode = self.scan;
        let stats = match mode {
            ScanMode::Naive => {
                // Legacy lookup: rebuild the region list, linear-scan it
                // once per capability (the ablation baseline's cost).
                let sources = self.source_regions();
                let lookups = std::cell::Cell::new(0u64);
                let stats = relocate_frame(
                    &mut self.pm,
                    pfn,
                    region,
                    &root,
                    &|addr| {
                        lookups.set(lookups.get() + 1);
                        sources.iter().find(|r| r.contains(VirtAddr(addr))).copied()
                    },
                    mode,
                );
                ctx.counters.region_lookups += lookups.get();
                stats
            }
            ScanMode::TagSummary => {
                let (pm, index) = (&mut self.pm, &self.region_index);
                let stats =
                    relocate_frame(pm, pfn, region, &root, &|addr| index.lookup(addr), mode);
                ctx.counters.region_lookups += index.take_lookups();
                stats
            }
        };
        ctx.kernel(reloc_cost(&self.cost, &stats));
        ctx.counters.granules_scanned += stats.granules_scanned;
        ctx.counters.granules_skipped += stats.granules_skipped;
        ctx.counters.tag_words_loaded += stats.tag_words_loaded;
        ctx.counters.caps_relocated += stats.relocated + stats.cleared;
        Ok(())
    }

    /// Allocates one frame for fault resolution under admission control:
    /// the allocation consults the same reservation ledger as fork (a
    /// frame promised to an in-flight reservation is not handed out),
    /// and on exhaustion one bounded reclaim pass drains the recycled
    /// pools' deferred-zero queue before the final retry — the same
    /// graceful-degradation path the fork retry loop uses, charged with
    /// the same deterministic backoff.
    fn fault_alloc_frame(&mut self, ctx: &mut Ctx) -> SysResult<Pfn> {
        if self.fallback != FallbackPolicy::Disabled {
            ctx.kernel(self.cost.admission_check);
            self.pm.reserve(1).map_err(|_| Errno::NoMem)?;
            self.pm.release(1);
        }
        if let Ok(pfn) = crate::fork::alloc_zeroed_charged(&mut self.pm, &self.cost, ctx) {
            return Ok(pfn);
        }
        ctx.phase("fault/reclaim");
        let scrubbed = self.pm.reclaim_pass();
        let backoff = self.cost.reclaim_backoff + self.cost.zero_page * scrubbed as f64;
        ctx.kernel(backoff);
        ctx.counters.reclaim_inline += 1;
        ctx.counters.fork_backoff_ns += backoff as u64;
        ctx.phase("fault/copy");
        crate::fork::alloc_zeroed_charged(&mut self.pm, &self.cost, ctx).map_err(|_| Errno::NoMem)
    }

    /// User data load (multi-page capable).
    pub(crate) fn user_load(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        buf: &mut [u8],
    ) -> SysResult<()> {
        self.check_cap(ctx, pid, cap, cap.addr(), buf.len() as u64, Perms::LOAD)?;
        let mut done = 0usize;
        while done < buf.len() {
            let va = VirtAddr(cap.addr() + done as u64);
            let in_page = ((PAGE_SIZE - va.page_offset()) as usize).min(buf.len() - done);
            let pte = self.translate_user(ctx, pid, va, AccessKind::Load)?;
            self.pm
                .read(pte.pfn, va.page_offset(), &mut buf[done..done + in_page])
                .map_err(|_| Errno::Fault)?;
            done += in_page;
        }
        Ok(())
    }

    /// User data store (multi-page capable).
    pub(crate) fn user_store(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        data: &[u8],
    ) -> SysResult<()> {
        self.check_cap(ctx, pid, cap, cap.addr(), data.len() as u64, Perms::STORE)?;
        let mut done = 0usize;
        while done < data.len() {
            let va = VirtAddr(cap.addr() + done as u64);
            let in_page = ((PAGE_SIZE - va.page_offset()) as usize).min(data.len() - done);
            let pte = self.translate_user(ctx, pid, va, AccessKind::Store)?;
            self.pm
                .write(pte.pfn, va.page_offset(), &data[done..done + in_page])
                .map_err(|_| Errno::Fault)?;
            done += in_page;
        }
        Ok(())
    }

    /// User capability load: may raise a CoPA fault first.
    pub(crate) fn user_load_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
    ) -> SysResult<Option<Capability>> {
        let va = VirtAddr(cap.addr());
        if !va.is_granule_aligned() {
            return Err(Errno::Fault);
        }
        self.check_cap(
            ctx,
            pid,
            cap,
            cap.addr(),
            GRANULE_SIZE,
            Perms::LOAD | Perms::LOAD_CAP,
        )?;
        let pte = self.translate_user(ctx, pid, va, AccessKind::CapLoad)?;
        self.pm
            .load_cap(pte.pfn, va.page_offset())
            .map_err(|_| Errno::Fault)
    }

    /// User capability store.
    pub(crate) fn user_store_cap(
        &mut self,
        ctx: &mut Ctx,
        pid: Pid,
        cap: &Capability,
        value: &Capability,
    ) -> SysResult<()> {
        let va = VirtAddr(cap.addr());
        if !va.is_granule_aligned() {
            return Err(Errno::Fault);
        }
        self.check_cap(
            ctx,
            pid,
            cap,
            cap.addr(),
            GRANULE_SIZE,
            Perms::STORE | Perms::STORE_CAP,
        )?;
        // Storing a capability that escapes the region would plant a
        // landmine for a future sharer; the hardware's monotonicity makes
        // this impossible (the μprocess cannot *have* such a cap), and the
        // kernel enforces the same.
        if self.isolation.checks_memory() {
            let p = self.proc(pid)?;
            if !value.confined_to(p.region.base.0, p.region.len) {
                ctx.counters.isolation_violations += 1;
                return Err(Errno::Fault);
            }
        }
        let pte = self.translate_user(ctx, pid, va, AccessKind::CapStore)?;
        self.pm
            .store_cap(pte.pfn, va.page_offset(), value)
            .map_err(|_| Errno::Fault)
    }
}
