//! Trap-less system-call entry via sealed capabilities (paper §4.4).
//!
//! μFork runs μprocesses and the kernel at the same privilege level
//! (EL1). System calls must therefore be protected without a trap: the
//! kernel publishes a *sealed* code capability pointing at its syscall
//! handler. Sealed capabilities are immutable and non-dereferenceable;
//! invoking one transfers control to the predetermined, unforgeable entry
//! point — the restriction of a traditional syscall instruction, without
//! the exception cost.

use ufork_cheri::{CapError, Capability, OType, Perms};
use ufork_exec::Ctx;

/// The kernel's system-call gate.
///
/// Holds the sealing authority (kernel-private) and the sealed entry
/// capability (handed to every μprocess). [`SyscallGate::enter`] is what a
/// μprocess "executes" to call the kernel; it verifies the invocation the
/// way hardware would.
#[derive(Clone, Debug)]
pub struct SyscallGate {
    authority: Capability,
    sealed_entry: Capability,
    handler_addr: u64,
}

impl SyscallGate {
    /// Builds the gate at kernel boot.
    ///
    /// `kernel_text` must cover the syscall handler at `handler_addr` and
    /// carry execute permission.
    pub fn new(kernel_text: &Capability, handler_addr: u64) -> Result<SyscallGate, CapError> {
        let authority = Capability::new_root(
            0,
            u64::from(OType::SYSCALL_ENTRY.raw()) + 1,
            Perms::SEAL | Perms::UNSEAL,
        );
        let entry = kernel_text
            .with_addr(handler_addr)?
            .with_perms_masked(Perms::code() | Perms::INVOKE)?;
        entry.check_access(handler_addr, 4, Perms::EXECUTE)?;
        let sealed_entry = entry.seal(OType::SYSCALL_ENTRY, &authority)?;
        Ok(SyscallGate {
            authority,
            sealed_entry,
            handler_addr,
        })
    }

    /// The sealed entry capability a μprocess receives.
    ///
    /// It is sealed, so the μprocess can neither modify it nor jump
    /// anywhere but the handler.
    pub fn user_entry(&self) -> Capability {
        self.sealed_entry
    }

    /// Performs a kernel entry through `entry` (normally
    /// [`SyscallGate::user_entry`], but tests pass forgeries).
    ///
    /// Verifies what the hardware would on `CInvoke`: the capability is
    /// sealed with the syscall otype and unseals to the exact handler
    /// address with execute permission.
    pub fn enter(&self, entry: &Capability) -> Result<(), CapError> {
        if entry.otype() != Some(OType::SYSCALL_ENTRY) {
            return Err(CapError::BadUnseal);
        }
        let unsealed = entry.unseal(&self.authority)?;
        if unsealed.addr() != self.handler_addr {
            return Err(CapError::BadUnseal);
        }
        unsealed.check_access(self.handler_addr, 4, Perms::EXECUTE)?;
        Ok(())
    }

    /// [`SyscallGate::enter`] with trace markers: accepted invocations
    /// record a `gate/enter` instant on `ctx`'s sink, refused ones a
    /// `gate/reject`. Identical verification either way.
    pub fn enter_traced(&self, ctx: &mut Ctx, entry: &Capability) -> Result<(), CapError> {
        let r = self.enter(entry);
        ctx.instant(if r.is_ok() {
            "gate/enter"
        } else {
            "gate/reject"
        });
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_text() -> Capability {
        Capability::new_root(0xffff_0000_0000, 0x10_0000, Perms::kernel())
    }

    #[test]
    fn gate_round_trip() {
        let gate = SyscallGate::new(&kernel_text(), 0xffff_0000_1000).unwrap();
        let entry = gate.user_entry();
        assert!(entry.is_sealed());
        gate.enter(&entry).unwrap();
    }

    #[test]
    fn user_cannot_modify_sealed_entry() {
        let gate = SyscallGate::new(&kernel_text(), 0xffff_0000_1000).unwrap();
        let entry = gate.user_entry();
        // Retargeting the entry point fails: sealed caps are frozen.
        assert!(entry.with_addr(0xffff_0000_2000).is_err());
    }

    #[test]
    fn traced_entry_records_accept_and_reject_instants() {
        let gate = SyscallGate::new(&kernel_text(), 0xffff_0000_1000).unwrap();
        let mut ctx = Ctx::traced(16);
        gate.enter_traced(&mut ctx, &gate.user_entry()).unwrap();
        let forged = kernel_text().with_addr(0xffff_0000_1000).unwrap();
        assert!(gate.enter_traced(&mut ctx, &forged).is_err());
        assert_eq!(ctx.trace.instant_count("gate/enter"), 1);
        assert_eq!(ctx.trace.instant_count("gate/reject"), 1);
    }

    #[test]
    fn forged_unsealed_entry_rejected() {
        let gate = SyscallGate::new(&kernel_text(), 0xffff_0000_1000).unwrap();
        let forged = kernel_text().with_addr(0xffff_0000_1000).unwrap();
        assert!(gate.enter(&forged).is_err());
    }

    #[test]
    fn entry_sealed_with_wrong_otype_rejected() {
        let gate = SyscallGate::new(&kernel_text(), 0xffff_0000_1000).unwrap();
        let sealer = Capability::new_root(0, 64, Perms::SEAL);
        let wrong = kernel_text()
            .with_addr(0xffff_0000_1000)
            .unwrap()
            .seal(OType::KERNEL_CONTEXT, &sealer)
            .unwrap();
        assert!(gate.enter(&wrong).is_err());
    }

    #[test]
    fn handler_outside_kernel_text_rejected_at_boot() {
        assert!(SyscallGate::new(&kernel_text(), 0x1000).is_err());
    }
}
