//! Indexed source-region lookup for relocation.
//!
//! Every capability the relocation scan fixes up needs to know *which*
//! μprocess region it points into (live parent, or the retired region of
//! an exited ancestor) to compute the rebase delta. The kernel used to
//! rebuild a `Vec<Region>` of all live + retired regions on every fork and
//! every resolved fault, then linear-scan it once per capability — O(procs
//! + retired) per lookup, rebuilt per page.
//!
//! [`RegionIndex`] replaces that with a sorted, incrementally-maintained
//! set of non-overlapping regions: O(log n) binary search per lookup, no
//! rebuilding. Regions never overlap by construction — the region
//! allocator hands out disjoint spans, and retired regions are never
//! reused (paper §3.5: a forked μprocess' region is kept after exit so
//! relocation of still-shared frames stays unambiguous) — so a single
//! sorted order serves live and retired regions alike.
//!
//! Capability runs within a page are strongly clustered (GOT slots, stack
//! frames, allocator metadata all point near each other), so the index
//! memoizes the last hit and answers repeat lookups in O(1).

use std::cell::Cell;

use ufork_vmem::{Region, VirtAddr};

/// Sorted index of disjoint μprocess regions with last-hit memoization.
#[derive(Default)]
pub struct RegionIndex {
    /// Regions sorted by base address; pairwise disjoint.
    regions: Vec<Region>,
    /// Index of the most recent successful lookup (`Cell` so shared
    /// `&RegionIndex` lookup closures can maintain it).
    last_hit: Cell<Option<usize>>,
    /// Lookups served since the counter was last drained.
    lookups: Cell<u64>,
}

impl RegionIndex {
    /// Creates an empty index.
    pub fn new() -> RegionIndex {
        RegionIndex::default()
    }

    /// Number of indexed regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no region is indexed.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Inserts a region, keeping the index sorted.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the region overlaps an indexed one —
    /// that would make relocation lookups ambiguous.
    pub fn insert(&mut self, region: Region) {
        let at = self.regions.partition_point(|r| r.base < region.base);
        debug_assert!(
            self.regions
                .get(at)
                .is_none_or(|next| region.top() <= next.base),
            "region {region:?} overlaps {:?}",
            self.regions.get(at)
        );
        debug_assert!(
            at == 0 || self.regions[at - 1].top() <= region.base,
            "region {region:?} overlaps {:?}",
            self.regions[at.saturating_sub(1)]
        );
        self.regions.insert(at, region);
        self.last_hit.set(None);
    }

    /// Removes a region previously inserted (exact match on base).
    ///
    /// Returns whether it was present. Regions of exited μprocesses that
    /// forked are *not* removed — they stay as relocation sources.
    pub fn remove(&mut self, region: Region) -> bool {
        match self.regions.binary_search_by_key(&region.base, |r| r.base) {
            Ok(at) => {
                self.regions.remove(at);
                self.last_hit.set(None);
                true
            }
            Err(_) => false,
        }
    }

    /// Finds the region containing `addr`, if any.
    ///
    /// O(1) when `addr` falls in the memoized last-hit region, O(log n)
    /// binary search otherwise. Every call is counted; drain the count
    /// into the op counters with [`RegionIndex::take_lookups`].
    pub fn lookup(&self, addr: u64) -> Option<Region> {
        self.lookups.set(self.lookups.get() + 1);
        if let Some(i) = self.last_hit.get() {
            if let Some(r) = self.regions.get(i) {
                if r.contains(VirtAddr(addr)) {
                    return Some(*r);
                }
            }
        }
        let at = self
            .regions
            .partition_point(|r| r.base.0 <= addr)
            .checked_sub(1)?;
        let r = self.regions[at];
        if r.contains(VirtAddr(addr)) {
            self.last_hit.set(Some(at));
            Some(r)
        } else {
            None
        }
    }

    /// Returns and resets the lookup count (drained into
    /// `OpCounters::region_lookups` after each relocation pass).
    pub fn take_lookups(&self) -> u64 {
        self.lookups.replace(0)
    }

    /// An immutable, `Sync` snapshot view for cross-thread lookups.
    ///
    /// The memo and lookup counter live in `Cell`s, which makes a shared
    /// `&RegionIndex` unusable from the parallel fork walk's worker
    /// threads. A [`FrozenIndex`] drops both: a pure binary search over
    /// the same sorted slice, with workers tallying their own lookup
    /// counts locally.
    pub fn frozen(&self) -> FrozenIndex<'_> {
        FrozenIndex {
            regions: &self.regions,
        }
    }
}

/// A memo-free, `Sync` view of a [`RegionIndex`] (see
/// [`RegionIndex::frozen`]).
#[derive(Clone, Copy)]
pub struct FrozenIndex<'a> {
    regions: &'a [Region],
}

impl FrozenIndex<'_> {
    /// Finds the region containing `addr`, if any — O(log n), no memo,
    /// no counting. Agrees with [`RegionIndex::lookup`] on every address.
    pub fn lookup(&self, addr: u64) -> Option<Region> {
        let at = self
            .regions
            .partition_point(|r| r.base.0 <= addr)
            .checked_sub(1)?;
        let r = self.regions[at];
        if r.contains(VirtAddr(addr)) {
            Some(r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base: u64, len: u64) -> Region {
        Region {
            base: VirtAddr(base),
            len,
        }
    }

    #[test]
    fn lookup_hits_the_containing_region() {
        let mut idx = RegionIndex::new();
        // Insert out of order; the index keeps itself sorted.
        idx.insert(region(0x30_0000, 0x1000));
        idx.insert(region(0x10_0000, 0x1000));
        idx.insert(region(0x20_0000, 0x1000));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.lookup(0x10_0000), Some(region(0x10_0000, 0x1000)));
        assert_eq!(idx.lookup(0x20_0fff), Some(region(0x20_0000, 0x1000)));
        assert_eq!(idx.lookup(0x30_0800), Some(region(0x30_0000, 0x1000)));
    }

    #[test]
    fn lookup_misses_gaps_and_ends() {
        let mut idx = RegionIndex::new();
        idx.insert(region(0x10_0000, 0x1000));
        idx.insert(region(0x30_0000, 0x1000));
        assert_eq!(idx.lookup(0x0f_ffff), None); // before everything
        assert_eq!(idx.lookup(0x10_1000), None); // one past the end
        assert_eq!(idx.lookup(0x20_0000), None); // in the gap
        assert_eq!(idx.lookup(0x40_0000), None); // after everything
        assert_eq!(RegionIndex::new().lookup(0x10_0000), None);
    }

    #[test]
    fn memoized_repeat_lookups_stay_correct() {
        let mut idx = RegionIndex::new();
        idx.insert(region(0x10_0000, 0x1000));
        idx.insert(region(0x20_0000, 0x1000));
        // Prime the memo on one region, then alternate.
        assert!(idx.lookup(0x10_0010).is_some());
        assert!(idx.lookup(0x10_0020).is_some()); // memo hit
        assert_eq!(idx.lookup(0x20_0010), Some(region(0x20_0000, 0x1000)));
        assert_eq!(idx.lookup(0x10_0030), Some(region(0x10_0000, 0x1000)));
        assert_eq!(idx.lookup(0x15_0000), None); // memo miss + search miss
    }

    #[test]
    fn remove_unindexes_exact_region_only() {
        let mut idx = RegionIndex::new();
        let a = region(0x10_0000, 0x1000);
        let b = region(0x20_0000, 0x1000);
        idx.insert(a);
        idx.insert(b);
        assert!(idx.lookup(a.base.0).is_some()); // prime the memo on `a`
        assert!(idx.remove(a));
        assert!(!idx.remove(a)); // already gone
        assert_eq!(idx.lookup(0x10_0000), None); // stale memo must not resurrect it
        assert_eq!(idx.lookup(0x20_0000), Some(b));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn frozen_view_agrees_with_live_index() {
        let mut idx = RegionIndex::new();
        idx.insert(region(0x10_0000, 0x1000));
        idx.insert(region(0x30_0000, 0x1000));
        idx.lookup(0x10_0000); // prime the live index's memo
        let frozen = idx.frozen();
        for addr in [
            0x0f_ffffu64,
            0x10_0000,
            0x10_0fff,
            0x10_1000,
            0x20_0000,
            0x30_0800,
            0x40_0000,
        ] {
            assert_eq!(frozen.lookup(addr), idx.lookup(addr), "addr {addr:#x}");
        }
        // Frozen lookups are not counted by the live index.
        idx.take_lookups();
        let frozen = idx.frozen();
        frozen.lookup(0x10_0000);
        assert_eq!(idx.take_lookups(), 0);
        // The view is Sync: workers can share it.
        fn assert_sync<T: Sync>(_: &T) {}
        assert_sync(&frozen);
    }

    #[test]
    fn lookup_counter_drains() {
        let mut idx = RegionIndex::new();
        idx.insert(region(0x10_0000, 0x1000));
        idx.lookup(0x10_0000);
        idx.lookup(0x10_0010);
        idx.lookup(0xdead_beef);
        assert_eq!(idx.take_lookups(), 3);
        assert_eq!(idx.take_lookups(), 0);
    }
}
