//! The parallel fork walk: multi-worker page copy + relocation.
//!
//! Morello is an 8-core SoC, but the paper's fork runs the copy/relocate
//! sweep on one core. This module models (and actually executes, with
//! host threads) a multicore fork engine:
//!
//! 1. **Serial prologue** — stream the parent's sorted page range off the
//!    page table once, classify each page (shared / eager / lazy), stage
//!    lazy and shm PTEs exactly like the serial batch walk, and allocate
//!    every eager destination frame up front from the sharded physical
//!    allocator ([`ufork_mem::PhysMem::alloc_frame_in`], home shard =
//!    chunk's lane). Allocating serially keeps the global
//!    `alloc_attempts` order — and therefore fault injection — identical
//!    across worker counts. Destination frames are granted
//!    [`ufork_mem::ZeroPolicy::Uninit`]: a Full-copy destination is
//!    entirely overwritten, so recycled frames skip the zeroing scrub
//!    (the deferred-zeroing win; fresh frames are zeroed by construction).
//! 2. **Parallel chunks** — the eager pages are partitioned into
//!    fixed-size chunks of [`CHUNK_PAGES`]; chunk *i* is processed by
//!    lane `i % workers` on a scoped host thread. Each worker copies the
//!    source frame into the *detached* destination frame and relocates
//!    its capabilities via [`relocate_frame_in`] with a memo-free
//!    [`FrozenIndex`] region lookup. Workers return per-chunk simulated
//!    costs and statistics; they never touch shared mutable state.
//! 3. **Merge epilogue** — destination frames are reattached, per-chunk
//!    costs are folded into [`LaneClocks`] *in chunk-index order*
//!    (never host completion order), the elapsed parallel time
//!    (max over lanes) is charged to the kernel clock, and the staged
//!    child PTEs land in one `extend_sorted` batch + one `protect_many`
//!    COW sweep, as in the serial walk.
//!
//! Simulated elapsed fork time = serial prologue + max-over-lanes(chunk
//! costs) + merge epilogue. Because lane assignment, allocation order,
//! and cost folding are all pure functions of the page list and worker
//! count, the same heap + same worker count reproduce bit-identical
//! simulated nanoseconds regardless of host scheduling.
//!
//! Every side effect (destination allocations, refcount bumps, staged
//! PTE inserts, COW arming) is recorded in the transactional fork
//! journal; a mid-prologue failure (frame exhaustion, refcount error,
//! injected journal abort) returns with the journal intact and the
//! caller's rollback drops every reference the batch took — eagerly
//! allocated destinations go back to the recycled pools. Nothing has
//! reached the page table at that point, so no PTE can dangle. The
//! parallel phase itself is infallible by construction: all allocation
//! happens in the prologue.

use std::cell::Cell;

use ufork_abi::{CopyStrategy, Errno, SysResult};
use ufork_cheri::Capability;
use ufork_exec::Ctx;
use ufork_mem::{Frame, Pfn, ZeroPolicy, PAGE_SIZE};
use ufork_sim::LaneClocks;
use ufork_vmem::{Pte, PteFlags, Region, VirtAddr, Vpn};

use crate::fork::CopyScope;
use crate::journal::JournalOp;
use crate::kernel::UforkOs;
use crate::layout::Segment;
use crate::reloc::{reloc_cost, relocate_frame_in, RelocStats, ScanMode};

/// How the fork walk executes the eager copy/relocate sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalkMode {
    /// Single-lane walk (the PR 2 batched path); the ablation baseline.
    #[default]
    Serial,
    /// Multi-worker walk with the given lane count (clamped to ≥ 1).
    /// Requires [`ScanMode::TagSummary`]; under the naive-scan ablation
    /// the walk silently falls back to serial, since the legacy path is
    /// kept verbatim for cost fidelity.
    Parallel(usize),
    /// Two-phase pipelined fork: the walk stages every would-be-eager
    /// page on the shared parent frame (CoA-style protection, parent
    /// CoW-armed) and the fork **commits with the child runnable** at
    /// lazy-strategy latency. The remaining copies then stream behind
    /// the child in [`CHUNK_PAGES`]-page chunks (`crate::pipeline`),
    /// each a journaled transaction of its own; a child fault on an
    /// uncopied page jumps the copy queue and resolves its chunk
    /// inline. Like `Parallel`, requires [`ScanMode::TagSummary`] —
    /// under the naive-scan ablation the walk falls back to the legacy
    /// serial path.
    Pipelined,
}

impl WalkMode {
    /// Number of worker lanes this mode runs on. The pipelined walk's
    /// foreground phase is single-lane (the copies happen behind the
    /// commit).
    pub fn workers(self) -> usize {
        match self {
            WalkMode::Serial | WalkMode::Pipelined => 1,
            WalkMode::Parallel(n) => n.max(1),
        }
    }
}

/// Pages per parallel chunk. Small enough to balance lanes on modest
/// heaps, large enough that per-chunk overhead stays negligible.
pub const CHUNK_PAGES: usize = 32;

/// One eager page's work item: source frame, destination frame (owned
/// while detached from `PhysMem`), and the allocation cost already
/// determined by the prologue.
struct EagerPage {
    src: Pfn,
    dst: Pfn,
    frame: Frame,
    alloc_ns: f64,
}

/// A worker's result for one chunk.
#[derive(Default)]
struct ChunkOut {
    cost: f64,
    stats: RelocStats,
    lookups: u64,
}

fn merge_stats(into: &mut RelocStats, s: &RelocStats) {
    into.granules_scanned += s.granules_scanned;
    into.granules_skipped += s.granules_skipped;
    into.tag_words_loaded += s.tag_words_loaded;
    into.relocated += s.relocated;
    into.cleared += s.cleared;
}

impl UforkOs {
    /// The multi-worker fork walk (see the module docs). Mirrors
    /// `fork_walk_pages` observably: same child PTEs, same frame
    /// contents, same fault-injection attempt order — only the simulated
    /// elapsed time (and the host-side execution) differ.
    #[allow(clippy::too_many_arguments)] // mirrors fork_walk_pages' parameter list plus `workers`
    pub(crate) fn fork_walk_pages_parallel(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
        strategy: CopyStrategy,
        workers: usize,
        scope: CopyScope,
    ) -> SysResult<()> {
        let workers = workers.max(1);
        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let eager_cfg = self.eager_fork_copies;
        let validates = self.isolation.validates_syscalls();

        // ---- Phase 1: serial prologue ----------------------------------
        let mut child_batch: Vec<(Vpn, Pte)> = Vec::new();
        let mut cow_arm: Vec<Vpn> = Vec::new();
        let mut eager: Vec<EagerPage> = Vec::new();
        let mut failed: Option<Errno> = None;

        {
            let pm = &mut self.pm;
            let pt = &self.pt;
            let journal = &mut self.journal;
            let cost = &self.cost;

            'walk: for (vpn, pte) in pt.range(start, end) {
                ctx.phase("fork/walk/pte");
                let off = vpn.base().0 - p_region.base.0;
                let seg = layout.segment_of(off);
                let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
                let final_flags = Self::seg_flags(seg);

                if seg == Segment::Shm {
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    child_batch.push((c_vpn, Pte::new(pte.pfn, final_flags)));
                    ctx.kernel(cost.pte_copy);
                    continue;
                }

                if !scope.page_dirty(&pte) {
                    // Clean since the parent's last stamp: share the
                    // frame in the serial prologue exactly as the serial
                    // walk's clean-share arm does — the lanes only ever
                    // see dirty eager pages, so the parallel phase is
                    // O(dirty) as well. (Cross-child dedup is serial- and
                    // pipeline-only: the probe mutates the shared index,
                    // which lanes must not.)
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    let f = if strategy == CopyStrategy::CoA {
                        PteFlags::empty().with(PteFlags::COA)
                    } else {
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        f
                    };
                    child_batch.push((c_vpn, Pte::new(pte.pfn, f)));
                    ctx.kernel(cost.pte_copy);
                    ctx.counters.pages_shared_clean += 1;
                    if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                        cow_arm.push(vpn);
                    }
                    continue;
                }
                if scope != CopyScope::Everything {
                    ctx.counters.pages_dirty_copied += 1;
                }

                let is_eager = strategy == CopyStrategy::Full
                    || (eager_cfg
                        && match seg {
                            Segment::Got => true,
                            Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                            _ => false,
                        });

                if is_eager {
                    // The chunk this page will land in decides its lane,
                    // and the lane decides the allocator home shard.
                    let home = (eager.len() / CHUNK_PAGES) % workers;
                    let grant = match pm.alloc_frame_in(home, ZeroPolicy::Uninit) {
                        Ok(g) => g,
                        Err(_) => {
                            failed = Some(Errno::NoMem);
                            break 'walk;
                        }
                    };
                    if journal.record(JournalOp::FrameAlloc(grant.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    if grant.recycled {
                        ctx.counters.frames_recycled += 1;
                        ctx.instant("alloc/recycle");
                    }
                    if grant.zeroing_skipped {
                        ctx.counters.zeroing_skipped += 1;
                        ctx.instant("alloc/zero_skip");
                    }
                    if grant.stolen {
                        ctx.counters.alloc_steals += 1;
                        ctx.instant("alloc/steal");
                    }
                    child_batch.push((c_vpn, Pte::new(grant.pfn, final_flags)));
                    eager.push(EagerPage {
                        src: pte.pfn,
                        dst: grant.pfn,
                        frame: Frame::detached(),
                        alloc_ns: cost.page_alloc,
                    });
                    continue;
                }

                // Lazy strategies: share the frame and arm faults.
                if pm.inc_ref(pte.pfn).is_err() {
                    failed = Some(Errno::Fault);
                    break 'walk;
                }
                if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                    failed = Some(Errno::NoMem);
                    break 'walk;
                }
                match strategy {
                    CopyStrategy::Full => {
                        debug_assert!(false, "full copy is always eager");
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    CopyStrategy::CoA => {
                        child_batch.push((
                            c_vpn,
                            Pte::new(pte.pfn, PteFlags::empty().with(PteFlags::COA)),
                        ));
                        ctx.kernel(cost.pte_copy + cost.coa_pte_extra);
                    }
                    CopyStrategy::CoPA => {
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        child_batch.push((c_vpn, Pte::new(pte.pfn, f)));
                        ctx.kernel(cost.pte_copy);
                    }
                }

                if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                    cow_arm.push(vpn);
                }
            }
        }

        if let Some(e) = failed {
            // Every reference the batch took is journaled; the caller's
            // rollback drops them (eager destinations return to the
            // recycled pools, shared refcounts are restored). Nothing
            // reached the page table.
            ctx.counters.region_lookups += self.region_index.take_lookups();
            return Err(e);
        }

        // ---- Phase 2: parallel chunks ----------------------------------
        let n_chunks = eager.len().div_ceil(CHUNK_PAGES);
        // Detach every destination frame so workers own them outright
        // while `PhysMem` is only shared for reading source frames.
        // Detachment failing means the prologue's allocation vanished — a
        // kernel bug, surfaced as a typed error (after reattaching, so
        // the caller's rollback sees consistent state) rather than a
        // panic on a syscall path.
        for i in 0..eager.len() {
            match self.pm.detach_frame(eager[i].dst) {
                Ok(f) => eager[i].frame = f,
                Err(_) => {
                    debug_assert!(false, "destination allocated in the prologue");
                    for page in eager[..i].iter_mut() {
                        let f = std::mem::replace(&mut page.frame, Frame::detached());
                        let _ = self.pm.attach_frame(page.dst, f);
                    }
                    return Err(Errno::Fault);
                }
            }
        }

        let mut results: Vec<(usize, ChunkOut)> = Vec::with_capacity(n_chunks);
        let mut worker_err: Option<Errno> = None;
        {
            let pm = &self.pm;
            let cost = &self.cost;
            let frozen = self.region_index.frozen();
            let c_root = *c_root;

            // Deterministic distribution: chunk i → lane i % workers.
            let mut lane_work: Vec<Vec<(usize, &mut [EagerPage])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, chunk) in eager.chunks_mut(CHUNK_PAGES).enumerate() {
                lane_work[i % workers].push((i, chunk));
            }

            std::thread::scope(|s| {
                let handles: Vec<_> = lane_work
                    .into_iter()
                    .map(|work| {
                        s.spawn(move || -> SysResult<Vec<(usize, ChunkOut)>> {
                            let mut out: Vec<(usize, ChunkOut)> = Vec::with_capacity(work.len());
                            for (idx, chunk) in work {
                                let mut co = ChunkOut::default();
                                let lookups = Cell::new(0u64);
                                let source_of = |addr: u64| {
                                    lookups.set(lookups.get() + 1);
                                    frozen.lookup(addr)
                                };
                                for page in chunk.iter_mut() {
                                    // The parent's mapping holds a ref, so
                                    // the source frame must exist; a miss is
                                    // a kernel bug surfaced as a typed error.
                                    let Ok(src) = pm.frame(page.src) else {
                                        return Err(Errno::Fault);
                                    };
                                    page.frame.copy_from(src);
                                    let stats = relocate_frame_in(
                                        &mut page.frame,
                                        c_region,
                                        &c_root,
                                        &source_of,
                                        ScanMode::TagSummary,
                                    );
                                    co.cost += page.alloc_ns
                                        + cost.page_copy
                                        + reloc_cost(cost, &stats)
                                        + cost.pte_write
                                        + if validates {
                                            cost.page_scan() + cost.tocttou_fixed
                                        } else {
                                            0.0
                                        };
                                    merge_stats(&mut co.stats, &stats);
                                }
                                co.lookups = lookups.get();
                                out.push((idx, co));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join().expect("fork worker panicked") {
                        Ok(out) => results.extend(out),
                        Err(e) => worker_err = Some(e),
                    }
                }
            });
        }

        // ---- Phase 3: merge epilogue -----------------------------------
        // Reattach before anything else — on a worker error too, so the
        // caller's rollback finds every destination frame in place.
        let n_eager = eager.len() as u64;
        for page in eager.drain(..) {
            if self.pm.attach_frame(page.dst, page.frame).is_err() {
                debug_assert!(false, "slot still holds the placeholder");
            }
        }
        if let Some(e) = worker_err {
            return Err(e);
        }

        // Fold chunk costs into lane clocks in chunk-index order, never
        // host completion order: simulated time must be a pure function
        // of the inputs.
        results.sort_by_key(|(i, _)| *i);
        ctx.phase("fork/walk/par");
        // Lane timelines start where the main (kernel) clock stands when
        // the parallel section is entered; each chunk's span begins at its
        // lane's simulated clock and runs for the chunk's cost. Both are
        // pure functions of chunk order and worker count — host
        // scheduling cannot perturb the trace.
        let par_base = ctx.kernel_ns;
        let mut lanes = LaneClocks::new(workers);
        let mut total_stats = RelocStats::default();
        let mut total_lookups = 0u64;
        for (i, co) in &results {
            ctx.lane_span(
                "fork/chunk",
                (*i % workers) as u32,
                par_base + lanes.lane(*i),
                co.cost,
            );
            lanes.charge(*i, co.cost);
            merge_stats(&mut total_stats, &co.stats);
            total_lookups += co.lookups;
        }
        ctx.kernel(lanes.elapsed());
        ctx.counters.fork_chunks += n_chunks as u64;
        ctx.counters.pages_copied += n_eager;
        ctx.counters.pages_copied_eager += n_eager;
        ctx.counters.granules_scanned += total_stats.granules_scanned;
        ctx.counters.granules_skipped += total_stats.granules_skipped;
        ctx.counters.tag_words_loaded += total_stats.tag_words_loaded;
        ctx.counters.caps_relocated += total_stats.relocated + total_stats.cleared;
        ctx.counters.region_lookups += total_lookups;

        // Record-then-apply (see `crate::journal`): if recording aborts
        // part-way, the rollback's unmap of never-inserted VPNs is a
        // no-op.
        for (vpn, _) in &child_batch {
            self.journal
                .record(JournalOp::PteMap(*vpn))
                .map_err(|_| Errno::NoMem)?;
        }
        ctx.counters.ptes_written += self.pt.extend_sorted(child_batch);
        ctx.phase("fork/walk/cow_arm");
        for &vpn in &cow_arm {
            self.journal
                .record(JournalOp::CowArm(vpn))
                .map_err(|_| Errno::NoMem)?;
        }
        let armed = self.pt.protect_many(cow_arm, PteFlags::COW);
        ctx.kernel(self.cost.pte_protect * armed as f64);
        ctx.counters.region_lookups += self.region_index.take_lookups();
        Ok(())
    }
}
