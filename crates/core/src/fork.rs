//! The μFork fork walk (paper §3.5).
//!
//! 1. **Parent state duplication** — reserve a contiguous child region,
//!    copy the parent's PTEs so the child maps the same physical pages,
//!    proactively copy + relocate the GOT and the in-use allocator
//!    metadata, and arm the configured copy strategy on everything else.
//! 2. **Post-copy phase** — mint the child's root capability, relocate
//!    the register file, and hand the child to the scheduler (done by the
//!    executive).
//!
//! The walk is batched: the parent's mapped range is streamed directly
//! off the page table (no intermediate `Vec` of its PTEs), the child's
//! PTEs are staged in a sorted batch and inserted in one
//! [`ufork_vmem::PageTable::extend_sorted`] sweep, and the parent's COW
//! protection is applied in one [`ufork_vmem::PageTable::protect_many`]
//! pass at the end. Because nothing lands in the page table until the
//! whole walk has succeeded, a mid-walk failure (frame exhaustion) only
//! has to drop the frame references the batch took — the table itself
//! never holds a partially-forked child. Under [`ScanMode::Naive`] the
//! legacy walk (per-page inserts, per-capability linear region scans,
//! full-page tag sweeps) is preserved as an ablation baseline.

use std::cell::Cell;

use ufork_abi::{CopyStrategy, Errno, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::Ctx;
use ufork_mem::{Pfn, PhysMem, PAGE_SIZE};
use ufork_sim::CostModel;
use ufork_vmem::{Pte, PteFlags, Region, VirtAddr, Vpn};

use crate::kernel::{UProc, UforkOs};
use crate::layout::Segment;
use crate::reloc::{reloc_cost, relocate_frame, ScanMode};

impl UforkOs {
    /// Reads a `u64` from a μprocess' memory, kernel-side (no faults: the
    /// parent's own pages are always readable by the kernel).
    fn kread_u64(&self, va: u64) -> SysResult<u64> {
        let v = VirtAddr(va);
        let pte = self.pt.lookup(v.vpn()).ok_or(Errno::Fault)?;
        let mut b = [0u8; 8];
        self.pm
            .read(pte.pfn, v.page_offset(), &mut b)
            .map_err(|_| Errno::Fault)?;
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn fork_uproc(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        // Fixed path: task struct, PID allocation, fd duplication hooks,
        // thread creation, scheduler insertion (paper §3.5 step 2).
        ctx.phase("fork/fixed");
        ctx.kernel(self.cost.fork_fixed_ufork);

        let (p_region, layout, p_regs, p_shm_next, p_mmap_next) = {
            let p = self.proc(parent)?;
            (
                p.region,
                p.layout.clone(),
                p.regs.clone(),
                p.shm_next,
                p.mmap_next,
            )
        };

        // How much allocator metadata is live (eagerly copied, §3.5).
        let meta_header = p_region.base.0 + layout.heap_meta.0;
        let blocks_used = self.kread_u64(meta_header + 16)?;
        let meta_used_bytes = 64 + blocks_used * crate::layout::BLOCK_DESC_BYTES;

        // Reserve the child's contiguous region.
        ctx.phase("fork/region");
        let c_region = self
            .regions
            .alloc(layout.region_len())
            .map_err(|_| Errno::NoMem)?;
        let c_root = Capability::new_root(c_region.base.0, layout.region_len(), Perms::data());
        debug_assert!(!c_root.perms().contains(Perms::SYSTEM));

        // The page walk can fail mid-way (frame exhaustion while copying a
        // page, refcount overflow): everything staged for the child so far
        // must then be unwound — no leaked frames, no dangling PTEs, the
        // region handed back — leaving the parent exactly as it was, plus
        // (in the legacy walk) harmless extra COW arming that the next
        // parent write clears.
        if let Err(e) =
            self.fork_walk_pages(ctx, p_region, &layout, c_region, &c_root, meta_used_bytes)
        {
            self.unwind_partial_fork(c_region);
            return Err(e);
        }

        // Relocate the register file (paper §3.5 step 2: "any absolute
        // memory references contained in registers are relocated").
        ctx.phase("fork/regs");
        let mut c_regs = p_regs;
        {
            let naive_sources = (self.scan == ScanMode::Naive).then(|| self.source_regions());
            let naive_lookups = Cell::new(0u64);
            let source_of = |addr: u64| -> Option<Region> {
                match &naive_sources {
                    Some(sources) => {
                        naive_lookups.set(naive_lookups.get() + 1);
                        sources.iter().find(|r| r.contains(VirtAddr(addr))).copied()
                    }
                    None => self.region_index.lookup(addr),
                }
            };
            for slot in c_regs.iter_mut() {
                if let Some(cap) = slot {
                    if cap.confined_to(c_region.base.0, c_region.len) {
                        continue;
                    }
                    if let Some(src) = source_of(cap.base()) {
                        let delta = c_region.base.0 as i64 - src.base.0 as i64;
                        match cap.rebase(delta, &c_root) {
                            Ok(new_cap) => {
                                *slot = Some(new_cap);
                                ctx.counters.caps_relocated += 1;
                            }
                            Err(_) => *slot = None,
                        }
                    } else if cap.perms().contains(Perms::EXECUTE) {
                        // PCC-style register: rebase code caps by region offset.
                        let delta = c_region.base.0 as i64 - p_region.base.0 as i64;
                        if let Some(addr) = cap.addr().checked_add_signed(delta) {
                            let code_root =
                                Capability::new_root(c_region.base.0, layout.text.1, Perms::code());
                            *slot = code_root.with_addr(addr).ok();
                        }
                    }
                    ctx.kernel(self.cost.cap_relocate);
                }
            }
            ctx.counters.region_lookups += naive_lookups.get();
        }
        ctx.counters.region_lookups += self.region_index.take_lookups();

        ctx.phase("fork/commit");
        self.procs.insert(
            child,
            UProc {
                region: c_region,
                layout,
                root: c_root,
                regs: c_regs,
                shm_next: p_shm_next,
                mmap_next: p_mmap_next,
                had_children: false,
            },
        );
        self.region_index.insert(c_region);
        if let Some(p) = self.procs.get_mut(&parent) {
            p.had_children = true;
        }
        Ok(())
    }

    /// The per-page fork walk: maps (and, where the strategy requires,
    /// copies and relocates) every parent page into the child region.
    /// On `Err` nothing has been staged in the page table and every frame
    /// reference taken for the child has been dropped; the caller only
    /// unwinds the region reservation.
    fn fork_walk_pages(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
    ) -> SysResult<()> {
        if self.scan == ScanMode::Naive {
            return self.fork_walk_pages_naive(
                ctx,
                p_region,
                layout,
                c_region,
                c_root,
                meta_used_bytes,
            );
        }
        if let crate::fork_par::WalkMode::Parallel(n) = self.walk {
            return self.fork_walk_pages_parallel(
                ctx,
                p_region,
                layout,
                c_region,
                c_root,
                meta_used_bytes,
                n,
            );
        }

        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let strategy = self.strategy;
        let eager_cfg = self.eager_fork_copies;
        let validates = self.isolation.validates_syscalls();

        // Staged child PTEs, produced in ascending page order by the
        // parent-range stream; inserted in one batch on success only.
        let mut child_batch: Vec<(Vpn, Pte)> = Vec::new();
        // Parent pages to flip to COW in one protection sweep at the end.
        let mut cow_arm: Vec<Vpn> = Vec::new();
        let mut failed: Option<Errno> = None;

        {
            // Split borrows: the parent range is streamed off `pt` (shared)
            // while frames are copied through `pm` (mutable); `pt` itself
            // is only written after the stream ends.
            let pm = &mut self.pm;
            let pt = &self.pt;
            let cost = &self.cost;
            let region_index = &self.region_index;
            let lookup = |addr: u64| region_index.lookup(addr);
            let target = RelocTarget {
                region: c_region,
                root: c_root,
                source_of: &lookup,
                mode: ScanMode::TagSummary,
            };

            'walk: for (vpn, pte) in pt.range(start, end) {
                ctx.phase("fork/walk/pte");
                let off = vpn.base().0 - p_region.base.0;
                let seg = layout.segment_of(off);
                let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
                let final_flags = Self::seg_flags(seg);

                if seg == Segment::Shm {
                    // Shared mappings stay shared: same frames, full perms.
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    child_batch.push((
                        c_vpn,
                        Pte {
                            pfn: pte.pfn,
                            flags: PteFlags::rw(),
                        },
                    ));
                    ctx.kernel(cost.pte_copy);
                    continue;
                }

                let eager = strategy == CopyStrategy::Full
                    || (eager_cfg
                        && match seg {
                            Segment::Got => true,
                            Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                            _ => false,
                        });

                if eager {
                    let new = match copy_page_for_child(pm, cost, ctx, pte.pfn, &target) {
                        Ok(new) => new,
                        Err(e) => {
                            failed = Some(e);
                            break 'walk;
                        }
                    };
                    ctx.phase("fork/walk/pte");
                    child_batch.push((
                        c_vpn,
                        Pte {
                            pfn: new,
                            flags: final_flags,
                        },
                    ));
                    ctx.kernel(cost.pte_write);
                    if validates {
                        // Adversarial deployments re-verify every relocated
                        // capability against the child's bounds before the
                        // page becomes visible (the fork-latency component of
                        // TOCTTOU/validation, ~2.6% in the paper).
                        ctx.kernel(cost.page_scan() + cost.tocttou_fixed);
                    }
                    ctx.counters.pages_copied_eager += 1;
                    continue;
                }

                // Lazy strategies: share the frame and arm faults.
                if pm.inc_ref(pte.pfn).is_err() {
                    failed = Some(Errno::Fault);
                    break 'walk;
                }
                match strategy {
                    CopyStrategy::Full => unreachable!("full copy is always eager"),
                    CopyStrategy::CoA => {
                        // Fully inaccessible to the child: any access faults.
                        child_batch.push((
                            c_vpn,
                            Pte {
                                pfn: pte.pfn,
                                flags: PteFlags::empty().with(PteFlags::COA),
                            },
                        ));
                        ctx.kernel(cost.pte_copy + cost.coa_pte_extra);
                    }
                    CopyStrategy::CoPA => {
                        // Readable; writes and tagged loads fault.
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        child_batch.push((
                            c_vpn,
                            Pte {
                                pfn: pte.pfn,
                                flags: f,
                            },
                        ));
                        ctx.kernel(cost.pte_copy);
                    }
                }

                // Writable parent pages become copy-on-write (armed in one
                // sweep after the stream).
                if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                    cow_arm.push(vpn);
                }
            }
        }

        if let Some(e) = failed {
            // Nothing reached the page table; just drop the batch's frame
            // references (copies are freed, shared refcounts restored).
            for (_, pte) in child_batch {
                let _ = self.pm.dec_ref(pte.pfn);
            }
            ctx.counters.region_lookups += self.region_index.take_lookups();
            return Err(e);
        }

        ctx.counters.ptes_written += self.pt.extend_sorted(child_batch);
        ctx.phase("fork/walk/cow_arm");
        let armed = self.pt.protect_many(cow_arm, PteFlags::COW);
        ctx.kernel(self.cost.pte_protect * armed as f64);
        ctx.counters.region_lookups += self.region_index.take_lookups();
        Ok(())
    }

    /// The pre-optimization walk, kept verbatim as the [`ScanMode::Naive`]
    /// ablation baseline: collects the parent's PTEs into a `Vec`, inserts
    /// child PTEs one `map` at a time, arms parent COW per page, and
    /// resolves relocation sources by linear scan of a freshly-rebuilt
    /// region list.
    fn fork_walk_pages_naive(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
    ) -> SysResult<()> {
        let sources = self.source_regions();
        let naive_lookups = Cell::new(0u64);
        let source_of = |addr: u64| -> Option<Region> {
            naive_lookups.set(naive_lookups.get() + 1);
            sources.iter().find(|r| r.contains(VirtAddr(addr))).copied()
        };

        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let mapped: Vec<(Vpn, Pte)> = self.pt.range(start, end).collect();

        let result = (|| -> SysResult<()> {
            for &(vpn, pte) in &mapped {
                ctx.phase("fork/walk/pte");
                let off = vpn.base().0 - p_region.base.0;
                let seg = layout.segment_of(off);
                let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
                let final_flags = Self::seg_flags(seg);

                if seg == Segment::Shm {
                    self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
                    self.pt.map(c_vpn, pte.pfn, PteFlags::rw());
                    ctx.kernel(self.cost.pte_copy);
                    ctx.counters.ptes_written += 1;
                    continue;
                }

                let eager = self.strategy == CopyStrategy::Full
                    || (self.eager_fork_copies
                        && match seg {
                            Segment::Got => true,
                            Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                            _ => false,
                        });

                if eager {
                    let target = RelocTarget {
                        region: c_region,
                        root: c_root,
                        source_of: &source_of,
                        mode: ScanMode::Naive,
                    };
                    let new = copy_page_for_child(&mut self.pm, &self.cost, ctx, pte.pfn, &target)?;
                    ctx.phase("fork/walk/pte");
                    self.pt.map(c_vpn, new, final_flags);
                    ctx.kernel(self.cost.pte_write);
                    if self.isolation.validates_syscalls() {
                        ctx.kernel(self.cost.page_scan() + self.cost.tocttou_fixed);
                    }
                    ctx.counters.ptes_written += 1;
                    ctx.counters.pages_copied_eager += 1;
                    continue;
                }

                self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
                match self.strategy {
                    CopyStrategy::Full => unreachable!("full copy is always eager"),
                    CopyStrategy::CoA => {
                        self.pt
                            .map(c_vpn, pte.pfn, PteFlags::empty().with(PteFlags::COA));
                        ctx.kernel(self.cost.pte_copy + self.cost.coa_pte_extra);
                    }
                    CopyStrategy::CoPA => {
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        self.pt.map(c_vpn, pte.pfn, f);
                        ctx.kernel(self.cost.pte_copy);
                    }
                }
                ctx.counters.ptes_written += 1;

                if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                    ctx.phase("fork/walk/cow_arm");
                    if let Some(ppte) = self.pt.lookup_mut(vpn) {
                        ppte.flags = ppte.flags.with(PteFlags::COW);
                    }
                    ctx.kernel(self.cost.pte_protect);
                }
            }
            Ok(())
        })();
        ctx.counters.region_lookups += naive_lookups.get();
        result
    }

    /// Rolls back a partially-staged fork: unmaps every PTE already
    /// created in the child region (only the legacy walk stages any),
    /// drops the frame references they took (freeing eagerly-copied
    /// frames outright), and returns the region to the allocator. After
    /// this the kernel is exactly as before the fork except for COW
    /// arming on parent pages, which the parent's next write resolves in
    /// place.
    fn unwind_partial_fork(&mut self, c_region: Region) {
        let start = c_region.base.vpn();
        let end = Vpn(c_region.top().0.div_ceil(PAGE_SIZE));
        for (_, pte) in self.pt.unmap_range(start, end) {
            let _ = self.pm.dec_ref(pte.pfn);
        }
        let _ = self.regions.free(c_region);
    }
}

/// Where an eager page copy lands and how its capabilities are fixed up:
/// the child's region and root plus the scan strategy and region lookup.
struct RelocTarget<'a> {
    region: Region,
    root: &'a Capability,
    source_of: &'a dyn Fn(u64) -> Option<Region>,
    mode: ScanMode,
}

/// Eagerly copies one frame for a child and relocates it.
fn copy_page_for_child(
    pm: &mut PhysMem,
    cost: &CostModel,
    ctx: &mut Ctx,
    src: Pfn,
    target: &RelocTarget<'_>,
) -> SysResult<Pfn> {
    ctx.phase("fork/walk/copy");
    let new = pm.alloc_frame().map_err(|_| Errno::NoMem)?;
    if pm.copy_frame(src, new).is_err() {
        let _ = pm.dec_ref(new);
        return Err(Errno::Fault);
    }
    ctx.kernel(cost.page_alloc + cost.page_copy);
    ctx.counters.pages_copied += 1;
    ctx.phase("fork/walk/reloc");
    let stats = relocate_frame(
        pm,
        new,
        target.region,
        target.root,
        target.source_of,
        target.mode,
    );
    ctx.kernel(reloc_cost(cost, &stats));
    ctx.counters.granules_scanned += stats.granules_scanned;
    ctx.counters.granules_skipped += stats.granules_skipped;
    ctx.counters.tag_words_loaded += stats.tag_words_loaded;
    ctx.counters.caps_relocated += stats.relocated + stats.cleared;
    Ok(new)
}
