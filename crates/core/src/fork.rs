//! The μFork fork walk (paper §3.5).
//!
//! 1. **Admission** — pre-flight the fork's frame demand against the
//!    allocator's reservation ledger; under `FallbackPolicy::Degrade`
//!    the kernel downgrades `Full → CoA → CoPA` until the demand fits
//!    instead of failing.
//! 2. **Parent state duplication** — reserve a contiguous child region,
//!    copy the parent's PTEs so the child maps the same physical pages,
//!    proactively copy + relocate the GOT and the in-use allocator
//!    metadata, and arm the configured copy strategy on everything else.
//! 3. **Post-copy phase** — mint the child's root capability, relocate
//!    the register file, and hand the child to the scheduler (done by
//!    the executive).
//!
//! The walk is batched: the parent's mapped range is streamed directly
//! off the page table (no intermediate `Vec` of its PTEs), the child's
//! PTEs are staged in a sorted batch and inserted in one
//! [`ufork_vmem::PageTable::extend_sorted`] sweep, and the parent's COW
//! protection is applied in one [`ufork_vmem::PageTable::protect_many`]
//! pass at the end. Under [`ScanMode::Naive`] the legacy walk (per-page
//! inserts, per-capability linear region scans, full-page tag sweeps) is
//! preserved as an ablation baseline.
//!
//! Every side effect either walk performs is recorded in the
//! transactional [`crate::journal`]: a failure at any point — frame
//! exhaustion, refcount overflow, injected journal abort — rolls the
//! kernel back to its exact pre-fork state ([`UforkOs::rollback_fork`]).
//! On memory exhaustion the kernel then runs a bounded
//! reclaim-then-retry loop (drain the recycled pools' deferred-zero
//! queues, charge a deterministic simulated backoff, re-attempt the
//! fork) before surfacing `NoMem`.

use std::cell::Cell;

use ufork_abi::{CopyStrategy, Errno, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::Ctx;
use ufork_mem::{content_hash, FrameDedupIndex, Pfn, PhysMem, PAGE_SIZE};
use ufork_sim::CostModel;
use ufork_vmem::{PageTable, Pte, PteFlags, Region, VirtAddr, Vpn};

use crate::journal::{FallbackPolicy, ForkJournal, JournalOp};
use crate::kernel::{UProc, UforkOs};
use crate::layout::Segment;
use crate::reloc::{reloc_cost, relocate_frame, ScanMode};

/// How much of the parent's address space a fork walks through the copy
/// machinery.
///
/// Under [`DirtySince`](CopyScope::DirtySince) only pages written since
/// the parent's last generation stamp are copied (or CoW/CoA-armed per
/// strategy); clean pages are shared outright — refcount bump plus CoW
/// protect, no frame allocation, no tag scan — making repeat forks from
/// a mostly-unchanged heap O(dirty) instead of O(heap). The child is
/// byte-identical either way: both arms reference the parent's
/// fork-time frames, the scope only decides *when* the private copy
/// materializes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyScope {
    /// Walk every mapped page (the classic fork; always sound).
    Everything,
    /// Copy only pages dirtied since parent generation `gen` (its PTEs'
    /// soft-dirty bit, or a generation mismatch from a remap). Sound
    /// only while `gen` is the parent's current stamp cursor;
    /// [`UforkOs::fork_scoped`] silently widens anything else to
    /// `Everything`.
    DirtySince(u32),
}

impl CopyScope {
    /// Is this page inside the copy scope (i.e. must it go through the
    /// full copy/arm machinery rather than the clean-share arm)?
    pub(crate) fn page_dirty(self, pte: &Pte) -> bool {
        match self {
            CopyScope::Everything => true,
            // A generation mismatch is conservatively dirty: remaps
            // reset the stamp, and an unstamped page has no history.
            CopyScope::DirtySince(gen) => pte.flags.contains(PteFlags::DIRTY) || pte.gen != gen,
        }
    }
}

/// Bounded reclaim-then-retry attempts after a rolled-back fork (and
/// after a rolled-back pipelined background chunk, which reuses the same
/// loop in `crate::pipeline`).
pub(crate) const MAX_FORK_RETRIES: u32 = 2;

/// Outcome classification for one fork attempt. `Retryable` failures
/// are memory exhaustion the reclaim loop may cure; `Fatal` ones (region
/// exhaustion, integrity faults, injected journal aborts) are not.
pub(crate) enum ForkFail {
    Retryable(Errno),
    Fatal(Errno),
}

impl UforkOs {
    /// Reads a `u64` from a μprocess' memory, kernel-side (no faults: the
    /// parent's own pages are always readable by the kernel).
    fn kread_u64(&self, va: u64) -> SysResult<u64> {
        let v = VirtAddr(va);
        let pte = self.pt.lookup(v.vpn()).ok_or(Errno::Fault)?;
        let mut b = [0u8; 8];
        self.pm
            .read(pte.pfn, v.page_offset(), &mut b)
            .map_err(|_| Errno::Fault)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Forks `parent` into `child`: one transactional attempt, plus a
    /// bounded reclaim-then-retry loop when an attempt rolls back on
    /// memory exhaustion. Reclaim drains the recycled pools'
    /// deferred-zero queues (the one reclaim the simulation models) and
    /// charges a deterministic backoff, so the retry schedule is a pure
    /// function of the failure sequence.
    pub(crate) fn fork_uproc(
        &mut self,
        ctx: &mut Ctx,
        parent: Pid,
        child: Pid,
        scope: CopyScope,
    ) -> SysResult<()> {
        let mut retries = 0;
        loop {
            match self.fork_attempt(ctx, parent, child, scope) {
                Ok(()) => return Ok(()),
                Err(ForkFail::Fatal(e)) => return Err(e),
                Err(ForkFail::Retryable(e)) => {
                    if retries >= MAX_FORK_RETRIES {
                        return Err(e);
                    }
                    retries += 1;
                    ctx.phase("fork/reclaim");
                    let scrubbed = self.pm.reclaim_pass();
                    let backoff = self.cost.reclaim_backoff + self.cost.zero_page * scrubbed as f64;
                    ctx.kernel(backoff);
                    ctx.counters.reclaim_inline += 1;
                    ctx.counters.fork_backoff_ns += backoff as u64;
                }
            }
        }
    }

    /// One transactional fork attempt. On `Err` the journal has been
    /// rolled back: the kernel is exactly as before the attempt.
    fn fork_attempt(
        &mut self,
        ctx: &mut Ctx,
        parent: Pid,
        child: Pid,
        scope: CopyScope,
    ) -> Result<(), ForkFail> {
        debug_assert_eq!(self.journal.len(), 0, "journal must be empty between forks");
        // Fixed path: task struct, PID allocation, fd duplication hooks,
        // thread creation, scheduler insertion (paper §3.5 step 2).
        ctx.phase("fork/fixed");
        ctx.kernel(self.cost.fork_fixed_ufork);

        let (p_region, layout, p_regs, p_shm_next, p_mmap_next) = {
            let p = self.proc(parent).map_err(ForkFail::Fatal)?;
            (
                p.region,
                p.layout.clone(),
                p.regs.clone(),
                p.shm_next,
                p.mmap_next,
            )
        };

        // How much allocator metadata is live (eagerly copied, §3.5).
        let meta_header = p_region.base.0 + layout.heap_meta.0;
        let blocks_used = self.kread_u64(meta_header + 16).map_err(ForkFail::Fatal)?;
        let meta_used_bytes = 64 + blocks_used * crate::layout::BLOCK_DESC_BYTES;

        // Admission control: pre-flight the frame demand and book the
        // reservation (possibly degrading the strategy) before any
        // side effect that would need unwinding.
        let strategy = self.admit_fork(ctx, p_region, &layout, meta_used_bytes, scope)?;

        // Reserve the child's contiguous region.
        ctx.phase("fork/region");
        let c_region = match self.regions.alloc(layout.region_len()) {
            Ok(r) => r,
            Err(_) => {
                // Region exhaustion is not curable by frame reclaim.
                self.rollback_fork(ctx);
                let _ = self.journal.take_injected();
                return Err(ForkFail::Fatal(Errno::NoMem));
            }
        };
        if self
            .journal
            .record(JournalOp::RegionAlloc(c_region))
            .is_err()
        {
            return Err(self.abort_fork(ctx, Errno::NoMem));
        }
        let c_root = Capability::new_root(c_region.base.0, layout.region_len(), Perms::data());
        debug_assert!(!c_root.perms().contains(Perms::SYSTEM));

        let deferred = match self.fork_walk_pages(
            ctx,
            p_region,
            &layout,
            c_region,
            &c_root,
            meta_used_bytes,
            strategy,
            scope,
        ) {
            Ok(deferred) => deferred,
            Err(e) => return Err(self.abort_fork(ctx, e)),
        };

        // Stamp the parent's PTEs with the next fork generation (and
        // clear the soft-dirty bits) so the *next* fork can run
        // `DirtySince` against this one's snapshot. Runs after the
        // walk's protection sweep so the journaled pre-stamp state is
        // the post-arm state reverse-order rollback expects.
        if let Err(e) = self.stamp_dirty_generation(ctx, parent, p_region, &layout) {
            return Err(self.abort_fork(ctx, e));
        }

        // Relocate the register file (paper §3.5 step 2: "any absolute
        // memory references contained in registers are relocated").
        ctx.phase("fork/regs");
        let mut c_regs = p_regs;
        {
            let naive_sources = (self.scan == ScanMode::Naive).then(|| self.source_regions());
            let naive_lookups = Cell::new(0u64);
            let source_of = |addr: u64| -> Option<Region> {
                match &naive_sources {
                    Some(sources) => {
                        naive_lookups.set(naive_lookups.get() + 1);
                        sources.iter().find(|r| r.contains(VirtAddr(addr))).copied()
                    }
                    None => self.region_index.lookup(addr),
                }
            };
            for slot in c_regs.iter_mut() {
                if let Some(cap) = slot {
                    if cap.confined_to(c_region.base.0, c_region.len) {
                        continue;
                    }
                    if let Some(src) = source_of(cap.base()) {
                        let delta = c_region.base.0 as i64 - src.base.0 as i64;
                        match cap.rebase(delta, &c_root) {
                            Ok(new_cap) => {
                                *slot = Some(new_cap);
                                ctx.counters.caps_relocated += 1;
                            }
                            Err(_) => *slot = None,
                        }
                    } else if cap.perms().contains(Perms::EXECUTE) {
                        // PCC-style register: rebase code caps by region offset.
                        let delta = c_region.base.0 as i64 - p_region.base.0 as i64;
                        if let Some(addr) = cap.addr().checked_add_signed(delta) {
                            let code_root =
                                Capability::new_root(c_region.base.0, layout.text.1, Perms::code());
                            *slot = code_root.with_addr(addr).ok();
                        }
                    }
                    ctx.kernel(self.cost.cap_relocate);
                }
            }
            ctx.counters.region_lookups += naive_lookups.get();
        }
        ctx.counters.region_lookups += self.region_index.take_lookups();

        ctx.phase("fork/commit");
        self.procs.insert(
            child,
            UProc {
                region: c_region,
                layout,
                root: c_root,
                regs: c_regs,
                shm_next: p_shm_next,
                mmap_next: p_mmap_next,
                had_children: false,
                dirty_gen: 0,
                dirty_tracked: false,
            },
        );
        if self.journal.record(JournalOp::ProcInsert(child)).is_err() {
            return Err(self.abort_fork(ctx, Errno::NoMem));
        }
        self.region_index.insert(c_region);
        if self
            .journal
            .record(JournalOp::IndexInsert(c_region))
            .is_err()
        {
            return Err(self.abort_fork(ctx, Errno::NoMem));
        }
        if let Some(p) = self.procs.get_mut(&parent) {
            p.had_children = true;
        }
        self.commit_fork(ctx, child, c_region, c_root, deferred);
        Ok(())
    }

    /// Rolls back the in-flight fork (or pipelined background chunk) and
    /// classifies the failure: injected journal aborts and non-memory
    /// faults are fatal; `NoMem` is retryable (the reclaim loop may cure
    /// it).
    pub(crate) fn abort_fork(&mut self, ctx: &mut Ctx, e: Errno) -> ForkFail {
        self.rollback_fork(ctx);
        if self.journal.take_injected() {
            ForkFail::Fatal(e)
        } else if e == Errno::NoMem {
            ForkFail::Retryable(e)
        } else {
            ForkFail::Fatal(e)
        }
    }

    /// Commits the in-flight fork: the journal is cleared and the
    /// admission reservation handed back (the walk's allocations have
    /// long consumed the promised frames).
    ///
    /// A pipelined fork commits with `deferred` pages still uncopied. So
    /// admission stays sound across the background window, the
    /// reservation is *not* fully released: one promised frame per
    /// deferred page stays booked in the ledger, carried by the child's
    /// [`crate::pipeline::PipelineState`] and released chunk by chunk as
    /// the background copies consume it.
    fn commit_fork(
        &mut self,
        ctx: &mut Ctx,
        child: Pid,
        c_region: Region,
        c_root: Capability,
        deferred: Vec<(Vpn, PteFlags)>,
    ) {
        let (ops, reserved) = self.journal.commit();
        ctx.counters.journal_ops += ops;
        if deferred.is_empty() {
            self.pm.release(reserved);
            return;
        }
        let behind = deferred.len() as u64;
        let hold = behind.min(reserved);
        self.pm.release(reserved - hold);
        ctx.counters.pipeline_bytes_behind += behind * PAGE_SIZE;
        ctx.instant("fork/pipeline/commit");
        self.pipelines.insert(
            child,
            crate::pipeline::PipelineState::new(c_region, c_root, deferred, hold),
        );
    }

    /// Applies the journal's inverses in reverse record order, returning
    /// the kernel to its exact pre-fork state: child frames freed,
    /// shared refcounts restored, staged PTEs unmapped, parent COW
    /// arming reverted, region and process-table entries removed, the
    /// admission reservation released.
    pub(crate) fn rollback_fork(&mut self, ctx: &mut Ctx) {
        ctx.phase("fork/rollback");
        let ops = self.journal.take_ops();
        ctx.counters.journal_ops += ops.len() as u64;
        ctx.counters.fork_rollbacks += 1;
        let mut ns = 0.0;
        for op in ops.into_iter().rev() {
            match op {
                JournalOp::ReserveFrames(n) => self.pm.release(n),
                JournalOp::RegionAlloc(r) => {
                    let _ = self.regions.free(r);
                }
                // Frame references are owned by these two records;
                // `PteMap` below therefore unmaps without dec_ref.
                JournalOp::FrameAlloc(pfn) | JournalOp::RefInc(pfn) => {
                    let _ = self.pm.dec_ref(pfn);
                }
                JournalOp::PteMap(vpn) => {
                    self.pt.unmap(vpn);
                    ns += self.cost.pte_write;
                }
                JournalOp::CowArm(vpn) => {
                    // Only recorded for PTEs not already armed, so
                    // clearing restores the exact pre-fork flags.
                    if let Some(p) = self.pt.lookup_mut(vpn) {
                        p.flags = p.flags.without(PteFlags::COW);
                    }
                    ns += self.cost.pte_protect;
                }
                JournalOp::IndexInsert(r) => {
                    self.region_index.remove(r);
                }
                JournalOp::ProcInsert(pid) => {
                    self.procs.remove(&pid);
                }
                JournalOp::PteRemap { vpn, old } => {
                    // Restore the exact pre-rewrite PTE — including its
                    // generation stamp, which `map` would reset. A no-op
                    // when the rewrite never applied (record-then-apply).
                    self.pt.extend_sorted([(vpn, old)]);
                    ns += self.cost.pte_write;
                }
                JournalOp::RefDec(pfn) => {
                    // Re-take the fork-time shared reference the chunk
                    // dropped. The frame cannot have been freed: the
                    // chunk only decrements refcounts it observed ≥ 2,
                    // so another mapping still holds the frame.
                    let _ = self.pm.inc_ref(pfn);
                }
                JournalOp::DirtyStamp {
                    vpn,
                    old_gen,
                    was_dirty,
                    had_cow,
                } => {
                    // Rewrite the exact pre-stamp generation state.
                    // Idempotent when the stamp never applied
                    // (record-then-apply): every restored value is then
                    // already in place.
                    if let Some(p) = self.pt.lookup_mut(vpn) {
                        p.gen = old_gen;
                        p.flags = if was_dirty {
                            p.flags.with(PteFlags::DIRTY)
                        } else {
                            p.flags.without(PteFlags::DIRTY)
                        };
                        if !had_cow {
                            p.flags = p.flags.without(PteFlags::COW);
                        }
                    }
                    ns += self.cost.pte_protect;
                }
                JournalOp::DirtyTrack {
                    pid,
                    old_gen,
                    old_tracked,
                } => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.dirty_gen = old_gen;
                        p.dirty_tracked = old_tracked;
                    }
                }
                JournalOp::FrameScrub(pfn) => {
                    // Drop the frame back off the magazine; the zeroed
                    // content stays (safe either way — an unscrubbed
                    // flag only means the next grant re-zeroes).
                    let _ = self.pm.unscrub_frame(pfn);
                }
            }
        }
        ctx.kernel(ns);
    }

    /// Admission control (tentpole of the robustness layer): estimate
    /// the fork's frame demand, book it in the allocator's reservation
    /// ledger, and — under [`FallbackPolicy::Degrade`] — downgrade the
    /// strategy `Full → CoA → CoPA` until the demand fits.
    fn admit_fork(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        meta_used_bytes: u64,
        scope: CopyScope,
    ) -> Result<CopyStrategy, ForkFail> {
        if self.fallback == FallbackPolicy::Disabled {
            return Ok(self.strategy);
        }
        ctx.phase("fork/admission");
        ctx.kernel(self.cost.admission_check);
        let requested = self.strategy;
        let (private, eager, _) =
            self.fork_page_demand(p_region, layout, meta_used_bytes, false, scope);
        let demand = Self::immediate_demand(requested, private, eager);
        if self.pm.reserve(demand).is_ok() {
            if self
                .journal
                .record(JournalOp::ReserveFrames(demand))
                .is_err()
            {
                return Err(self.abort_fork(ctx, Errno::NoMem));
            }
            return Ok(requested);
        }
        if self.fallback == FallbackPolicy::Strict {
            // Nothing staged yet: no rollback needed, and frame reclaim
            // cannot conjure capacity, so the failure is final.
            return Err(ForkFail::Fatal(Errno::NoMem));
        }
        // Degrade ladder. The cheaper strategies' immediate demand is
        // their eager pages plus a near-term lazy-copy estimate: CoA
        // faults on *any* child access (assume half the lazy pages copy
        // soon), CoPA only on writes and tagged loads — the tag-summary
        // bitmaps (PR 2) bound that by the capability-dense page count.
        let (_, _, cap_dense) =
            self.fork_page_demand(p_region, layout, meta_used_bytes, true, scope);
        ctx.kernel(self.cost.tags_load * 4.0 * private as f64);
        let lazy = private - eager;
        let ladder = [
            (CopyStrategy::CoA, eager + lazy / 2),
            (CopyStrategy::CoPA, eager + cap_dense.min(lazy)),
        ];
        for (cand, est) in ladder {
            if Self::degrade_rank(cand) <= Self::degrade_rank(requested) {
                continue;
            }
            if self.pm.reserve(est).is_ok() {
                if self.journal.record(JournalOp::ReserveFrames(est)).is_err() {
                    return Err(self.abort_fork(ctx, Errno::NoMem));
                }
                ctx.counters.forks_degraded += 1;
                ctx.instant("fork/degrade");
                return Ok(cand);
            }
        }
        Err(ForkFail::Fatal(Errno::NoMem))
    }

    /// Position in the degradation ladder (higher = cheaper at fork).
    fn degrade_rank(s: CopyStrategy) -> u8 {
        match s {
            CopyStrategy::Full => 0,
            CopyStrategy::CoA => 1,
            CopyStrategy::CoPA => 2,
        }
    }

    /// Frames a fork must allocate up front: every private page under
    /// `Full`, only the eagerly-copied pages under the lazy strategies.
    fn immediate_demand(strategy: CopyStrategy, private: u64, eager: u64) -> u64 {
        match strategy {
            CopyStrategy::Full => private,
            CopyStrategy::CoA | CopyStrategy::CoPA => eager,
        }
    }

    /// One read-only pass over the parent's mapped range, classifying
    /// pages the way the walk will. Returns `(private, eager,
    /// cap_dense)`: non-shm mapped pages *inside the copy scope*, pages
    /// copied eagerly under a lazy strategy, and — only when `density`
    /// is requested, since it costs a tag-summary read per page — pages
    /// holding at least one tagged granule. Clean pages under
    /// [`CopyScope::DirtySince`] allocate nothing at fork time (their
    /// child mappings share the parent frame), so they contribute
    /// nothing to the demand.
    fn fork_page_demand(
        &self,
        p_region: Region,
        layout: &crate::ProcLayout,
        meta_used_bytes: u64,
        density: bool,
        scope: CopyScope,
    ) -> (u64, u64, u64) {
        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let (mut private, mut eager, mut cap_dense) = (0u64, 0u64, 0u64);
        for (vpn, pte) in self.pt.range(start, end) {
            let off = vpn.base().0 - p_region.base.0;
            let seg = layout.segment_of(off);
            if seg == Segment::Shm || !scope.page_dirty(&pte) {
                continue;
            }
            private += 1;
            if self.eager_fork_copies
                && match seg {
                    Segment::Got => true,
                    Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                    _ => false,
                }
            {
                eager += 1;
            }
            if density {
                if let Ok(frame) = self.pm.frame(pte.pfn) {
                    if frame.cap_count() > 0 {
                        cap_dense += 1;
                    }
                }
            }
        }
        (private, eager, cap_dense)
    }

    /// Stamps every non-shm parent PTE with the next fork generation:
    /// generation field overwritten, soft-dirty bit cleared (each dirty
    /// bit set since the last fork is cleared exactly once, here),
    /// writable pages (re-)armed CoW so the *first* post-fork write
    /// faults and sets the bit again. Skipped unless dirty tracking is
    /// on; [`ScanMode::Naive`] keeps the legacy ablation walk untouched
    /// by never stamping (so auto-scoping never picks `DirtySince`
    /// there). Fully journaled: an abort mid-sweep restores every PTE's
    /// exact pre-stamp state and the parent's cursor.
    fn stamp_dirty_generation(
        &mut self,
        ctx: &mut Ctx,
        parent: Pid,
        p_region: Region,
        layout: &crate::ProcLayout,
    ) -> SysResult<()> {
        if !self.track_dirty || self.scan == ScanMode::Naive {
            return Ok(());
        }
        ctx.phase("fork/dirty_scan");
        let (old_gen, old_tracked) = {
            let p = self.proc(parent)?;
            (p.dirty_gen, p.dirty_tracked)
        };
        // Generation 0 means "never stamped" (fresh maps land there and
        // must read as dirty), so the cursor skips it on wrap.
        let new_gen = match old_gen.wrapping_add(1) {
            0 => 1,
            g => g,
        };
        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let mut stamped: Vec<Vpn> = Vec::new();
        {
            let pt = &self.pt;
            let journal = &mut self.journal;
            for (vpn, pte) in pt.range(start, end) {
                let off = vpn.base().0 - p_region.base.0;
                if layout.segment_of(off) == Segment::Shm {
                    // Shm frames are shared read-write by design; arming
                    // them CoW would privatize a write. They are also
                    // always shared by the walk, so they need no scope
                    // classification.
                    continue;
                }
                journal
                    .record(JournalOp::DirtyStamp {
                        vpn,
                        old_gen: pte.gen,
                        was_dirty: pte.flags.contains(PteFlags::DIRTY),
                        had_cow: pte.flags.contains(PteFlags::COW),
                    })
                    .map_err(|_| Errno::NoMem)?;
                stamped.push(vpn);
            }
        }
        self.journal
            .record(JournalOp::DirtyTrack {
                pid: parent,
                old_gen,
                old_tracked,
            })
            .map_err(|_| Errno::NoMem)?;
        let n = self.pt.stamp_many(stamped, new_gen);
        ctx.kernel(self.cost.pte_protect * n as f64);
        if let Some(p) = self.procs.get_mut(&parent) {
            p.dirty_gen = new_gen;
            p.dirty_tracked = true;
        }
        Ok(())
    }

    /// The per-page fork walk: maps (and, where the strategy requires,
    /// copies and relocates) every parent page into the child region,
    /// recording every side effect in the journal. On `Err` nothing has
    /// been cleaned up yet — the caller rolls the journal back.
    ///
    /// Returns the pages whose copies were *deferred* behind the commit:
    /// empty except under [`crate::fork_par::WalkMode::Pipelined`], where
    /// every would-be-eager page is instead staged CoA-style on the
    /// shared parent frame and handed to the background copy pipeline.
    /// Under [`CopyScope::DirtySince`] the deferred list holds only
    /// dirty pages, so the background window drains in O(dirty) too.
    #[allow(clippy::too_many_arguments)] // the fork attempt's full context
    fn fork_walk_pages(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
        strategy: CopyStrategy,
        scope: CopyScope,
    ) -> SysResult<Vec<(Vpn, PteFlags)>> {
        if self.scan == ScanMode::Naive {
            // The legacy walk predates dirty tracking; it never stamps,
            // so a `DirtySince` scope cannot legally reach it.
            debug_assert_eq!(scope, CopyScope::Everything);
            return self
                .fork_walk_pages_naive(
                    ctx,
                    p_region,
                    layout,
                    c_region,
                    c_root,
                    meta_used_bytes,
                    strategy,
                )
                .map(|()| Vec::new());
        }
        if let crate::fork_par::WalkMode::Parallel(n) = self.walk {
            return self
                .fork_walk_pages_parallel(
                    ctx,
                    p_region,
                    layout,
                    c_region,
                    c_root,
                    meta_used_bytes,
                    strategy,
                    n,
                    scope,
                )
                .map(|()| Vec::new());
        }
        let pipelined = self.walk == crate::fork_par::WalkMode::Pipelined;

        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let eager_cfg = self.eager_fork_copies;
        let validates = self.isolation.validates_syscalls();
        let dedup_on = self.dedup_frames;

        // Staged child PTEs, produced in ascending page order by the
        // parent-range stream; inserted in one batch on success only.
        let mut child_batch: Vec<(Vpn, Pte)> = Vec::new();
        // Parent pages to flip to COW in one protection sweep at the end.
        let mut cow_arm: Vec<Vpn> = Vec::new();
        // Pipelined only: pages staged on the shared frame whose copies
        // run behind the commit, in walk (ascending-VPN) order.
        let mut deferred: Vec<(Vpn, PteFlags)> = Vec::new();
        let mut failed: Option<Errno> = None;

        {
            // Split borrows: the parent range is streamed off `pt` (shared)
            // while frames are copied through `pm` (mutable) and effects
            // land in `journal` (mutable); `pt` itself is only written
            // after the stream ends.
            let pm = &mut self.pm;
            let pt = &self.pt;
            let journal = &mut self.journal;
            let cost = &self.cost;
            let dedup = &mut self.dedup;
            let region_index = &self.region_index;
            let lookup = |addr: u64| region_index.lookup(addr);
            let target = RelocTarget {
                region: c_region,
                root: c_root,
                source_of: &lookup,
                mode: ScanMode::TagSummary,
            };

            'walk: for (vpn, pte) in pt.range(start, end) {
                ctx.phase("fork/walk/pte");
                let off = vpn.base().0 - p_region.base.0;
                let seg = layout.segment_of(off);
                let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
                let final_flags = Self::seg_flags(seg);

                if seg == Segment::Shm {
                    // Shared mappings stay shared: same frames, full perms.
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    child_batch.push((c_vpn, Pte::new(pte.pfn, final_flags)));
                    ctx.kernel(cost.pte_copy);
                    continue;
                }

                if !scope.page_dirty(&pte) {
                    // Clean since the parent's last stamp: share the
                    // frame outright. No frame allocation, no tag scan —
                    // a refcount bump and one staged PTE. The child maps
                    // it CoPA-style (readable, writes and capability
                    // loads fault: clean pages still hold the *parent's*
                    // capabilities, so direct cap loads must stay
                    // fenced), or fully inaccessible under CoA.
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    let f = if strategy == CopyStrategy::CoA {
                        PteFlags::empty().with(PteFlags::COA)
                    } else {
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        f
                    };
                    child_batch.push((c_vpn, Pte::new(pte.pfn, f)));
                    ctx.kernel(cost.pte_copy);
                    ctx.counters.pages_shared_clean += 1;
                    if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                        cow_arm.push(vpn);
                    }
                    continue;
                }
                if scope != CopyScope::Everything {
                    ctx.counters.pages_dirty_copied += 1;
                }

                let eager = strategy == CopyStrategy::Full
                    || (eager_cfg
                        && match seg {
                            Segment::Got => true,
                            Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                            _ => false,
                        });

                if eager && pipelined {
                    // Stage, don't copy: the child maps the shared frame
                    // fully inaccessible (CoA-style — any access faults
                    // and jumps the copy queue), the parent is CoW-armed
                    // below so its writes cannot perturb the fork-time
                    // snapshot, and the actual copy + relocation runs as
                    // a background chunk after the commit.
                    ctx.phase("fork/pipeline/stage");
                    if pm.inc_ref(pte.pfn).is_err() {
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                        failed = Some(Errno::NoMem);
                        break 'walk;
                    }
                    child_batch.push((
                        c_vpn,
                        Pte::new(pte.pfn, PteFlags::empty().with(PteFlags::COA)),
                    ));
                    ctx.kernel(cost.pte_copy + cost.coa_pte_extra);
                    deferred.push((c_vpn, final_flags));
                    if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                        cow_arm.push(vpn);
                    }
                    continue;
                }

                if eager {
                    // Cross-child dedup: before materializing a private
                    // copy, probe the content index for an existing
                    // identical frame a sibling already holds. Untagged
                    // source frames only — relocation is a no-op on
                    // them, so the copy's content equals the source's
                    // and the hash key is exact.
                    let probe = if dedup_on {
                        ctx.phase("fork/dedup");
                        dedup_probe(pm, pt, dedup, cost, ctx, pte.pfn)
                    } else {
                        DedupProbe::Skip
                    };
                    if let DedupProbe::Hit(shared) = probe {
                        if pm.inc_ref(shared).is_err() {
                            failed = Some(Errno::Fault);
                            break 'walk;
                        }
                        if journal.record(JournalOp::RefInc(shared)).is_err() {
                            failed = Some(Errno::NoMem);
                            break 'walk;
                        }
                        // CoW-protected: the canonical content must stay
                        // stable under every sharer's writes.
                        child_batch
                            .push((c_vpn, Pte::new(shared, final_flags.with(PteFlags::COW))));
                        ctx.kernel(cost.pte_write);
                        ctx.counters.frames_deduped += 1;
                        continue;
                    }
                    let new = match copy_page_for_child(pm, journal, cost, ctx, pte.pfn, &target) {
                        Ok(new) => new,
                        Err(e) => {
                            failed = Some(e);
                            break 'walk;
                        }
                    };
                    ctx.phase("fork/walk/pte");
                    let mut flags = final_flags;
                    if let DedupProbe::Miss(hash) = probe {
                        // Register the fresh copy as the canonical frame
                        // for this content, CoW-armed so it stays
                        // byte-stable while indexed. No journal op: a
                        // rolled-back fork leaves a stale entry that
                        // self-invalidates on the next probe.
                        dedup.insert(hash, new, c_vpn.0);
                        flags = flags.with(PteFlags::COW);
                    }
                    child_batch.push((c_vpn, Pte::new(new, flags)));
                    ctx.kernel(cost.pte_write);
                    if validates {
                        // Adversarial deployments re-verify every relocated
                        // capability against the child's bounds before the
                        // page becomes visible (the fork-latency component of
                        // TOCTTOU/validation, ~2.6% in the paper).
                        ctx.kernel(cost.page_scan() + cost.tocttou_fixed);
                    }
                    ctx.counters.pages_copied_eager += 1;
                    continue;
                }

                // Lazy strategies: share the frame and arm faults.
                if pm.inc_ref(pte.pfn).is_err() {
                    failed = Some(Errno::Fault);
                    break 'walk;
                }
                if journal.record(JournalOp::RefInc(pte.pfn)).is_err() {
                    failed = Some(Errno::NoMem);
                    break 'walk;
                }
                match strategy {
                    CopyStrategy::Full => {
                        debug_assert!(false, "full copy is always eager");
                        failed = Some(Errno::Fault);
                        break 'walk;
                    }
                    CopyStrategy::CoA => {
                        // Fully inaccessible to the child: any access faults.
                        child_batch.push((
                            c_vpn,
                            Pte::new(pte.pfn, PteFlags::empty().with(PteFlags::COA)),
                        ));
                        ctx.kernel(cost.pte_copy + cost.coa_pte_extra);
                    }
                    CopyStrategy::CoPA => {
                        // Readable; writes and tagged loads fault.
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        child_batch.push((c_vpn, Pte::new(pte.pfn, f)));
                        ctx.kernel(cost.pte_copy);
                    }
                }

                // Writable parent pages become copy-on-write (armed in one
                // sweep after the stream).
                if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                    cow_arm.push(vpn);
                }
            }
        }

        if let Some(e) = failed {
            // Every reference the batch took is journaled; the caller's
            // rollback drops them. Nothing reached the page table.
            ctx.counters.region_lookups += self.region_index.take_lookups();
            return Err(e);
        }

        // Record-then-apply (see `crate::journal`): if recording aborts
        // part-way, the rollback's unmap of never-inserted VPNs is a
        // no-op.
        for (vpn, _) in &child_batch {
            self.journal
                .record(JournalOp::PteMap(*vpn))
                .map_err(|_| Errno::NoMem)?;
        }
        ctx.counters.ptes_written += self.pt.extend_sorted(child_batch);
        ctx.phase("fork/walk/cow_arm");
        for &vpn in &cow_arm {
            self.journal
                .record(JournalOp::CowArm(vpn))
                .map_err(|_| Errno::NoMem)?;
        }
        let armed = self.pt.protect_many(cow_arm, PteFlags::COW);
        ctx.kernel(self.cost.pte_protect * armed as f64);
        ctx.counters.region_lookups += self.region_index.take_lookups();
        Ok(deferred)
    }

    /// The pre-optimization walk, kept verbatim as the [`ScanMode::Naive`]
    /// ablation baseline: collects the parent's PTEs into a `Vec`, inserts
    /// child PTEs one `map` at a time, arms parent COW per page, and
    /// resolves relocation sources by linear scan of a freshly-rebuilt
    /// region list. Journaled like the batched walk, so rollback covers
    /// its per-page inserts too.
    #[allow(clippy::too_many_arguments)] // the fork attempt's full context
    fn fork_walk_pages_naive(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
        strategy: CopyStrategy,
    ) -> SysResult<()> {
        let sources = self.source_regions();
        let naive_lookups = Cell::new(0u64);
        let source_of = |addr: u64| -> Option<Region> {
            naive_lookups.set(naive_lookups.get() + 1);
            sources.iter().find(|r| r.contains(VirtAddr(addr))).copied()
        };

        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let mapped: Vec<(Vpn, Pte)> = self.pt.range(start, end).collect();

        let result = (|| -> SysResult<()> {
            for &(vpn, pte) in &mapped {
                ctx.phase("fork/walk/pte");
                let off = vpn.base().0 - p_region.base.0;
                let seg = layout.segment_of(off);
                let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
                let final_flags = Self::seg_flags(seg);

                if seg == Segment::Shm {
                    self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
                    self.journal
                        .record(JournalOp::RefInc(pte.pfn))
                        .map_err(|_| Errno::NoMem)?;
                    self.pt.map(c_vpn, pte.pfn, final_flags);
                    self.journal
                        .record(JournalOp::PteMap(c_vpn))
                        .map_err(|_| Errno::NoMem)?;
                    ctx.kernel(self.cost.pte_copy);
                    ctx.counters.ptes_written += 1;
                    continue;
                }

                let eager = strategy == CopyStrategy::Full
                    || (self.eager_fork_copies
                        && match seg {
                            Segment::Got => true,
                            Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                            _ => false,
                        });

                if eager {
                    let target = RelocTarget {
                        region: c_region,
                        root: c_root,
                        source_of: &source_of,
                        mode: ScanMode::Naive,
                    };
                    let new = copy_page_for_child(
                        &mut self.pm,
                        &mut self.journal,
                        &self.cost,
                        ctx,
                        pte.pfn,
                        &target,
                    )?;
                    ctx.phase("fork/walk/pte");
                    self.pt.map(c_vpn, new, final_flags);
                    self.journal
                        .record(JournalOp::PteMap(c_vpn))
                        .map_err(|_| Errno::NoMem)?;
                    ctx.kernel(self.cost.pte_write);
                    if self.isolation.validates_syscalls() {
                        ctx.kernel(self.cost.page_scan() + self.cost.tocttou_fixed);
                    }
                    ctx.counters.ptes_written += 1;
                    ctx.counters.pages_copied_eager += 1;
                    continue;
                }

                self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
                self.journal
                    .record(JournalOp::RefInc(pte.pfn))
                    .map_err(|_| Errno::NoMem)?;
                match strategy {
                    CopyStrategy::Full => {
                        debug_assert!(false, "full copy is always eager");
                        return Err(Errno::Fault);
                    }
                    CopyStrategy::CoA => {
                        self.pt
                            .map(c_vpn, pte.pfn, PteFlags::empty().with(PteFlags::COA));
                        ctx.kernel(self.cost.pte_copy + self.cost.coa_pte_extra);
                    }
                    CopyStrategy::CoPA => {
                        let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                        if final_flags.contains(PteFlags::EXEC) {
                            f = f.with(PteFlags::EXEC);
                        }
                        if final_flags.contains(PteFlags::WRITE) {
                            f = f.with(PteFlags::WRITE); // COW checked first
                        }
                        self.pt.map(c_vpn, pte.pfn, f);
                        ctx.kernel(self.cost.pte_copy);
                    }
                }
                self.journal
                    .record(JournalOp::PteMap(c_vpn))
                    .map_err(|_| Errno::NoMem)?;
                ctx.counters.ptes_written += 1;

                if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                    ctx.phase("fork/walk/cow_arm");
                    if let Some(ppte) = self.pt.lookup_mut(vpn) {
                        ppte.flags = ppte.flags.with(PteFlags::COW);
                    }
                    self.journal
                        .record(JournalOp::CowArm(vpn))
                        .map_err(|_| Errno::NoMem)?;
                    ctx.kernel(self.cost.pte_protect);
                }
            }
            Ok(())
        })();
        ctx.counters.region_lookups += naive_lookups.get();
        result
    }
}

/// Outcome of a cross-child dedup probe for one eager-copy source page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DedupProbe {
    /// Dedup disabled, or the source frame holds tags (per-child
    /// relocation makes tagged copies never byte-identical).
    Skip,
    /// A validated identical frame exists: share it instead of copying.
    Hit(Pfn),
    /// No (valid) candidate; the caller should copy and then register
    /// the fresh frame under this content hash.
    Miss(u64),
}

/// Probes the cross-child frame-dedup index for a frame identical to
/// `src`. A hit is validated against live state before it is trusted:
/// the canonical frame must still be allocated, its canonical mapping
/// must still point at it write-protected (so the content cannot have
/// drifted since insert), it must still be untagged, and a full content
/// comparison must match — the hash is only an index key, never an
/// equality proof. Stale entries are evicted on sight, which is what
/// lets inserts skip the journal entirely.
pub(crate) fn dedup_probe(
    pm: &PhysMem,
    pt: &PageTable,
    dedup: &mut FrameDedupIndex,
    cost: &CostModel,
    ctx: &mut Ctx,
    src: Pfn,
) -> DedupProbe {
    let Ok(frame) = pm.frame(src) else {
        return DedupProbe::Skip;
    };
    if frame.cap_count() > 0 {
        return DedupProbe::Skip;
    }
    let hash = content_hash(frame);
    ctx.kernel(cost.page_hash);
    ctx.counters.dedup_hash_probes += 1;
    let Some(entry) = dedup.get(hash) else {
        return DedupProbe::Miss(hash);
    };
    let canonical_stable = pm.refcount(entry.pfn).is_ok()
        && pt.lookup(Vpn(entry.vpn)).is_some_and(|c| {
            c.pfn == entry.pfn
                && (c.flags.contains(PteFlags::COW) || !c.flags.contains(PteFlags::WRITE))
        })
        && pm.frame(entry.pfn).is_ok_and(|c| c.cap_count() == 0);
    if canonical_stable {
        ctx.kernel(cost.page_hash);
        ctx.counters.dedup_hash_probes += 1;
        let identical = pm.frame(entry.pfn).is_ok_and(|c| c.data() == frame.data());
        if identical {
            return DedupProbe::Hit(entry.pfn);
        }
    }
    dedup.evict(hash);
    DedupProbe::Miss(hash)
}

/// Where an eager page copy lands and how its capabilities are fixed up:
/// the child's region and root plus the scan strategy and region lookup.
pub(crate) struct RelocTarget<'a> {
    pub(crate) region: Region,
    pub(crate) root: &'a Capability,
    pub(crate) source_of: &'a dyn Fn(u64) -> Option<Region>,
    pub(crate) mode: ScanMode,
}

/// Allocates one `ZeroPolicy::Zeroed` frame on the fork/fault hot path,
/// charging the grant-time scrub of a recycled dirty frame to `ctx` —
/// unless the background reclaim daemon already pre-zeroed it (a
/// clean-frame magazine hit: counted, but free). Fresh frames are clean
/// by construction and charge nothing, preserving the cold-start cost
/// profile exactly.
pub(crate) fn alloc_zeroed_charged(
    pm: &mut PhysMem,
    cost: &CostModel,
    ctx: &mut Ctx,
) -> Result<Pfn, ufork_mem::MemError> {
    let g = pm.alloc_frame_grant()?;
    if g.prezeroed {
        ctx.counters.magazine_hits += 1;
    } else if g.recycled {
        ctx.kernel(cost.zero_page);
    }
    Ok(g.pfn)
}

/// Eagerly copies one frame for a child and relocates it. The allocated
/// frame is journaled before the copy: on a copy failure the frame is
/// *not* freed here — the caller's rollback owns that reference.
pub(crate) fn copy_page_for_child(
    pm: &mut PhysMem,
    journal: &mut ForkJournal,
    cost: &CostModel,
    ctx: &mut Ctx,
    src: Pfn,
    target: &RelocTarget<'_>,
) -> SysResult<Pfn> {
    ctx.phase("fork/walk/copy");
    let new = alloc_zeroed_charged(pm, cost, ctx).map_err(|_| Errno::NoMem)?;
    journal
        .record(JournalOp::FrameAlloc(new))
        .map_err(|_| Errno::NoMem)?;
    if pm.copy_frame(src, new).is_err() {
        return Err(Errno::Fault);
    }
    ctx.kernel(cost.page_alloc + cost.page_copy);
    ctx.counters.pages_copied += 1;
    ctx.phase("fork/walk/reloc");
    let stats = relocate_frame(
        pm,
        new,
        target.region,
        target.root,
        target.source_of,
        target.mode,
    );
    ctx.kernel(reloc_cost(cost, &stats));
    ctx.counters.granules_scanned += stats.granules_scanned;
    ctx.counters.granules_skipped += stats.granules_skipped;
    ctx.counters.tag_words_loaded += stats.tag_words_loaded;
    ctx.counters.caps_relocated += stats.relocated + stats.cleared;
    Ok(new)
}
