//! The μFork fork walk (paper §3.5).
//!
//! 1. **Parent state duplication** — reserve a contiguous child region,
//!    copy the parent's PTEs so the child maps the same physical pages,
//!    proactively copy + relocate the GOT and the in-use allocator
//!    metadata, and arm the configured copy strategy on everything else.
//! 2. **Post-copy phase** — mint the child's root capability, relocate
//!    the register file, and hand the child to the scheduler (done by the
//!    executive).

use ufork_abi::{CopyStrategy, Errno, Pid, SysResult};
use ufork_cheri::{Capability, Perms};
use ufork_exec::Ctx;
use ufork_mem::{Pfn, PAGE_SIZE};
use ufork_vmem::{Pte, PteFlags, Region, VirtAddr, Vpn};

use crate::kernel::{UProc, UforkOs};
use crate::layout::Segment;
use crate::reloc::{reloc_cost, relocate_frame};

impl UforkOs {
    /// Reads a `u64` from a μprocess' memory, kernel-side (no faults: the
    /// parent's own pages are always readable by the kernel).
    fn kread_u64(&self, va: u64) -> SysResult<u64> {
        let v = VirtAddr(va);
        let pte = self.pt.lookup(v.vpn()).ok_or(Errno::Fault)?;
        let mut b = [0u8; 8];
        self.pm
            .read(pte.pfn, v.page_offset(), &mut b)
            .map_err(|_| Errno::Fault)?;
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn fork_uproc(&mut self, ctx: &mut Ctx, parent: Pid, child: Pid) -> SysResult<()> {
        // Fixed path: task struct, PID allocation, fd duplication hooks,
        // thread creation, scheduler insertion (paper §3.5 step 2).
        ctx.kernel(self.cost.fork_fixed_ufork);

        let (p_region, layout, p_regs, p_shm_next, p_mmap_next) = {
            let p = self.proc(parent)?;
            (
                p.region,
                p.layout.clone(),
                p.regs.clone(),
                p.shm_next,
                p.mmap_next,
            )
        };

        // How much allocator metadata is live (eagerly copied, §3.5).
        let meta_header = p_region.base.0 + layout.heap_meta.0;
        let blocks_used = self.kread_u64(meta_header + 16)?;
        let meta_used_bytes = 64 + blocks_used * crate::layout::BLOCK_DESC_BYTES;

        // Reserve the child's contiguous region.
        let c_region = self
            .regions
            .alloc(layout.region_len())
            .map_err(|_| Errno::NoMem)?;
        let c_root = Capability::new_root(c_region.base.0, layout.region_len(), Perms::data());
        debug_assert!(!c_root.perms().contains(Perms::SYSTEM));

        // The page walk can fail mid-way (frame exhaustion while copying a
        // page, refcount overflow): everything staged for the child so far
        // must then be unwound — no leaked frames, no dangling PTEs, the
        // region handed back — leaving the parent exactly as it was, plus
        // harmless extra COW arming that the next parent write clears.
        if let Err(e) = self.fork_walk_pages(ctx, p_region, &layout, c_region, &c_root, meta_used_bytes)
        {
            self.unwind_partial_fork(c_region);
            return Err(e);
        }

        let sources = self.source_regions();
        let source_of = |addr: u64| -> Option<Region> {
            sources
                .iter()
                .find(|r| addr >= r.base.0 && addr < r.base.0 + r.len)
                .copied()
        };

        // Relocate the register file (paper §3.5 step 2: "any absolute
        // memory references contained in registers are relocated").
        let mut c_regs = p_regs;
        for slot in c_regs.iter_mut() {
            if let Some(cap) = slot {
                if cap.confined_to(c_region.base.0, c_region.len) {
                    continue;
                }
                if let Some(src) = source_of(cap.base()) {
                    let delta = c_region.base.0 as i64 - src.base.0 as i64;
                    match cap.rebase(delta, &c_root) {
                        Ok(new_cap) => {
                            *slot = Some(new_cap);
                            ctx.counters.caps_relocated += 1;
                        }
                        Err(_) => *slot = None,
                    }
                } else if cap.perms().contains(Perms::EXECUTE) {
                    // PCC-style register: rebase code caps by region offset.
                    let delta = c_region.base.0 as i64 - p_region.base.0 as i64;
                    if let Ok(addr) = cap.addr().checked_add_signed(delta).ok_or(()) {
                        let code_root =
                            Capability::new_root(c_region.base.0, layout.text.1, Perms::code());
                        *slot = code_root.with_addr(addr).ok();
                    }
                }
                ctx.kernel(self.cost.cap_relocate);
            }
        }

        self.procs.insert(
            child,
            UProc {
                region: c_region,
                layout,
                root: c_root,
                regs: c_regs,
                shm_next: p_shm_next,
                mmap_next: p_mmap_next,
                had_children: false,
            },
        );
        if let Some(p) = self.procs.get_mut(&parent) {
            p.had_children = true;
        }
        Ok(())
    }

    /// The per-page fork walk: maps (and, where the strategy requires,
    /// copies and relocates) every parent page into the child region.
    /// On `Err` the caller unwinds whatever was staged.
    fn fork_walk_pages(
        &mut self,
        ctx: &mut Ctx,
        p_region: Region,
        layout: &crate::ProcLayout,
        c_region: Region,
        c_root: &Capability,
        meta_used_bytes: u64,
    ) -> SysResult<()> {
        let sources = self.source_regions();
        let source_of = |addr: u64| -> Option<Region> {
            sources
                .iter()
                .find(|r| addr >= r.base.0 && addr < r.base.0 + r.len)
                .copied()
        };

        let start = p_region.base.vpn();
        let end = Vpn(p_region.top().0.div_ceil(PAGE_SIZE));
        let mapped: Vec<(Vpn, Pte)> = self.pt.range(start, end).collect();

        for (vpn, pte) in mapped {
            let off = vpn.base().0 - p_region.base.0;
            let seg = layout.segment_of(off);
            let c_vpn = VirtAddr(c_region.base.0 + off).vpn();
            let final_flags = Self::seg_flags(seg);

            if seg == Segment::Shm {
                // Shared mappings stay shared: same frames, full perms.
                self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
                self.pt.map(c_vpn, pte.pfn, PteFlags::rw());
                ctx.kernel(self.cost.pte_copy);
                ctx.counters.ptes_written += 1;
                continue;
            }

            let eager = self.strategy == CopyStrategy::Full
                || (self.eager_fork_copies
                    && match seg {
                        Segment::Got => true,
                        Segment::HeapMeta => off - layout.heap_meta.0 < meta_used_bytes,
                        _ => false,
                    });

            if eager {
                let new = self.copy_page_for_child(ctx, pte.pfn, c_region, c_root, &source_of)?;
                self.pt.map(c_vpn, new, final_flags);
                ctx.kernel(self.cost.pte_write);
                if self.isolation.validates_syscalls() {
                    // Adversarial deployments re-verify every relocated
                    // capability against the child's bounds before the
                    // page becomes visible (the fork-latency component of
                    // TOCTTOU/validation, ~2.6% in the paper).
                    ctx.kernel(self.cost.page_scan() + self.cost.tocttou_fixed);
                }
                ctx.counters.ptes_written += 1;
                ctx.counters.pages_copied_eager += 1;
                continue;
            }

            // Lazy strategies: share the frame and arm faults.
            self.pm.inc_ref(pte.pfn).map_err(|_| Errno::Fault)?;
            match self.strategy {
                CopyStrategy::Full => unreachable!("full copy is always eager"),
                CopyStrategy::CoA => {
                    // Fully inaccessible to the child: any access faults.
                    self.pt
                        .map(c_vpn, pte.pfn, PteFlags::empty().with(PteFlags::COA));
                    ctx.kernel(self.cost.pte_copy + self.cost.coa_pte_extra);
                }
                CopyStrategy::CoPA => {
                    // Readable; writes and tagged loads fault.
                    let mut f = PteFlags::READ.with(PteFlags::LC_FAULT).with(PteFlags::COW);
                    if final_flags.contains(PteFlags::EXEC) {
                        f = f.with(PteFlags::EXEC);
                    }
                    if final_flags.contains(PteFlags::WRITE) {
                        f = f.with(PteFlags::WRITE); // COW checked first
                    }
                    self.pt.map(c_vpn, pte.pfn, f);
                    ctx.kernel(self.cost.pte_copy);
                }
            }
            ctx.counters.ptes_written += 1;

            // Writable parent pages become copy-on-write.
            if final_flags.contains(PteFlags::WRITE) && !pte.flags.contains(PteFlags::COW) {
                if let Some(ppte) = self.pt.lookup_mut(vpn) {
                    ppte.flags = ppte.flags.with(PteFlags::COW);
                }
                ctx.kernel(self.cost.pte_protect);
            }
        }
        Ok(())
    }

    /// Rolls back a partially-staged fork: unmaps every PTE already
    /// created in the child region, drops the frame references they took
    /// (freeing eagerly-copied frames outright), and returns the region
    /// to the allocator. After this the kernel is exactly as before the
    /// fork except for COW arming on parent pages, which the parent's
    /// next write resolves in place.
    fn unwind_partial_fork(&mut self, c_region: Region) {
        let start = c_region.base.vpn();
        let end = Vpn(c_region.top().0.div_ceil(PAGE_SIZE));
        let staged: Vec<(Vpn, Pte)> = self.pt.range(start, end).collect();
        for (vpn, pte) in staged {
            self.pt.unmap(vpn);
            let _ = self.pm.dec_ref(pte.pfn);
        }
        let _ = self.regions.free(c_region);
    }

    /// Eagerly copies one frame for a child and relocates it.
    fn copy_page_for_child(
        &mut self,
        ctx: &mut Ctx,
        src: Pfn,
        c_region: Region,
        c_root: &Capability,
        source_of: &dyn Fn(u64) -> Option<Region>,
    ) -> SysResult<Pfn> {
        let new = self.pm.alloc_frame().map_err(|_| Errno::NoMem)?;
        self.pm.copy_frame(src, new).map_err(|_| Errno::Fault)?;
        ctx.kernel(self.cost.page_alloc + self.cost.page_copy);
        ctx.counters.pages_copied += 1;
        let stats = relocate_frame(&mut self.pm, new, c_region, c_root, source_of);
        ctx.kernel(reloc_cost(&self.cost, &stats));
        ctx.counters.granules_scanned += stats.granules_scanned;
        ctx.counters.caps_relocated += stats.relocated + stats.cleared;
        Ok(new)
    }
}
