//! The relocation engine (paper §4.2).
//!
//! After a page is copied for a child μprocess, it is scanned in 16-byte
//! increments for valid capability tags. Each tagged capability whose
//! target or bounds escape the child's region is *relocated*: rebased by
//! the distance between the region it points into and the child's region,
//! with bounds clamped to the child's region. Capabilities pointing to no
//! known μprocess region (e.g. leaked kernel pointers) have their tag
//! cleared — strictly safer than leaving a stale reference.

use ufork_cheri::Capability;
use ufork_mem::{Pfn, PhysMem};
use ufork_sim::CostModel;
use ufork_vmem::Region;

use crate::Segment;

/// Outcome of relocating one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelocStats {
    /// Granules inspected (always 256 for a full page).
    pub granules_scanned: u64,
    /// Capabilities rebased into the child region.
    pub relocated: u64,
    /// Capabilities whose tag was cleared (target unknown).
    pub cleared: u64,
}

/// Relocates every out-of-region capability in `frame` into `child`.
///
/// `source_of` maps an address to the region it belongs to (the parent's
/// region in the common case; an older ancestor's for pages shared across
/// multiple forks; `None` for addresses outside any μprocess region).
///
/// Returns statistics; the caller charges simulated time from them.
pub fn relocate_frame(
    pm: &mut PhysMem,
    frame: Pfn,
    child: Region,
    child_root: &Capability,
    source_of: &dyn Fn(u64) -> Option<Region>,
) -> RelocStats {
    let mut stats = RelocStats {
        granules_scanned: 256,
        ..RelocStats::default()
    };
    // Collect first to keep the borrow simple; pages hold at most 256.
    let caps: Vec<(u64, Capability)> = pm
        .frame(frame)
        .expect("relocating an allocated frame")
        .tagged_granules()
        .collect();
    for (off, cap) in caps {
        if cap.confined_to(child.base.0, child.len) {
            continue; // already points into the child
        }
        let Some(src) = source_of(cap.base()) else {
            // Unknown target (kernel or dead region): clear the tag.
            pm.frame_mut(frame)
                .expect("frame still allocated")
                .clear_tag(off);
            stats.cleared += 1;
            continue;
        };
        let delta = child.base.0 as i64 - src.base.0 as i64;
        match cap.rebase(delta, child_root) {
            Ok(new_cap) => {
                pm.frame_mut(frame)
                    .expect("frame still allocated")
                    .replace_cap(off, &new_cap);
                stats.relocated += 1;
            }
            Err(_) => {
                pm.frame_mut(frame)
                    .expect("frame still allocated")
                    .clear_tag(off);
                stats.cleared += 1;
            }
        }
    }
    stats
}

/// Simulated cost of a relocation pass with the given statistics.
pub fn reloc_cost(cost: &CostModel, stats: &RelocStats) -> f64 {
    cost.granule_check * stats.granules_scanned as f64
        + cost.cap_relocate * (stats.relocated + stats.cleared) as f64
}

/// Whether fork must copy this segment *eagerly* (paper §3.5: allocator
/// metadata and GOT pages are proactively copied and updated during fork).
pub fn eager_at_fork(seg: Segment) -> bool {
    matches!(seg, Segment::Got | Segment::HeapMeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufork_cheri::Perms;
    use ufork_vmem::VirtAddr;

    fn region(base: u64, len: u64) -> Region {
        Region {
            base: VirtAddr(base),
            len,
        }
    }

    #[test]
    fn relocates_parent_caps_and_keeps_child_caps() {
        let mut pm = PhysMem::new(4);
        let f = pm.alloc_frame().unwrap();
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());

        let stale = Capability::new_root(0x10_4000, 0x100, Perms::data());
        let fine = Capability::new_root(0x90_2000, 0x40, Perms::data());
        pm.store_cap(f, 0, &stale).unwrap();
        pm.store_cap(f, 16, &fine).unwrap();

        let stats = relocate_frame(&mut pm, f, child, &child_root, &|a| {
            if a >= parent.base.0 && a < parent.base.0 + parent.len {
                Some(parent)
            } else {
                None
            }
        });
        assert_eq!(stats.relocated, 1);
        assert_eq!(stats.cleared, 0);
        assert_eq!(stats.granules_scanned, 256);

        let moved = pm.load_cap(f, 0).unwrap().unwrap();
        assert_eq!(moved.base(), 0x90_4000);
        assert!(moved.confined_to(child.base.0, child.len));
        assert_eq!(pm.load_cap(f, 16).unwrap().unwrap(), fine);
    }

    #[test]
    fn unknown_targets_get_cleared() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        let kernel_ptr = Capability::new_root(0xffff_0000_0000, 0x1000, Perms::kernel());
        pm.store_cap(f, 32, &kernel_ptr).unwrap();
        let stats = relocate_frame(&mut pm, f, child, &child_root, &|_| None);
        assert_eq!(stats.cleared, 1);
        assert_eq!(pm.load_cap(f, 32).unwrap(), None);
    }

    #[test]
    fn bounds_clamped_to_child_region() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x8000); // smaller child region
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        // Cap spanning the whole parent region.
        let wide = Capability::new_root(parent.base.0, parent.len, Perms::data());
        pm.store_cap(f, 0, &wide).unwrap();
        relocate_frame(&mut pm, f, child, &child_root, &|_| Some(parent));
        let moved = pm.load_cap(f, 0).unwrap().unwrap();
        assert!(moved.confined_to(child.base.0, child.len));
        assert_eq!(moved.top(), child.base.0 + child.len);
    }

    #[test]
    fn cost_accounts_scan_and_fixups() {
        let cost = CostModel::morello();
        let stats = RelocStats {
            granules_scanned: 256,
            relocated: 3,
            cleared: 1,
        };
        let c = reloc_cost(&cost, &stats);
        assert!((c - (256.0 * cost.granule_check + 4.0 * cost.cap_relocate)).abs() < 1e-9);
    }

    #[test]
    fn eager_segments() {
        assert!(eager_at_fork(Segment::Got));
        assert!(eager_at_fork(Segment::HeapMeta));
        assert!(!eager_at_fork(Segment::HeapArena));
        assert!(!eager_at_fork(Segment::Text));
        assert!(!eager_at_fork(Segment::Stack));
    }
}
