//! The relocation engine (paper §4.2).
//!
//! After a page is copied for a child μprocess, it is scanned for valid
//! capability tags. Each tagged capability whose target or bounds escape
//! the child's region is *relocated*: rebased by the distance between the
//! region it points into and the child's region, with bounds clamped to
//! the child's region. Capabilities pointing to no known μprocess region
//! (e.g. leaked kernel pointers) have their tag cleared — strictly safer
//! than leaving a stale reference.
//!
//! Two scan strategies are modelled ([`ScanMode`]):
//!
//! * **Naive** — the paper's sequential sweep: every 16-byte granule of
//!   the page is inspected individually (256 `granule_check`s of
//!   simulated time per page, regardless of how many tags are set).
//! * **TagSummary** (default) — the `CLoadTags` fast path: four bulk tag
//!   reads (64 granule tags per word) fetch the page's tag-occupancy
//!   bitmap, untagged pages are skipped outright, and on sparse pages the
//!   scan jumps directly to the set bits. This is the shortcut Morello
//!   hardware exposes and the CHERI VM-porting literature recommends over
//!   per-granule sweeps.
//!
//! Both strategies produce byte- and tag-identical frames; they differ
//! only in cost (simulated *and* host-side). The `naive` mode is kept as
//! an ablation so the benchmark harness can show both cost curves.

use ufork_cheri::Capability;
use ufork_mem::{Frame, Pfn, PhysMem, GRANULES_PER_PAGE, TAG_WORDS_PER_PAGE};
use ufork_sim::CostModel;
use ufork_vmem::Region;

use crate::Segment;

/// How `relocate_frame` discovers tagged granules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// Sequential per-granule sweep (256 tag inspections per page).
    Naive,
    /// Bulk tag reads + jump-to-set-bits (the `CLoadTags` fast path).
    #[default]
    TagSummary,
}

/// Outcome of relocating one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelocStats {
    /// Granules individually inspected (256 under the naive sweep; the
    /// number of *tagged* granules under the tag-summary fast path).
    pub granules_scanned: u64,
    /// Granules skipped without inspection because a bulk tag read showed
    /// their tag clear (0 under the naive sweep).
    pub granules_skipped: u64,
    /// Bulk tag-summary words loaded (0 under the naive sweep; one per 64
    /// granules — 4 per page — under the fast path).
    pub tag_words_loaded: u64,
    /// Capabilities rebased into the child region.
    pub relocated: u64,
    /// Capabilities whose tag was cleared (target unknown).
    pub cleared: u64,
}

/// Relocates every out-of-region capability in `frame` into `child`.
///
/// `source_of` maps an address to the region it belongs to (the parent's
/// region in the common case; an older ancestor's for pages shared across
/// multiple forks; `None` for addresses outside any μprocess region).
///
/// Returns statistics; the caller charges simulated time from them via
/// [`reloc_cost`].
pub fn relocate_frame(
    pm: &mut PhysMem,
    frame: Pfn,
    child: Region,
    child_root: &Capability,
    source_of: &dyn Fn(u64) -> Option<Region>,
    mode: ScanMode,
) -> RelocStats {
    let f = pm.frame_mut(frame).expect("relocating an allocated frame");
    relocate_frame_in(f, child, child_root, source_of, mode)
}

/// [`relocate_frame`] on a directly borrowed (or detached) [`Frame`].
///
/// The parallel fork walk detaches destination frames from `PhysMem` and
/// relocates them on worker threads, where no `&mut PhysMem` exists; this
/// entry point is the common implementation both paths share.
pub fn relocate_frame_in(
    f: &mut Frame,
    child: Region,
    child_root: &Capability,
    source_of: &dyn Fn(u64) -> Option<Region>,
    mode: ScanMode,
) -> RelocStats {
    let mut stats = RelocStats::default();
    // Collect the tagged granules first to keep the borrow simple; pages
    // hold at most 256. The two modes genuinely differ in how they find
    // them — this is what the host-side bench measures.
    let caps: Vec<(u64, Capability)> = match mode {
        ScanMode::Naive => {
            // The paper's sweep, performed for real: inspect every
            // granule's tag individually.
            stats.granules_scanned = GRANULES_PER_PAGE;
            (0..GRANULES_PER_PAGE)
                .filter_map(|g| {
                    let off = g * ufork_mem::GRANULE_SIZE;
                    f.load_cap(off).map(|c| (off, c))
                })
                .collect()
        }
        ScanMode::TagSummary => {
            // Four CLoadTags-style bulk reads fetch the whole page's tag
            // occupancy; only set bits are then inspected individually.
            let words = f.tag_words();
            stats.tag_words_loaded = TAG_WORDS_PER_PAGE as u64;
            let tagged: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            stats.granules_scanned = tagged;
            stats.granules_skipped = GRANULES_PER_PAGE - tagged;
            if tagged == 0 {
                return stats; // untagged page: nothing to relocate
            }
            f.tagged_granules().collect()
        }
    };
    for (off, cap) in caps {
        if cap.confined_to(child.base.0, child.len) {
            continue; // already points into the child
        }
        let Some(src) = source_of(cap.base()) else {
            // Unknown target (kernel or dead region): clear the tag.
            f.clear_tag(off);
            stats.cleared += 1;
            continue;
        };
        let delta = child.base.0 as i64 - src.base.0 as i64;
        match cap.rebase(delta, child_root) {
            Ok(new_cap) => {
                f.replace_cap(off, &new_cap);
                stats.relocated += 1;
            }
            Err(_) => {
                f.clear_tag(off);
                stats.cleared += 1;
            }
        }
    }
    stats
}

/// Simulated cost of a relocation pass with the given statistics.
///
/// `tags_load × words + granule_check × inspected + cap_relocate × fixed`:
/// under the naive sweep `words` is 0 and `inspected` is 256; under the
/// tag-summary fast path `words` is 4 and `inspected` is the tagged count.
pub fn reloc_cost(cost: &CostModel, stats: &RelocStats) -> f64 {
    cost.tags_load * stats.tag_words_loaded as f64
        + cost.granule_check * stats.granules_scanned as f64
        + cost.cap_relocate * (stats.relocated + stats.cleared) as f64
}

/// Whether fork must copy this segment *eagerly* (paper §3.5: allocator
/// metadata and GOT pages are proactively copied and updated during fork).
pub fn eager_at_fork(seg: Segment) -> bool {
    matches!(seg, Segment::Got | Segment::HeapMeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufork_cheri::Perms;
    use ufork_vmem::VirtAddr;

    fn region(base: u64, len: u64) -> Region {
        Region {
            base: VirtAddr(base),
            len,
        }
    }

    #[test]
    fn relocates_parent_caps_and_keeps_child_caps() {
        let mut pm = PhysMem::new(4);
        let f = pm.alloc_frame().unwrap();
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());

        let stale = Capability::new_root(0x10_4000, 0x100, Perms::data());
        let fine = Capability::new_root(0x90_2000, 0x40, Perms::data());
        pm.store_cap(f, 0, &stale).unwrap();
        pm.store_cap(f, 16, &fine).unwrap();

        let src = |a: u64| {
            if a >= parent.base.0 && a < parent.base.0 + parent.len {
                Some(parent)
            } else {
                None
            }
        };
        let stats = relocate_frame(&mut pm, f, child, &child_root, &src, ScanMode::TagSummary);
        assert_eq!(stats.relocated, 1);
        assert_eq!(stats.cleared, 0);
        // Fast path: only the two tagged granules were inspected.
        assert_eq!(stats.granules_scanned, 2);
        assert_eq!(stats.granules_skipped, 254);
        assert_eq!(stats.tag_words_loaded, 4);

        let moved = pm.load_cap(f, 0).unwrap().unwrap();
        assert_eq!(moved.base(), 0x90_4000);
        assert!(moved.confined_to(child.base.0, child.len));
        assert_eq!(pm.load_cap(f, 16).unwrap().unwrap(), fine);
    }

    #[test]
    fn naive_mode_charges_full_sweep() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        let stale = Capability::new_root(0x10_4000, 0x100, Perms::data());
        pm.store_cap(f, 0, &stale).unwrap();
        let stats = relocate_frame(
            &mut pm,
            f,
            child,
            &child_root,
            &|_| Some(parent),
            ScanMode::Naive,
        );
        assert_eq!(stats.granules_scanned, 256);
        assert_eq!(stats.granules_skipped, 0);
        assert_eq!(stats.tag_words_loaded, 0);
        assert_eq!(stats.relocated, 1);
    }

    #[test]
    fn untagged_page_is_skipped_entirely() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        let stats = relocate_frame(
            &mut pm,
            f,
            child,
            &child_root,
            &|_| panic!("no lookup on an untagged page"),
            ScanMode::TagSummary,
        );
        assert_eq!(stats.granules_scanned, 0);
        assert_eq!(stats.granules_skipped, 256);
        assert_eq!(stats.tag_words_loaded, 4);
        assert_eq!(stats.relocated + stats.cleared, 0);
    }

    #[test]
    fn unknown_targets_get_cleared() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        let kernel_ptr = Capability::new_root(0xffff_0000_0000, 0x1000, Perms::kernel());
        pm.store_cap(f, 32, &kernel_ptr).unwrap();
        let stats = relocate_frame(
            &mut pm,
            f,
            child,
            &child_root,
            &|_| None,
            ScanMode::TagSummary,
        );
        assert_eq!(stats.cleared, 1);
        assert_eq!(pm.load_cap(f, 32).unwrap(), None);
    }

    #[test]
    fn bounds_clamped_to_child_region() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x8000); // smaller child region
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        // Cap spanning the whole parent region.
        let wide = Capability::new_root(parent.base.0, parent.len, Perms::data());
        pm.store_cap(f, 0, &wide).unwrap();
        relocate_frame(
            &mut pm,
            f,
            child,
            &child_root,
            &|_| Some(parent),
            ScanMode::TagSummary,
        );
        let moved = pm.load_cap(f, 0).unwrap().unwrap();
        assert!(moved.confined_to(child.base.0, child.len));
        assert_eq!(moved.top(), child.base.0 + child.len);
    }

    #[test]
    fn both_modes_produce_identical_frames() {
        let parent = region(0x10_0000, 0x1_0000);
        let child = region(0x90_0000, 0x1_0000);
        let child_root = Capability::new_root(child.base.0, child.len, Perms::data());
        let src = |a: u64| {
            if a >= parent.base.0 && a < parent.base.0 + parent.len {
                Some(parent)
            } else {
                None
            }
        };
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        for (i, g) in [3u64, 17, 64, 200].iter().enumerate() {
            let cap = Capability::new_root(parent.base.0 + (i as u64) * 0x100, 0x40, Perms::data());
            pm.store_cap(a, g * 16, &cap).unwrap();
        }
        pm.store_cap(
            a,
            100 * 16,
            &Capability::new_root(0xdead_0000, 8, Perms::data()),
        )
        .unwrap();
        pm.copy_frame(a, b).unwrap();

        let s_naive = relocate_frame(&mut pm, a, child, &child_root, &src, ScanMode::Naive);
        let s_fast = relocate_frame(&mut pm, b, child, &child_root, &src, ScanMode::TagSummary);
        assert_eq!(s_naive.relocated, s_fast.relocated);
        assert_eq!(s_naive.cleared, s_fast.cleared);
        let fa = pm.frame(a).unwrap();
        let fb = pm.frame(b).unwrap();
        assert_eq!(fa.data(), fb.data());
        assert_eq!(fa.tag_words(), fb.tag_words());
        assert_eq!(
            fa.tagged_granules().collect::<Vec<_>>(),
            fb.tagged_granules().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cost_accounts_scan_and_fixups() {
        let cost = CostModel::morello();
        // Naive: full sweep, no bulk reads.
        let naive = RelocStats {
            granules_scanned: 256,
            relocated: 3,
            cleared: 1,
            ..RelocStats::default()
        };
        let c = reloc_cost(&cost, &naive);
        assert!((c - (256.0 * cost.granule_check + 4.0 * cost.cap_relocate)).abs() < 1e-9);
        // Fast path: 4 bulk reads + 4 tagged inspections.
        let fast = RelocStats {
            granules_scanned: 4,
            granules_skipped: 252,
            tag_words_loaded: 4,
            relocated: 3,
            cleared: 1,
        };
        let c = reloc_cost(&cost, &fast);
        let expect = 4.0 * cost.tags_load + 4.0 * cost.granule_check + 4.0 * cost.cap_relocate;
        assert!((c - expect).abs() < 1e-9);
        // The fast path is cheaper than the naive sweep on sparse pages…
        assert!(reloc_cost(&cost, &fast) < reloc_cost(&cost, &naive));
        // …and matches `CostModel::page_scan_summary` for the scan part.
        let scan_only = RelocStats {
            granules_scanned: 4,
            granules_skipped: 252,
            tag_words_loaded: 4,
            ..RelocStats::default()
        };
        assert!((reloc_cost(&cost, &scan_only) - cost.page_scan_summary(4)).abs() < 1e-9);
    }

    #[test]
    fn eager_segments() {
        assert!(eager_at_fork(Segment::Got));
        assert!(eager_at_fork(Segment::HeapMeta));
        assert!(!eager_at_fork(Segment::HeapArena));
        assert!(!eager_at_fork(Segment::Text));
        assert!(!eager_at_fork(Segment::Stack));
    }
}
