//! Regression: forking with a fragmented talloc free list.
//!
//! The allocator's block descriptors each hold a *tagged capability* to
//! their block; the free list threads through those descriptors. After
//! fork, the child's copies of these capabilities must have been
//! relocated into the child's region — a stale parent-region pointer in
//! the free list would hand the child memory it must not touch on its
//! next `malloc`. The fragmentation (freeing every other block) makes
//! the free list long and non-trivial before the fork.

use ufork::{ProcLayout, UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};

const PARENT: Pid = Pid(1);
const CHILD: Pid = Pid(2);

/// Reads a u64 from a μprocess' memory through its own data root.
fn read_u64(os: &mut UforkOs, ctx: &mut Ctx, pid: Pid, va: u64) -> u64 {
    let root = os.reg(pid, 0).expect("data root");
    let at = root.with_addr(va).expect("cursor");
    let mut b = [0u8; 8];
    os.load(ctx, pid, &at, &mut b).expect("meta read");
    u64::from_le_bytes(b)
}

/// Loads the tagged block capability of descriptor `i`, if any.
fn desc_cap(
    os: &mut UforkOs,
    ctx: &mut Ctx,
    pid: Pid,
    meta_base: u64,
    i: u64,
) -> Option<Capability> {
    let root = os.reg(pid, 0).expect("data root");
    let at = root.with_addr(meta_base + 64 + i * 32).expect("cursor");
    os.load_cap(ctx, pid, &at).expect("desc load")
}

fn fragmented_fork(strategy: CopyStrategy) {
    let image = ImageSpec::hello_world();
    let layout = ProcLayout::for_image(&image);
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        strategy,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, PARENT, &image).expect("spawn");

    // Eight blocks, every other one freed: a four-deep free list.
    let caps: Vec<Capability> = (0..8)
        .map(|i| {
            let c = os.malloc(&mut ctx, PARENT, 512).expect("malloc");
            os.store(&mut ctx, PARENT, &c, &[0x11 * (i as u8 + 1); 16])
                .expect("write");
            c
        })
        .collect();
    for i in [1usize, 3, 5, 7] {
        os.mfree(&mut ctx, PARENT, &caps[i]).expect("free");
    }

    os.fork(&mut ctx, PARENT, CHILD).expect("fork");

    let (p_base, p_len) = os.region_of(PARENT).expect("parent region");
    let (c_base, c_len) = os.region_of(CHILD).expect("child region");
    assert_ne!(p_base, c_base, "child must live elsewhere in the SAS");

    // Every block capability in the child's descriptor table — used
    // blocks and free-list entries alike — must point into the child's
    // region: no cross-region pointers survive the fork.
    let c_meta = c_base + layout.heap_meta.0;
    let blocks_used = read_u64(&mut os, &mut ctx, CHILD, c_meta + 16);
    assert!(blocks_used >= 8, "prelude made at least 8 blocks");
    let mut seen = 0;
    for i in 0..blocks_used {
        if let Some(cap) = desc_cap(&mut os, &mut ctx, CHILD, c_meta, i) {
            assert!(
                cap.confined_to(c_base, c_len),
                "{strategy:?}: child descriptor {i} points outside the child \
                 region: cap base {:#x}, child region [{c_base:#x}, +{c_len:#x})",
                cap.base()
            );
            seen += 1;
        }
    }
    assert!(seen >= 8, "descriptors lost their capabilities in the copy");

    // The parent's descriptors still point into the parent's region.
    let p_meta = p_base + layout.heap_meta.0;
    for i in 0..read_u64(&mut os, &mut ctx, PARENT, p_meta + 16) {
        if let Some(cap) = desc_cap(&mut os, &mut ctx, PARENT, p_meta, i) {
            assert!(cap.confined_to(p_base, p_len), "parent descriptor moved");
        }
    }

    // The child's next mallocs reuse the relocated free list: they must
    // come back confined to the child and writable.
    for _ in 0..4 {
        let c = os.malloc(&mut ctx, CHILD, 512).expect("child malloc");
        assert!(
            c.confined_to(c_base, c_len),
            "{strategy:?}: child malloc returned a parent-region block"
        );
        os.store(&mut ctx, CHILD, &c, &[0xCC; 16])
            .expect("child write");
    }
    // Parent's view is untouched by the child's allocations.
    for (i, c) in caps.iter().enumerate() {
        if i % 2 == 0 {
            let mut b = [0u8; 16];
            os.load(&mut ctx, PARENT, c, &mut b).expect("parent read");
            assert_eq!(b, [0x11 * (i as u8 + 1); 16], "parent block clobbered");
        }
    }
    assert_eq!(os.audit_isolation(PARENT), 0);
    assert_eq!(os.audit_isolation(CHILD), 0);

    os.destroy(&mut ctx, CHILD);
    os.destroy(&mut ctx, PARENT);
    assert_eq!(os.allocated_frames(), 0, "teardown leaked frames");
}

#[test]
fn fragmented_free_list_relocates_full() {
    fragmented_fork(CopyStrategy::Full);
}

#[test]
fn fragmented_free_list_relocates_coa() {
    fragmented_fork(CopyStrategy::CoA);
}

#[test]
fn fragmented_free_list_relocates_copa() {
    fragmented_fork(CopyStrategy::CoPA);
}
