//! Property tests of fork semantics: arbitrary parent/child write
//! interleavings never leak across the fork boundary, under any strategy.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use ufork::{UforkConfig, UforkOs, WalkMode};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};
use ufork_mem::PAGE_SIZE;
use ufork_testkit::{forall, shrink_vec, PropConfig, Rng};

const PARENT: Pid = Pid(1);
const CHILD: Pid = Pid(2);
const CELLS: u64 = 24;

fn cfg() -> PropConfig {
    PropConfig::from_env(96)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    ParentWrite(u8, u64),
    ChildWrite(u8, u64),
    ParentRead(u8),
    ChildRead(u8),
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::ParentWrite(rng.next_u64() as u8, rng.next_u64()),
        1 => Op::ChildWrite(rng.next_u64() as u8, rng.next_u64()),
        2 => Op::ParentRead(rng.next_u64() as u8),
        _ => Op::ChildRead(rng.next_u64() as u8),
    }
}

fn strategy_of(ix: u8) -> CopyStrategy {
    match ix % 3 {
        0 => CopyStrategy::Full,
        1 => CopyStrategy::CoA,
        _ => CopyStrategy::CoPA,
    }
}

/// The cells live in one shared array in the parent; each cell is a u64
/// at a distinct offset. Pointers to the array hop through a capability
/// cell so relocation is exercised too.
fn cell_addr(arr: &Capability, i: u8) -> Capability {
    let idx = u64::from(i) % CELLS;
    // Spread cells across pages (512 B apart) so strategies differ.
    arr.with_addr(arr.base() + idx * 512).expect("in bounds")
}

#[test]
fn interleaved_writes_never_leak() {
    forall(
        "interleaved_writes_never_leak",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            let n = rng.range(1, 48) as usize;
            let ops: Vec<Op> = (0..n).map(|_| gen_op(rng)).collect();
            (strategy_ix, ops)
        },
        |(ix, ops)| shrink_vec(ops).into_iter().map(|o| (*ix, o)).collect(),
        |(strategy_ix, ops)| {
            let strategy = strategy_of(*strategy_ix);
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world())
                .unwrap();
            let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
            // Initialize cells to i.
            for i in 0..CELLS {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + i * 512).unwrap(),
                    &i.to_le_bytes(),
                )
                .unwrap();
            }
            // A pointer to the array stored in memory (forces relocation)
            // and in a register.
            let slot = os.malloc(&mut ctx, PARENT, 16).unwrap();
            os.store_cap(&mut ctx, PARENT, &slot, &arr).unwrap();
            os.set_reg(PARENT, 4, slot).unwrap();

            os.fork(&mut ctx, PARENT, CHILD).unwrap();

            // Shadow models.
            let mut shadow_p: Vec<u64> = (0..CELLS).collect();
            let mut shadow_c = shadow_p.clone();

            // Resolve each side's array pointer through its own memory.
            let p_slot = os.reg(PARENT, 4).unwrap();
            let p_arr = os
                .load_cap(&mut ctx, PARENT, &p_slot.with_addr(p_slot.base()).unwrap())
                .unwrap()
                .expect("parent array ptr");
            let c_slot = os.reg(CHILD, 4).unwrap();
            let c_arr = os
                .load_cap(&mut ctx, CHILD, &c_slot.with_addr(c_slot.base()).unwrap())
                .unwrap()
                .expect("child array ptr");
            if p_arr.base() == c_arr.base() {
                return Err("child pointer must be relocated".into());
            }

            for o in ops {
                match *o {
                    Op::ParentWrite(i, v) => {
                        os.store(&mut ctx, PARENT, &cell_addr(&p_arr, i), &v.to_le_bytes())
                            .unwrap();
                        shadow_p[(u64::from(i) % CELLS) as usize] = v;
                    }
                    Op::ChildWrite(i, v) => {
                        os.store(&mut ctx, CHILD, &cell_addr(&c_arr, i), &v.to_le_bytes())
                            .unwrap();
                        shadow_c[(u64::from(i) % CELLS) as usize] = v;
                    }
                    Op::ParentRead(i) => {
                        let mut b = [0u8; 8];
                        os.load(&mut ctx, PARENT, &cell_addr(&p_arr, i), &mut b)
                            .unwrap();
                        let want = shadow_p[(u64::from(i) % CELLS) as usize];
                        if u64::from_le_bytes(b) != want {
                            return Err(format!("{strategy:?}: parent read diverged"));
                        }
                    }
                    Op::ChildRead(i) => {
                        let mut b = [0u8; 8];
                        os.load(&mut ctx, CHILD, &cell_addr(&c_arr, i), &mut b)
                            .unwrap();
                        let want = shadow_c[(u64::from(i) % CELLS) as usize];
                        if u64::from_le_bytes(b) != want {
                            return Err(format!("{strategy:?}: child read diverged"));
                        }
                    }
                }
            }
            // Final sweep: both views must equal their shadows, and
            // isolation must audit clean.
            for i in 0..CELLS {
                let mut b = [0u8; 8];
                os.load(
                    &mut ctx,
                    PARENT,
                    &p_arr.with_addr(p_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_p[i as usize] {
                    return Err(format!("{strategy:?}: parent cell {i} diverged at sweep"));
                }
                os.load(
                    &mut ctx,
                    CHILD,
                    &c_arr.with_addr(c_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_c[i as usize] {
                    return Err(format!("{strategy:?}: child cell {i} diverged at sweep"));
                }
            }
            if os.audit_isolation(PARENT) != 0 || os.audit_isolation(CHILD) != 0 {
                return Err(format!("{strategy:?}: isolation audit found violations"));
            }
            if ctx.counters.isolation_violations != 0 {
                return Err(format!("{strategy:?}: isolation violations counted"));
            }
            Ok(())
        },
    );
}

/// Observational equivalence: after fork, the child's full view of the
/// array equals the parent's at-fork view under EVERY strategy — byte for
/// byte — no matter which cells the parent dirtied first.
#[test]
fn strategies_observationally_equivalent() {
    forall(
        "strategies_observationally_equivalent",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            let n = rng.index(16);
            let dirty: Vec<(u8, u64)> = (0..n)
                .map(|_| (rng.next_u64() as u8, rng.next_u64()))
                .collect();
            (strategy_ix, dirty)
        },
        |(ix, dirty)| shrink_vec(dirty).into_iter().map(|d| (*ix, d)).collect(),
        |(strategy_ix, parent_dirty)| {
            let strategy = strategy_of(*strategy_ix);
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world())
                .unwrap();
            let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
            for i in 0..CELLS {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + i * 512).unwrap(),
                    &(0xAB00 + i).to_le_bytes(),
                )
                .unwrap();
            }
            os.set_reg(PARENT, 4, arr).unwrap();
            os.fork(&mut ctx, PARENT, CHILD).unwrap();
            // Parent dirties some cells AFTER the fork.
            for (i, v) in parent_dirty {
                os.store(&mut ctx, PARENT, &cell_addr(&arr, *i), &v.to_le_bytes())
                    .unwrap();
            }
            // The child still sees the at-fork snapshot.
            let c_arr = os.reg(CHILD, 4).unwrap();
            for i in 0..CELLS {
                let mut b = [0u8; 8];
                os.load(
                    &mut ctx,
                    CHILD,
                    &c_arr.with_addr(c_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != 0xAB00 + i {
                    return Err(format!("{strategy:?} cell {i}: child lost the snapshot"));
                }
            }
            Ok(())
        },
    );
}

/// One random heap-population action for the parallel/serial differential:
/// either plain data or a capability pointing at another heap slot (so the
/// relocation scan has tagged granules to fix up across chunks).
#[derive(Clone, Copy, Debug)]
enum Seed {
    Data(u16, u64),
    CapTo(u16, u16),
}

/// What a heap slot looks like from the child's point of view, normalized
/// against the child's own array base (the *anchor*) so the comparison is
/// position-independent — the same idea the differential oracle uses.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    Data(u64),
    Cap { addr: u64, base: u64, len: u64 },
}

/// A child-side heap fingerprint: every touched `(offset, slot)` pair plus
/// the `(pages_copied, caps_relocated)` counters from the fork itself.
type Fingerprint = (Vec<(u64, Slot)>, u64, u64);

/// Spawns a parent, populates a `pages`-page heap from `seeds`, forks under
/// `walk`, and fingerprints the child's view of every touched slot plus the
/// fork-path counters that must not depend on the walk mode.
fn fork_fingerprint(
    walk: WalkMode,
    strategy: CopyStrategy,
    pages: u64,
    seeds: &[Seed],
) -> Result<Fingerprint, String> {
    let slots = pages * (PAGE_SIZE / 64);
    let off = |s: u16| (u64::from(s) % slots) * 64;
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 64,
        strategy,
        walk,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let image = ImageSpec::with_heap("par-diff", pages * PAGE_SIZE + 64 * 1024);
    os.spawn(&mut ctx, PARENT, &image).unwrap();
    let arr = os.malloc(&mut ctx, PARENT, pages * PAGE_SIZE).unwrap();
    let mut touched: Vec<u64> = Vec::new();
    for s in seeds {
        match *s {
            Seed::Data(i, v) => {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + off(i)).unwrap(),
                    &v.to_le_bytes(),
                )
                .unwrap();
                touched.push(off(i));
            }
            Seed::CapTo(i, t) => {
                let target = arr.with_addr(arr.base() + off(t)).unwrap();
                os.store_cap(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + off(i)).unwrap(),
                    &target,
                )
                .unwrap();
                touched.push(off(i));
            }
        }
    }
    touched.sort_unstable();
    touched.dedup();
    os.set_reg(PARENT, 4, arr).unwrap();

    let before = ctx.counters;
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    // A pipelined fork commits with the copy still outstanding; drain
    // the background window so fingerprints always compare
    // completed-copy states. A no-op for the other walk modes.
    os.pipeline_drain(&mut ctx, CHILD).unwrap();
    let during = ctx.counters.since(&before);

    let c_arr = os.reg(CHILD, 4).unwrap();
    let anchor = c_arr.base();
    if anchor == arr.base() {
        return Err(format!("{walk:?}: child array was not relocated"));
    }
    let mut prints = Vec::with_capacity(touched.len());
    for o in &touched {
        let at = c_arr.with_addr(anchor + o).unwrap();
        let print = match os.load_cap(&mut ctx, CHILD, &at).unwrap() {
            Some(c) => Slot::Cap {
                addr: c.addr() - anchor,
                base: c.base() - anchor,
                len: c.len(),
            },
            None => {
                let mut b = [0u8; 8];
                os.load(&mut ctx, CHILD, &at, &mut b).unwrap();
                Slot::Data(u64::from_le_bytes(b))
            }
        };
        prints.push((*o, print));
    }
    if os.audit_kernel() != (0, 0) {
        return Err(format!("{walk:?}: kernel audit found leaks"));
    }
    if os.audit_isolation(PARENT) != 0 || os.audit_isolation(CHILD) != 0 {
        return Err(format!("{walk:?}: isolation audit found violations"));
    }
    Ok((prints, during.pages_copied, during.caps_relocated))
}

/// The parallel walk is an *optimization*, not a semantic change: for every
/// worker count the child heap and its capability map must be bit-identical
/// to what the serial walk produces (anchor-normalized), and the
/// walk-independent counters (pages copied, caps relocated) must agree.
#[test]
fn parallel_walk_matches_serial_bit_identical() {
    forall(
        "parallel_walk_matches_serial_bit_identical",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            // Past 32 pages the parallel walk splits into multiple chunks;
            // keep a spread of sub-chunk and multi-chunk heaps.
            let pages = rng.range(1, 72);
            let n = rng.range(1, 48) as usize;
            let seeds: Vec<Seed> = (0..n)
                .map(|_| {
                    if rng.chance(1, 2) {
                        Seed::CapTo(rng.next_u64() as u16, rng.next_u64() as u16)
                    } else {
                        Seed::Data(rng.next_u64() as u16, rng.next_u64())
                    }
                })
                .collect();
            (strategy_ix, pages, seeds)
        },
        |(ix, pages, seeds)| {
            shrink_vec(seeds)
                .into_iter()
                .map(|s| (*ix, *pages, s))
                .collect()
        },
        |(strategy_ix, pages, seeds)| {
            let strategy = strategy_of(*strategy_ix);
            let serial = fork_fingerprint(WalkMode::Serial, strategy, *pages, seeds)?;
            for n in [1usize, 2, 4, 8] {
                let par = fork_fingerprint(WalkMode::Parallel(n), strategy, *pages, seeds)?;
                if par != serial {
                    return Err(format!(
                        "{strategy:?}, {pages} pages: Parallel({n}) diverged from Serial:\n\
                         serial: {serial:?}\n\
                         par:    {par:?}"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Pipelined fork is an optimization with a *window*, not a semantic
/// change: once the background copy drains, the child heap and its
/// capability map must be bit-identical to what the serial walk produces
/// (anchor-normalized), and the walk-independent totals (pages copied,
/// caps relocated) must agree — the pipeline moved the work, it didn't
/// change it.
#[test]
fn pipelined_walk_matches_serial_after_drain() {
    forall(
        "pipelined_walk_matches_serial_after_drain",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            let pages = rng.range(1, 72);
            let n = rng.range(1, 48) as usize;
            let seeds: Vec<Seed> = (0..n)
                .map(|_| {
                    if rng.chance(1, 2) {
                        Seed::CapTo(rng.next_u64() as u16, rng.next_u64() as u16)
                    } else {
                        Seed::Data(rng.next_u64() as u16, rng.next_u64())
                    }
                })
                .collect();
            (strategy_ix, pages, seeds)
        },
        |(ix, pages, seeds)| {
            shrink_vec(seeds)
                .into_iter()
                .map(|s| (*ix, *pages, s))
                .collect()
        },
        |(strategy_ix, pages, seeds)| {
            let strategy = strategy_of(*strategy_ix);
            let serial = fork_fingerprint(WalkMode::Serial, strategy, *pages, seeds)?;
            let piped = fork_fingerprint(WalkMode::Pipelined, strategy, *pages, seeds)?;
            if piped != serial {
                return Err(format!(
                    "{strategy:?}, {pages} pages: Pipelined diverged from Serial:\n\
                     serial: {serial:?}\n\
                     piped:  {piped:?}"
                ));
            }
            Ok(())
        },
    );
}

/// The hard pipelined case: the child (and parent) run *inside* the
/// background-copy window. Child accesses to uncopied pages must jump
/// the copy queue and see the fork-time snapshot; parent writes must
/// divert copy-on-write without perturbing it; interleaved background
/// chunk steps must not disturb either side. Every interleaving of
/// those three event sources must converge — after the final drain — to
/// exactly the serial fork's outcome.
#[test]
fn child_touching_pages_during_copy_sees_snapshot() {
    const PAGES: u64 = 96; // 3 chunks of background window
    #[derive(Clone, Copy, Debug)]
    enum Ev {
        ParentWrite(u8, u64),
        ChildWrite(u8, u64),
        ChildRead(u8),
        /// One background copy-engine step (one chunk).
        Pump,
    }
    forall(
        "child_touching_pages_during_copy_sees_snapshot",
        &cfg(),
        |rng| {
            let n = rng.range(4, 40) as usize;
            let evs: Vec<Ev> = (0..n)
                .map(|_| match rng.below(4) {
                    0 => Ev::ParentWrite(rng.next_u64() as u8, rng.next_u64()),
                    1 => Ev::ChildWrite(rng.next_u64() as u8, rng.next_u64()),
                    2 => Ev::ChildRead(rng.next_u64() as u8),
                    _ => Ev::Pump,
                })
                .collect();
            evs
        },
        |evs| shrink_vec(evs),
        |evs| {
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy: CopyStrategy::Full,
                walk: WalkMode::Pipelined,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            let image = ImageSpec::with_heap("pipe-window", PAGES * PAGE_SIZE + 64 * 1024);
            os.spawn(&mut ctx, PARENT, &image).unwrap();
            let arr = os.malloc(&mut ctx, PARENT, PAGES * PAGE_SIZE).unwrap();
            // One u64 cell + one capability (for relocation coverage)
            // per page, so every chunk carries tagged granules.
            for p in 0..PAGES {
                let at = arr.with_addr(arr.base() + p * PAGE_SIZE).unwrap();
                os.store(&mut ctx, PARENT, &at, &(0xBEEF + p).to_le_bytes())
                    .unwrap();
                let slot = arr.with_addr(arr.base() + p * PAGE_SIZE + 64).unwrap();
                os.store_cap(&mut ctx, PARENT, &slot, &at).unwrap();
            }
            os.set_reg(PARENT, 4, arr).unwrap();
            os.fork(&mut ctx, PARENT, CHILD).unwrap();
            if os.pipeline_pending_pages(CHILD) == 0 {
                return Err("pipelined Full fork left no background window".into());
            }
            let c_arr = os.reg(CHILD, 4).unwrap();
            let anchor = c_arr.base();

            let mut shadow_p: Vec<u64> = (0..PAGES).map(|p| 0xBEEF + p).collect();
            let mut shadow_c = shadow_p.clone();
            let cell = |root: &Capability, base: u64, i: u8| {
                let p = u64::from(i) % PAGES;
                root.with_addr(base + p * PAGE_SIZE).unwrap()
            };
            for ev in evs {
                match *ev {
                    Ev::ParentWrite(i, v) => {
                        os.store(
                            &mut ctx,
                            PARENT,
                            &cell(&arr, arr.base(), i),
                            &v.to_le_bytes(),
                        )
                        .unwrap();
                        shadow_p[(u64::from(i) % PAGES) as usize] = v;
                    }
                    Ev::ChildWrite(i, v) => {
                        os.store(&mut ctx, CHILD, &cell(&c_arr, anchor, i), &v.to_le_bytes())
                            .unwrap();
                        shadow_c[(u64::from(i) % PAGES) as usize] = v;
                    }
                    Ev::ChildRead(i) => {
                        let mut b = [0u8; 8];
                        os.load(&mut ctx, CHILD, &cell(&c_arr, anchor, i), &mut b)
                            .unwrap();
                        let want = shadow_c[(u64::from(i) % PAGES) as usize];
                        if u64::from_le_bytes(b) != want {
                            return Err(format!(
                                "child read {} mid-window, wanted {want}",
                                u64::from_le_bytes(b)
                            ));
                        }
                    }
                    Ev::Pump => {
                        os.pipeline_copy_next(&mut ctx, CHILD).unwrap();
                    }
                }
            }
            os.pipeline_drain(&mut ctx, CHILD).unwrap();
            if os.pipeline_pending_pages(CHILD) != 0 {
                return Err("window still open after drain".into());
            }
            // Converged state: both sides match their shadows, every
            // child capability was relocated into the child's region.
            for p in 0..PAGES {
                let mut b = [0u8; 8];
                os.load(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + p * PAGE_SIZE).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_p[p as usize] {
                    return Err(format!("parent page {p} diverged after drain"));
                }
                os.load(
                    &mut ctx,
                    CHILD,
                    &c_arr.with_addr(anchor + p * PAGE_SIZE).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_c[p as usize] {
                    return Err(format!("child page {p} diverged after drain"));
                }
                let slot = c_arr.with_addr(anchor + p * PAGE_SIZE + 64).unwrap();
                let cap = os
                    .load_cap(&mut ctx, CHILD, &slot)
                    .unwrap()
                    .ok_or_else(|| format!("child page {p}: relocated cap lost its tag"))?;
                if cap.addr() != anchor + p * PAGE_SIZE {
                    return Err(format!("child page {p}: cap not relocated to child region"));
                }
            }
            if os.audit_kernel() != (0, 0) {
                return Err("kernel audit found leaks after window closed".into());
            }
            if os.audit_isolation(PARENT) != 0 || os.audit_isolation(CHILD) != 0 {
                return Err("isolation audit found violations".into());
            }
            Ok(())
        },
    );
}

/// Deterministic shard-allocation failure anywhere inside the parallel
/// fork walk must be absorbed by the journal: the fork rolls back, runs a
/// reclaim pass, retries, and succeeds — with no leaked frames, no
/// dangling PTEs, and a parent and child that both work.
#[test]
fn shard_alloc_failure_mid_walk_leaks_nothing() {
    const PAGES: u64 = 40; // > CHUNK_PAGES, so the walk is multi-chunk
    let setup = |walk: WalkMode| {
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: 64,
            strategy: CopyStrategy::Full,
            walk,
            ..UforkConfig::default()
        });
        let mut ctx = Ctx::new();
        let image = ImageSpec::with_heap("unwind", PAGES * PAGE_SIZE + 64 * 1024);
        os.spawn(&mut ctx, PARENT, &image).unwrap();
        let arr = os.malloc(&mut ctx, PARENT, PAGES * PAGE_SIZE).unwrap();
        for p in 0..PAGES {
            let at = arr.with_addr(arr.base() + p * PAGE_SIZE).unwrap();
            os.store(&mut ctx, PARENT, &at, &(0xF00D + p).to_le_bytes())
                .unwrap();
            let slot = arr.with_addr(arr.base() + p * PAGE_SIZE + 64).unwrap();
            os.store_cap(&mut ctx, PARENT, &slot, &at).unwrap();
        }
        os.set_reg(PARENT, 4, arr).unwrap();
        (os, ctx, arr)
    };
    forall(
        "shard_alloc_failure_mid_walk_leaks_nothing",
        &cfg(),
        |rng| {
            let workers = *rng.pick(&[1usize, 2, 4, 8]);
            let frac = rng.below(1000);
            (workers, frac)
        },
        ufork_testkit::no_shrink,
        |(workers, frac)| {
            let walk = WalkMode::Parallel(*workers);
            // Dry run: count how many allocation attempts a successful
            // fork makes, so the injected failure lands mid-walk.
            let (mut os, mut ctx, _) = setup(walk);
            let before = os.frame_alloc_attempts();
            os.fork(&mut ctx, PARENT, CHILD).unwrap();
            let span = os.frame_alloc_attempts() - before;
            if span == 0 {
                return Err("Full-strategy fork made no allocations".into());
            }

            // Real run: same deterministic setup, failure injected at a
            // fraction of the way through the fork's allocations.
            let (mut os, mut ctx, arr) = setup(walk);
            os.inject_frame_alloc_failure(before + frac * span / 1000);
            // The journal rolls the partial fork back, reclaims, and the
            // retry inside fork() succeeds (the injection is one-shot).
            os.fork(&mut ctx, PARENT, CHILD)
                .map_err(|e| format!("injected alloc failure not absorbed: {e:?}"))?;
            if ctx.counters.fork_rollbacks < 1 {
                return Err("absorbed failure did not record a rollback".into());
            }
            if ctx.counters.reclaim_inline < 1 {
                return Err("absorbed failure did not run a reclaim pass".into());
            }
            if os.audit_kernel() != (0, 0) {
                return Err("kernel audit found dangling PTEs or frames".into());
            }
            // The parent is untouched...
            let mut b = [0u8; 8];
            os.load(
                &mut ctx,
                PARENT,
                &arr.with_addr(arr.base()).unwrap(),
                &mut b,
            )
            .unwrap();
            if u64::from_le_bytes(b) != 0xF00D {
                return Err("parent heap corrupted by rolled-back walk".into());
            }
            // ...and the child from the retried fork is complete.
            let c_arr = os.reg(CHILD, 4).unwrap();
            os.load(
                &mut ctx,
                CHILD,
                &c_arr.with_addr(c_arr.base()).unwrap(),
                &mut b,
            )
            .unwrap();
            if u64::from_le_bytes(b) != 0xF00D {
                return Err("child heap wrong after absorbed failure".into());
            }
            Ok(())
        },
    );
}

/// Generation-bit hygiene: a fork under `track_dirty` clears every
/// soft-dirty bit exactly once — right after any fork the parent has
/// zero dirty PTEs, each batch of post-fork stores raises exactly one
/// bit per distinct page, the next fork copies exactly those pages and
/// clears the bits again, and a fork with nothing written since copies
/// nothing at all.
#[test]
fn dirty_bits_cleared_exactly_once_per_fork() {
    const PAGES: u64 = 64;
    forall(
        "dirty_bits_cleared_exactly_once_per_fork",
        &cfg(),
        |rng| {
            let walk = *rng.pick(&[WalkMode::Serial, WalkMode::Parallel(4), WalkMode::Pipelined]);
            let n = rng.range(0, 24) as usize;
            let writes: Vec<(u8, u64)> = (0..n)
                .map(|_| (rng.next_u64() as u8, rng.next_u64()))
                .collect();
            (walk, writes)
        },
        |(walk, writes)| shrink_vec(writes).into_iter().map(|w| (*walk, w)).collect(),
        |(walk, writes)| {
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy: CopyStrategy::Full,
                walk: *walk,
                track_dirty: true,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            let image = ImageSpec::with_heap("gen-hygiene", PAGES * PAGE_SIZE + 64 * 1024);
            os.spawn(&mut ctx, PARENT, &image).unwrap();
            let arr = os.malloc(&mut ctx, PARENT, PAGES * PAGE_SIZE).unwrap();
            for p in 0..PAGES {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + p * PAGE_SIZE).unwrap(),
                    &p.to_le_bytes(),
                )
                .unwrap();
            }
            os.set_reg(PARENT, 4, arr).unwrap();

            os.fork(&mut ctx, PARENT, CHILD).unwrap();
            os.pipeline_drain(&mut ctx, CHILD).unwrap();
            if os.dirty_page_count(PARENT).unwrap() != 0 {
                return Err("dirty bits survived the first fork's stamp".into());
            }
            if os.fork_generation(PARENT).is_none() {
                return Err("first fork under track_dirty did not stamp a generation".into());
            }

            // Post-fork stores: exactly one dirty bit per distinct page.
            let mut pages: Vec<u64> = Vec::new();
            for (i, v) in writes {
                let p = u64::from(*i) % PAGES;
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + p * PAGE_SIZE + 8).unwrap(),
                    &v.to_le_bytes(),
                )
                .unwrap();
                if !pages.contains(&p) {
                    pages.push(p);
                }
            }
            let dirty = os.dirty_page_count(PARENT).unwrap();
            if dirty != pages.len() {
                return Err(format!(
                    "{} distinct pages written but {dirty} dirty bits set",
                    pages.len()
                ));
            }

            // The next fork copies exactly the dirty pages and clears
            // every bit again (exactly once: the count returns to zero).
            let mut fctx = Ctx::new();
            os.fork(&mut fctx, PARENT, Pid(3)).unwrap();
            os.pipeline_drain(&mut fctx, Pid(3)).unwrap();
            if fctx.counters.pages_dirty_copied != pages.len() as u64 {
                return Err(format!(
                    "second fork copied {} dirty pages, expected {}",
                    fctx.counters.pages_dirty_copied,
                    pages.len()
                ));
            }
            if fctx.counters.pages_shared_clean == 0 {
                return Err("second fork shared no clean pages".into());
            }
            if os.dirty_page_count(PARENT).unwrap() != 0 {
                return Err("dirty bits survived the second fork's stamp".into());
            }

            // Nothing written since: the third fork copies nothing.
            let mut fctx = Ctx::new();
            os.fork(&mut fctx, PARENT, Pid(4)).unwrap();
            os.pipeline_drain(&mut fctx, Pid(4)).unwrap();
            if fctx.counters.pages_dirty_copied != 0 {
                return Err(format!(
                    "idle refork still copied {} pages",
                    fctx.counters.pages_dirty_copied
                ));
            }
            if os.audit_kernel() != (0, 0) {
                return Err("kernel audit found leaks".into());
            }
            Ok(())
        },
    );
}

/// Spawns a parent, populates a heap from `seeds`, forks once (stamping
/// under `track_dirty`), applies `post` parent writes, forks again, and
/// fingerprints the *second* child — the one a `DirtySince` scope
/// builds from dirty copies plus refcount-shared clean pages.
fn refork_fingerprint(
    walk: WalkMode,
    track_dirty: bool,
    pages: u64,
    seeds: &[Seed],
    post: &[(u16, u64)],
) -> Result<Fingerprint, String> {
    let slots = pages * (PAGE_SIZE / 64);
    let off = |s: u16| (u64::from(s) % slots) * 64;
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 64,
        strategy: CopyStrategy::Full,
        walk,
        track_dirty,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    let image = ImageSpec::with_heap("dirty-diff", pages * PAGE_SIZE + 64 * 1024);
    os.spawn(&mut ctx, PARENT, &image).unwrap();
    let arr = os.malloc(&mut ctx, PARENT, pages * PAGE_SIZE).unwrap();
    let mut touched: Vec<u64> = Vec::new();
    for s in seeds {
        match *s {
            Seed::Data(i, v) => {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + off(i)).unwrap(),
                    &v.to_le_bytes(),
                )
                .unwrap();
                touched.push(off(i));
            }
            Seed::CapTo(i, t) => {
                let target = arr.with_addr(arr.base() + off(t)).unwrap();
                os.store_cap(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + off(i)).unwrap(),
                    &target,
                )
                .unwrap();
                touched.push(off(i));
            }
        }
    }
    os.set_reg(PARENT, 4, arr).unwrap();

    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    os.pipeline_drain(&mut ctx, CHILD).unwrap();
    // The write mix between the snapshots.
    for (i, v) in post {
        os.store(
            &mut ctx,
            PARENT,
            &arr.with_addr(arr.base() + off(*i)).unwrap(),
            &v.to_le_bytes(),
        )
        .unwrap();
        touched.push(off(*i));
    }
    touched.sort_unstable();
    touched.dedup();

    let before = ctx.counters;
    os.fork(&mut ctx, PARENT, Pid(3)).unwrap();
    os.pipeline_drain(&mut ctx, Pid(3)).unwrap();
    let during = ctx.counters.since(&before);

    let c_arr = os.reg(Pid(3), 4).unwrap();
    let anchor = c_arr.base();
    let mut prints = Vec::with_capacity(touched.len());
    for o in &touched {
        let at = c_arr.with_addr(anchor + o).unwrap();
        let print = match os.load_cap(&mut ctx, Pid(3), &at).unwrap() {
            Some(c) => Slot::Cap {
                addr: c.addr() - anchor,
                base: c.base() - anchor,
                len: c.len(),
            },
            None => {
                let mut b = [0u8; 8];
                os.load(&mut ctx, Pid(3), &at, &mut b).unwrap();
                Slot::Data(u64::from_le_bytes(b))
            }
        };
        prints.push((*o, print));
    }
    if os.audit_kernel() != (0, 0) {
        return Err(format!(
            "track_dirty={track_dirty}: kernel audit found leaks"
        ));
    }
    if os.audit_isolation(PARENT) != 0 || os.audit_isolation(Pid(3)) != 0 {
        return Err(format!(
            "track_dirty={track_dirty}: isolation audit found violations"
        ));
    }
    // The fork-path counters stay comparable in shape only: the scopes
    // intentionally copy different page counts, so only the heap
    // fingerprint is compared. Return zeros for the counter slots.
    let _ = during;
    Ok((prints, 0, 0))
}

/// `CopyScope::DirtySince` is an optimization, not a semantic change:
/// for every seeded heap and post-fork write mix, the second child's
/// full view (data and relocated capability map, anchor-normalized)
/// must be bit-identical whether the fork copied everything or only the
/// pages dirtied since the previous fork.
#[test]
fn dirty_scope_matches_everything_scope() {
    forall(
        "dirty_scope_matches_everything_scope",
        &cfg(),
        |rng| {
            let walk = *rng.pick(&[WalkMode::Serial, WalkMode::Parallel(4), WalkMode::Pipelined]);
            let pages = rng.range(1, 72);
            let n = rng.range(1, 32) as usize;
            let seeds: Vec<Seed> = (0..n)
                .map(|_| {
                    if rng.chance(1, 2) {
                        Seed::CapTo(rng.next_u64() as u16, rng.next_u64() as u16)
                    } else {
                        Seed::Data(rng.next_u64() as u16, rng.next_u64())
                    }
                })
                .collect();
            let m = rng.range(0, 24) as usize;
            let post: Vec<(u16, u64)> = (0..m)
                .map(|_| (rng.next_u64() as u16, rng.next_u64()))
                .collect();
            (walk, pages, seeds, post)
        },
        |(walk, pages, seeds, post)| {
            shrink_vec(post)
                .into_iter()
                .map(|p| (*walk, *pages, seeds.clone(), p))
                .collect()
        },
        |(walk, pages, seeds, post)| {
            let every = refork_fingerprint(*walk, false, *pages, seeds, post)?;
            let dirty = refork_fingerprint(*walk, true, *pages, seeds, post)?;
            if dirty != every {
                return Err(format!(
                    "{walk:?}, {pages} pages: DirtySince child diverged from Everything:\n\
                     everything: {every:?}\n\
                     dirty:      {dirty:?}"
                ));
            }
            Ok(())
        },
    );
}
