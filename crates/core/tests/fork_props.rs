//! Property tests of fork semantics: arbitrary parent/child write
//! interleavings never leak across the fork boundary, under any strategy.

use proptest::prelude::*;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};

const PARENT: Pid = Pid(1);
const CHILD: Pid = Pid(2);
const CELLS: u64 = 24;

#[derive(Clone, Copy, Debug)]
enum Op {
    ParentWrite(u8, u64),
    ChildWrite(u8, u64),
    ParentRead(u8),
    ChildRead(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(i, v)| Op::ParentWrite(i, v)),
        (any::<u8>(), any::<u64>()).prop_map(|(i, v)| Op::ChildWrite(i, v)),
        any::<u8>().prop_map(Op::ParentRead),
        any::<u8>().prop_map(Op::ChildRead),
    ]
}

fn strategy_of(ix: u8) -> CopyStrategy {
    match ix % 3 {
        0 => CopyStrategy::Full,
        1 => CopyStrategy::CoA,
        _ => CopyStrategy::CoPA,
    }
}

/// The cells live in one shared array in the parent; each cell is a u64
/// at a distinct offset. Pointers to the array hop through a capability
/// cell so relocation is exercised too.
fn cell_addr(arr: &Capability, i: u8) -> Capability {
    let idx = u64::from(i) % CELLS;
    // Spread cells across pages (512 B apart) so strategies differ.
    arr.with_addr(arr.base() + idx * 512).expect("in bounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interleaved_writes_never_leak(strategy_ix in 0u8..3, ops in proptest::collection::vec(op(), 1..48)) {
        let strategy = strategy_of(strategy_ix);
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: 64,
            strategy,
            ..UforkConfig::default()
        });
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world()).unwrap();
        let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
        // Initialize cells to i.
        for i in 0..CELLS {
            os.store(
                &mut ctx,
                PARENT,
                &arr.with_addr(arr.base() + i * 512).unwrap(),
                &i.to_le_bytes(),
            )
            .unwrap();
        }
        // A pointer to the array stored in memory (forces relocation) and
        // in a register.
        let slot = os.malloc(&mut ctx, PARENT, 16).unwrap();
        os.store_cap(&mut ctx, PARENT, &slot, &arr).unwrap();
        os.set_reg(PARENT, 4, slot).unwrap();

        os.fork(&mut ctx, PARENT, CHILD).unwrap();

        // Shadow models.
        let mut shadow_p: Vec<u64> = (0..CELLS).collect();
        let mut shadow_c = shadow_p.clone();

        // Resolve each side's array pointer through its own memory.
        let p_slot = os.reg(PARENT, 4).unwrap();
        let p_arr = os.load_cap(&mut ctx, PARENT, &p_slot.with_addr(p_slot.base()).unwrap())
            .unwrap().expect("parent array ptr");
        let c_slot = os.reg(CHILD, 4).unwrap();
        let c_arr = os.load_cap(&mut ctx, CHILD, &c_slot.with_addr(c_slot.base()).unwrap())
            .unwrap().expect("child array ptr");
        prop_assert_ne!(p_arr.base(), c_arr.base(), "child pointer must be relocated");

        for o in ops {
            match o {
                Op::ParentWrite(i, v) => {
                    os.store(&mut ctx, PARENT, &cell_addr(&p_arr, i), &v.to_le_bytes()).unwrap();
                    shadow_p[(u64::from(i) % CELLS) as usize] = v;
                }
                Op::ChildWrite(i, v) => {
                    os.store(&mut ctx, CHILD, &cell_addr(&c_arr, i), &v.to_le_bytes()).unwrap();
                    shadow_c[(u64::from(i) % CELLS) as usize] = v;
                }
                Op::ParentRead(i) => {
                    let mut b = [0u8; 8];
                    os.load(&mut ctx, PARENT, &cell_addr(&p_arr, i), &mut b).unwrap();
                    prop_assert_eq!(u64::from_le_bytes(b), shadow_p[(u64::from(i) % CELLS) as usize],
                        "{:?}: parent read diverged", strategy);
                }
                Op::ChildRead(i) => {
                    let mut b = [0u8; 8];
                    os.load(&mut ctx, CHILD, &cell_addr(&c_arr, i), &mut b).unwrap();
                    prop_assert_eq!(u64::from_le_bytes(b), shadow_c[(u64::from(i) % CELLS) as usize],
                        "{:?}: child read diverged", strategy);
                }
            }
        }
        // Final sweep: both views must equal their shadows, and isolation
        // must audit clean.
        for i in 0..CELLS {
            let mut b = [0u8; 8];
            os.load(&mut ctx, PARENT, &p_arr.with_addr(p_arr.base() + i * 512).unwrap(), &mut b).unwrap();
            prop_assert_eq!(u64::from_le_bytes(b), shadow_p[i as usize]);
            os.load(&mut ctx, CHILD, &c_arr.with_addr(c_arr.base() + i * 512).unwrap(), &mut b).unwrap();
            prop_assert_eq!(u64::from_le_bytes(b), shadow_c[i as usize]);
        }
        prop_assert_eq!(os.audit_isolation(PARENT), 0);
        prop_assert_eq!(os.audit_isolation(CHILD), 0);
        prop_assert_eq!(ctx.counters.isolation_violations, 0);
    }

    /// Observational equivalence: after fork, the child's full view of
    /// the array equals the parent's at-fork view under EVERY strategy —
    /// byte for byte — no matter which cells the parent dirtied first.
    #[test]
    fn strategies_observationally_equivalent(
        strategy_ix in 0u8..3,
        parent_dirty in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..16),
    ) {
        let strategy = strategy_of(strategy_ix);
        let mut os = UforkOs::new(UforkConfig {
            phys_mib: 64,
            strategy,
            ..UforkConfig::default()
        });
        let mut ctx = Ctx::new();
        os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world()).unwrap();
        let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
        for i in 0..CELLS {
            os.store(&mut ctx, PARENT, &arr.with_addr(arr.base() + i * 512).unwrap(),
                &(0xAB00 + i).to_le_bytes()).unwrap();
        }
        os.set_reg(PARENT, 4, arr).unwrap();
        os.fork(&mut ctx, PARENT, CHILD).unwrap();
        // Parent dirties some cells AFTER the fork.
        for (i, v) in parent_dirty {
            os.store(&mut ctx, PARENT, &cell_addr(&arr, i), &v.to_le_bytes()).unwrap();
        }
        // The child still sees the at-fork snapshot.
        let c_arr = os.reg(CHILD, 4).unwrap();
        for i in 0..CELLS {
            let mut b = [0u8; 8];
            os.load(&mut ctx, CHILD, &c_arr.with_addr(c_arr.base() + i * 512).unwrap(), &mut b).unwrap();
            prop_assert_eq!(u64::from_le_bytes(b), 0xAB00 + i, "{:?} cell {}", strategy, i);
        }
    }
}
