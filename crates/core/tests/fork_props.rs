//! Property tests of fork semantics: arbitrary parent/child write
//! interleavings never leak across the fork boundary, under any strategy.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, ImageSpec, Pid};
use ufork_cheri::Capability;
use ufork_exec::{Ctx, MemOs};
use ufork_testkit::{forall, shrink_vec, PropConfig, Rng};

const PARENT: Pid = Pid(1);
const CHILD: Pid = Pid(2);
const CELLS: u64 = 24;

fn cfg() -> PropConfig {
    PropConfig::from_env(96)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    ParentWrite(u8, u64),
    ChildWrite(u8, u64),
    ParentRead(u8),
    ChildRead(u8),
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(4) {
        0 => Op::ParentWrite(rng.next_u64() as u8, rng.next_u64()),
        1 => Op::ChildWrite(rng.next_u64() as u8, rng.next_u64()),
        2 => Op::ParentRead(rng.next_u64() as u8),
        _ => Op::ChildRead(rng.next_u64() as u8),
    }
}

fn strategy_of(ix: u8) -> CopyStrategy {
    match ix % 3 {
        0 => CopyStrategy::Full,
        1 => CopyStrategy::CoA,
        _ => CopyStrategy::CoPA,
    }
}

/// The cells live in one shared array in the parent; each cell is a u64
/// at a distinct offset. Pointers to the array hop through a capability
/// cell so relocation is exercised too.
fn cell_addr(arr: &Capability, i: u8) -> Capability {
    let idx = u64::from(i) % CELLS;
    // Spread cells across pages (512 B apart) so strategies differ.
    arr.with_addr(arr.base() + idx * 512).expect("in bounds")
}

#[test]
fn interleaved_writes_never_leak() {
    forall(
        "interleaved_writes_never_leak",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            let n = rng.range(1, 48) as usize;
            let ops: Vec<Op> = (0..n).map(|_| gen_op(rng)).collect();
            (strategy_ix, ops)
        },
        |(ix, ops)| shrink_vec(ops).into_iter().map(|o| (*ix, o)).collect(),
        |(strategy_ix, ops)| {
            let strategy = strategy_of(*strategy_ix);
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world())
                .unwrap();
            let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
            // Initialize cells to i.
            for i in 0..CELLS {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + i * 512).unwrap(),
                    &i.to_le_bytes(),
                )
                .unwrap();
            }
            // A pointer to the array stored in memory (forces relocation)
            // and in a register.
            let slot = os.malloc(&mut ctx, PARENT, 16).unwrap();
            os.store_cap(&mut ctx, PARENT, &slot, &arr).unwrap();
            os.set_reg(PARENT, 4, slot).unwrap();

            os.fork(&mut ctx, PARENT, CHILD).unwrap();

            // Shadow models.
            let mut shadow_p: Vec<u64> = (0..CELLS).collect();
            let mut shadow_c = shadow_p.clone();

            // Resolve each side's array pointer through its own memory.
            let p_slot = os.reg(PARENT, 4).unwrap();
            let p_arr = os
                .load_cap(&mut ctx, PARENT, &p_slot.with_addr(p_slot.base()).unwrap())
                .unwrap()
                .expect("parent array ptr");
            let c_slot = os.reg(CHILD, 4).unwrap();
            let c_arr = os
                .load_cap(&mut ctx, CHILD, &c_slot.with_addr(c_slot.base()).unwrap())
                .unwrap()
                .expect("child array ptr");
            if p_arr.base() == c_arr.base() {
                return Err("child pointer must be relocated".into());
            }

            for o in ops {
                match *o {
                    Op::ParentWrite(i, v) => {
                        os.store(&mut ctx, PARENT, &cell_addr(&p_arr, i), &v.to_le_bytes())
                            .unwrap();
                        shadow_p[(u64::from(i) % CELLS) as usize] = v;
                    }
                    Op::ChildWrite(i, v) => {
                        os.store(&mut ctx, CHILD, &cell_addr(&c_arr, i), &v.to_le_bytes())
                            .unwrap();
                        shadow_c[(u64::from(i) % CELLS) as usize] = v;
                    }
                    Op::ParentRead(i) => {
                        let mut b = [0u8; 8];
                        os.load(&mut ctx, PARENT, &cell_addr(&p_arr, i), &mut b)
                            .unwrap();
                        let want = shadow_p[(u64::from(i) % CELLS) as usize];
                        if u64::from_le_bytes(b) != want {
                            return Err(format!("{strategy:?}: parent read diverged"));
                        }
                    }
                    Op::ChildRead(i) => {
                        let mut b = [0u8; 8];
                        os.load(&mut ctx, CHILD, &cell_addr(&c_arr, i), &mut b)
                            .unwrap();
                        let want = shadow_c[(u64::from(i) % CELLS) as usize];
                        if u64::from_le_bytes(b) != want {
                            return Err(format!("{strategy:?}: child read diverged"));
                        }
                    }
                }
            }
            // Final sweep: both views must equal their shadows, and
            // isolation must audit clean.
            for i in 0..CELLS {
                let mut b = [0u8; 8];
                os.load(
                    &mut ctx,
                    PARENT,
                    &p_arr.with_addr(p_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_p[i as usize] {
                    return Err(format!("{strategy:?}: parent cell {i} diverged at sweep"));
                }
                os.load(
                    &mut ctx,
                    CHILD,
                    &c_arr.with_addr(c_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != shadow_c[i as usize] {
                    return Err(format!("{strategy:?}: child cell {i} diverged at sweep"));
                }
            }
            if os.audit_isolation(PARENT) != 0 || os.audit_isolation(CHILD) != 0 {
                return Err(format!("{strategy:?}: isolation audit found violations"));
            }
            if ctx.counters.isolation_violations != 0 {
                return Err(format!("{strategy:?}: isolation violations counted"));
            }
            Ok(())
        },
    );
}

/// Observational equivalence: after fork, the child's full view of the
/// array equals the parent's at-fork view under EVERY strategy — byte for
/// byte — no matter which cells the parent dirtied first.
#[test]
fn strategies_observationally_equivalent() {
    forall(
        "strategies_observationally_equivalent",
        &cfg(),
        |rng| {
            let strategy_ix = rng.below(3) as u8;
            let n = rng.index(16);
            let dirty: Vec<(u8, u64)> = (0..n)
                .map(|_| (rng.next_u64() as u8, rng.next_u64()))
                .collect();
            (strategy_ix, dirty)
        },
        |(ix, dirty)| shrink_vec(dirty).into_iter().map(|d| (*ix, d)).collect(),
        |(strategy_ix, parent_dirty)| {
            let strategy = strategy_of(*strategy_ix);
            let mut os = UforkOs::new(UforkConfig {
                phys_mib: 64,
                strategy,
                ..UforkConfig::default()
            });
            let mut ctx = Ctx::new();
            os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world())
                .unwrap();
            let arr = os.malloc(&mut ctx, PARENT, CELLS * 512).unwrap();
            for i in 0..CELLS {
                os.store(
                    &mut ctx,
                    PARENT,
                    &arr.with_addr(arr.base() + i * 512).unwrap(),
                    &(0xAB00 + i).to_le_bytes(),
                )
                .unwrap();
            }
            os.set_reg(PARENT, 4, arr).unwrap();
            os.fork(&mut ctx, PARENT, CHILD).unwrap();
            // Parent dirties some cells AFTER the fork.
            for (i, v) in parent_dirty {
                os.store(&mut ctx, PARENT, &cell_addr(&arr, *i), &v.to_le_bytes())
                    .unwrap();
            }
            // The child still sees the at-fork snapshot.
            let c_arr = os.reg(CHILD, 4).unwrap();
            for i in 0..CELLS {
                let mut b = [0u8; 8];
                os.load(
                    &mut ctx,
                    CHILD,
                    &c_arr.with_addr(c_arr.base() + i * 512).unwrap(),
                    &mut b,
                )
                .unwrap();
                if u64::from_le_bytes(b) != 0xAB00 + i {
                    return Err(format!("{strategy:?} cell {i}: child lost the snapshot"));
                }
            }
            Ok(())
        },
    );
}
