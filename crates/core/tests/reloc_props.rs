//! Differential property test of the relocation scan: the tag-summary
//! fast path must be observationally identical to the naive per-granule
//! sweep — same bytes, same tags, same capabilities, same fix-up counts —
//! for any frame population. Only the cost may differ.
//!
//! Runs on the in-repo `ufork-testkit` harness (offline; default-on
//! `props` feature).
#![cfg(feature = "props")]

use ufork::reloc::{relocate_frame, ScanMode};
use ufork_cheri::{Capability, Perms};
use ufork_mem::{PhysMem, GRANULES_PER_PAGE, GRANULE_SIZE, PAGE_SIZE};
use ufork_testkit::{forall, shrink_vec, PropConfig, Rng};
use ufork_vmem::{Region, VirtAddr};

const PARENT: Region = Region {
    base: VirtAddr(0x10_0000),
    len: 0x1_0000,
};
const ANCESTOR: Region = Region {
    base: VirtAddr(0x40_0000),
    len: 0x8000,
};
const CHILD: Region = Region {
    base: VirtAddr(0x90_0000),
    len: 0x1_0000,
};

/// One capability planted in the frame before relocation.
#[derive(Clone, Copy, Debug)]
struct Plant {
    granule: u8,
    /// Where the capability points: parent region (relocated), an older
    /// ancestor region (relocated with a different delta), the child
    /// region itself (left untouched), or nowhere known (tag cleared).
    target: Target,
    /// Offset within the target region (kept in-bounds by construction).
    offset: u16,
    len: u8,
}

#[derive(Clone, Copy, Debug)]
enum Target {
    Parent,
    Ancestor,
    Child,
    Unknown,
}

fn gen_case(rng: &mut Rng) -> (Vec<Plant>, Vec<(u16, u8)>) {
    let caps = rng.below(24) as usize;
    let plants = (0..caps)
        .map(|_| Plant {
            granule: rng.next_u64() as u8,
            target: match rng.below(4) {
                0 => Target::Parent,
                1 => Target::Ancestor,
                2 => Target::Child,
                _ => Target::Unknown,
            },
            offset: (rng.next_u64() % 0x4000) as u16,
            len: rng.range(1, 128) as u8,
        })
        .collect();
    let writes = rng.below(8) as usize;
    let writes = (0..writes)
        .map(|_| {
            (
                (rng.next_u64() as u16) % (PAGE_SIZE as u16 - 64),
                rng.range(1, 64) as u8,
            )
        })
        .collect();
    (plants, writes)
}

fn populate(pm: &mut PhysMem, f: ufork_mem::Pfn, plants: &[Plant], writes: &[(u16, u8)]) {
    for (off, len) in writes {
        pm.write(f, u64::from(*off), &vec![0xC3; usize::from(*len)])
            .unwrap();
    }
    for p in plants {
        let region = match p.target {
            Target::Parent => Some(PARENT),
            Target::Ancestor => Some(ANCESTOR),
            Target::Child => Some(CHILD),
            Target::Unknown => None,
        };
        let base = match region {
            Some(r) => r.base.0 + u64::from(p.offset) % r.len,
            None => 0xdead_0000 + u64::from(p.offset),
        };
        let cap = Capability::new_root(base, u64::from(p.len), Perms::data());
        let g = u64::from(p.granule) % GRANULES_PER_PAGE;
        pm.store_cap(f, g * GRANULE_SIZE, &cap).unwrap();
    }
}

fn source_of(addr: u64) -> Option<Region> {
    [PARENT, ANCESTOR]
        .into_iter()
        .find(|r| r.contains(VirtAddr(addr)))
}

#[test]
fn naive_and_tag_summary_scans_are_observationally_identical() {
    let cfg = PropConfig::from_env(192);
    forall(
        "naive_and_tag_summary_scans_are_observationally_identical",
        &cfg,
        gen_case,
        |case| {
            // Shrink by dropping planted caps; keep the writes fixed.
            shrink_vec(&case.0)
                .into_iter()
                .map(|plants| (plants, case.1.clone()))
                .collect()
        },
        |(plants, writes)| {
            let mut pm = PhysMem::new(4);
            let a = pm.alloc_frame().unwrap();
            let b = pm.alloc_frame().unwrap();
            populate(&mut pm, a, plants, writes);
            pm.copy_frame(a, b).unwrap();

            let root = Capability::new_root(CHILD.base.0, CHILD.len, Perms::data());
            let s_naive = relocate_frame(&mut pm, a, CHILD, &root, &source_of, ScanMode::Naive);
            let s_fast = relocate_frame(&mut pm, b, CHILD, &root, &source_of, ScanMode::TagSummary);

            if s_naive.relocated != s_fast.relocated || s_naive.cleared != s_fast.cleared {
                return Err(format!(
                    "fix-up counts diverged: naive {s_naive:?}, fast {s_fast:?}"
                ));
            }
            // The modes must *search* differently…
            if s_naive.granules_scanned != GRANULES_PER_PAGE || s_naive.tag_words_loaded != 0 {
                return Err(format!(
                    "naive sweep did not inspect every granule: {s_naive:?}"
                ));
            }
            if s_fast.granules_scanned + s_fast.granules_skipped != GRANULES_PER_PAGE {
                return Err(format!("fast path lost granules: {s_fast:?}"));
            }
            // …but land on identical frames.
            let fa = pm.frame(a).unwrap();
            let fb = pm.frame(b).unwrap();
            if fa.data() != fb.data() {
                return Err("frame bytes diverged".into());
            }
            if fa.tag_words() != fb.tag_words() {
                return Err(format!(
                    "tag bitmaps diverged: {:?} vs {:?}",
                    fa.tag_words(),
                    fb.tag_words()
                ));
            }
            let ca: Vec<_> = fa.tagged_granules().collect();
            let cb: Vec<_> = fb.tagged_granules().collect();
            if ca != cb {
                return Err(format!("capability maps diverged: {ca:?} vs {cb:?}"));
            }
            // Every surviving capability must be confined to the child.
            for (off, cap) in &ca {
                if !cap.confined_to(CHILD.base.0, CHILD.len) {
                    return Err(format!("cap at offset {off} escapes the child: {cap:?}"));
                }
            }
            Ok(())
        },
    );
}
