//! Integration tests of the μFork kernel's fork semantics: equivalence of
//! parent/child views, relocation correctness, isolation, and the three
//! copy strategies.

use ufork::{UforkConfig, UforkOs};
use ufork_abi::{CopyStrategy, Errno, ImageSpec, IsolationLevel, Pid};
use ufork_cheri::{Capability, Perms};
use ufork_exec::{Ctx, MemOs};

const PARENT: Pid = Pid(1);
const CHILD: Pid = Pid(2);

fn os_with(strategy: CopyStrategy) -> (UforkOs, Ctx) {
    let cfg = UforkConfig {
        strategy,
        phys_mib: 64,
        ..UforkConfig::default()
    };
    (UforkOs::new(cfg), Ctx::new())
}

fn spawn_parent(os: &mut UforkOs, ctx: &mut Ctx) {
    os.spawn(ctx, PARENT, &ImageSpec::hello_world()).unwrap();
}

/// Writes a linked list of three nodes into parent memory:
/// reg[4] -> node0 { value u64, next cap } -> node1 -> node2.
fn build_list(os: &mut UforkOs, ctx: &mut Ctx, pid: Pid) -> Vec<u64> {
    let mut nodes = Vec::new();
    let mut caps = Vec::new();
    for i in 0..3u64 {
        let n = os.malloc(ctx, pid, 32).unwrap();
        os.store(ctx, pid, &n, &(100 + i).to_le_bytes()).unwrap();
        caps.push(n);
        nodes.push(n.base());
    }
    // Link i -> i+1 at offset 16.
    for i in 0..2 {
        let slot = caps[i].with_addr(caps[i].base() + 16).unwrap();
        os.store_cap(ctx, pid, &slot, &caps[i + 1]).unwrap();
    }
    os.set_reg(pid, 4, caps[0]).unwrap();
    nodes
}

/// Walks the list through pid's registers/memory, returning the values.
fn walk_list(os: &mut UforkOs, ctx: &mut Ctx, pid: Pid) -> Vec<u64> {
    let mut out = Vec::new();
    let mut cur = Some(os.reg(pid, 4).unwrap());
    while let Some(c) = cur {
        let mut b = [0u8; 8];
        os.load(ctx, pid, &c.with_addr(c.base()).unwrap(), &mut b)
            .unwrap();
        out.push(u64::from_le_bytes(b));
        cur = os
            .load_cap(ctx, pid, &c.with_addr(c.base() + 16).unwrap())
            .unwrap();
    }
    out
}

#[test]
fn child_sees_identical_data_under_all_strategies() {
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        let (mut os, mut ctx) = os_with(strategy);
        spawn_parent(&mut os, &mut ctx);
        build_list(&mut os, &mut ctx, PARENT);
        os.fork(&mut ctx, PARENT, CHILD).unwrap();
        assert_eq!(
            walk_list(&mut os, &mut ctx, CHILD),
            vec![100, 101, 102],
            "strategy {strategy:?}"
        );
        assert_eq!(walk_list(&mut os, &mut ctx, PARENT), vec![100, 101, 102]);
    }
}

#[test]
fn child_registers_are_relocated() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    let p = os.reg(PARENT, 4).unwrap();
    let c = os.reg(CHILD, 4).unwrap();
    assert_ne!(p.base(), c.base(), "child head pointer must be relocated");
    // Same offset within the respective regions.
    let pr = os.reg(PARENT, 0).unwrap();
    let cr = os.reg(CHILD, 0).unwrap();
    assert_eq!(p.base() - pr.base(), c.base() - cr.base());
}

#[test]
fn writes_are_isolated_after_fork() {
    for strategy in [CopyStrategy::Full, CopyStrategy::CoA, CopyStrategy::CoPA] {
        let (mut os, mut ctx) = os_with(strategy);
        spawn_parent(&mut os, &mut ctx);
        build_list(&mut os, &mut ctx, PARENT);
        os.fork(&mut ctx, PARENT, CHILD).unwrap();

        // Child overwrites node0's value.
        let c_head = os.reg(CHILD, 4).unwrap();
        os.store(
            &mut ctx,
            CHILD,
            &c_head.with_addr(c_head.base()).unwrap(),
            &999u64.to_le_bytes(),
        )
        .unwrap();
        // Parent overwrites node1's value.
        let p_head = os.reg(PARENT, 4).unwrap();
        let p_n1 = os
            .load_cap(
                &mut ctx,
                PARENT,
                &p_head.with_addr(p_head.base() + 16).unwrap(),
            )
            .unwrap()
            .unwrap();
        os.store(
            &mut ctx,
            PARENT,
            &p_n1.with_addr(p_n1.base()).unwrap(),
            &777u64.to_le_bytes(),
        )
        .unwrap();

        assert_eq!(
            walk_list(&mut os, &mut ctx, CHILD),
            vec![999, 101, 102],
            "{strategy:?}: child must not see parent's post-fork write"
        );
        assert_eq!(
            walk_list(&mut os, &mut ctx, PARENT),
            vec![100, 777, 102],
            "{strategy:?}: parent must not see child's write"
        );
    }
}

#[test]
fn copa_copies_fewer_pages_than_coa() {
    // The child reads every node; CoA must copy every touched page, CoPA
    // only pages it loads capabilities from / writes to.
    let mut results = Vec::new();
    for strategy in [CopyStrategy::CoA, CopyStrategy::CoPA] {
        let (mut os, mut ctx) = os_with(strategy);
        spawn_parent(&mut os, &mut ctx);
        build_list(&mut os, &mut ctx, PARENT);
        os.fork(&mut ctx, PARENT, CHILD).unwrap();
        let before = ctx.counters.pages_copied;
        walk_list(&mut os, &mut ctx, CHILD);
        results.push((strategy, ctx.counters.pages_copied - before));
    }
    let coa = results[0].1;
    let copa = results[1].1;
    assert!(
        copa <= coa,
        "CoPA ({copa}) must copy no more pages than CoA ({coa})"
    );
}

#[test]
fn full_strategy_copies_everything_at_fork() {
    let (mut os, mut ctx) = os_with(CopyStrategy::Full);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    let frames_before = os.allocated_frames();
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    let frames_after = os.allocated_frames();
    // Every mapped page was duplicated (no sharing).
    assert!(frames_after >= 2 * frames_before - 2);
    // And the child faults on nothing afterwards.
    let before = ctx.counters.cow_faults + ctx.counters.cap_load_faults + ctx.counters.coa_faults;
    walk_list(&mut os, &mut ctx, CHILD);
    let after = ctx.counters.cow_faults + ctx.counters.cap_load_faults + ctx.counters.coa_faults;
    assert_eq!(before, after);
}

#[test]
fn stale_parent_capability_is_refused() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    // Simulate a program that squirrelled a parent pointer outside the
    // register file: the child presents the PARENT's head capability.
    let stale = os.reg(PARENT, 4).unwrap();
    let mut b = [0u8; 8];
    let err = os.load(
        &mut ctx,
        CHILD,
        &stale.with_addr(stale.base()).unwrap(),
        &mut b,
    );
    assert_eq!(err.unwrap_err(), Errno::Fault);
    assert!(ctx.counters.isolation_violations > 0);
}

#[test]
fn forged_capability_is_refused() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    // A forged capability into the kernel's address range.
    let forged = Capability::new_root(0xffff_0000_0000, 0x1000, Perms::data());
    let err = os.store(&mut ctx, PARENT, &forged, &[1, 2, 3]);
    assert_eq!(err.unwrap_err(), Errno::Fault);
    assert_eq!(ctx.counters.isolation_violations, 1);
}

#[test]
fn isolation_audit_passes_after_fork_and_accesses() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    assert_eq!(os.audit_isolation(PARENT), 0);
    assert_eq!(os.audit_isolation(CHILD), 0);
    walk_list(&mut os, &mut ctx, CHILD);
    assert_eq!(os.audit_isolation(CHILD), 0);
    // Child writes; audit still clean.
    let head = os.reg(CHILD, 4).unwrap();
    os.store(
        &mut ctx,
        CHILD,
        &head.with_addr(head.base()).unwrap(),
        &1u64.to_le_bytes(),
    )
    .unwrap();
    assert_eq!(os.audit_isolation(CHILD), 0);
}

#[test]
fn grandchild_relocation_across_two_forks() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    // Child forks again WITHOUT touching the list first: grandchild pages
    // still hold capabilities pointing at the ORIGINAL parent's region.
    let gc = Pid(3);
    os.fork(&mut ctx, CHILD, gc).unwrap();
    assert_eq!(walk_list(&mut os, &mut ctx, gc), vec![100, 101, 102]);
    assert_eq!(os.audit_isolation(gc), 0);
}

#[test]
fn fork_after_parent_exit_keeps_child_working() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    os.destroy(&mut ctx, PARENT);
    // The child's shared frames survive (refcounted) and relocation still
    // finds the parent's (retired) region.
    assert_eq!(walk_list(&mut os, &mut ctx, CHILD), vec![100, 101, 102]);
    assert_eq!(os.audit_isolation(CHILD), 0);
}

#[test]
fn malloc_works_in_child_after_fork() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    build_list(&mut os, &mut ctx, PARENT);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    // Child allocates: exercises the eagerly copied allocator metadata.
    let c = os.malloc(&mut ctx, CHILD, 64).unwrap();
    let cr = os.reg(CHILD, 0).unwrap();
    assert!(c.confined_to(cr.base(), cr.len()));
    os.store(&mut ctx, CHILD, &c, b"child allocation").unwrap();
    // Parent allocator is unaffected: next parent alloc lands in ITS arena.
    let p = os.malloc(&mut ctx, PARENT, 64).unwrap();
    let pr = os.reg(PARENT, 0).unwrap();
    assert!(p.confined_to(pr.base(), pr.len()));
}

#[test]
fn shm_is_shared_across_fork_and_carries_no_caps() {
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    let shm = os.shm_open(&mut ctx, PARENT, "seg", 8192).unwrap();
    os.set_reg(PARENT, 5, shm).unwrap();
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    // Parent writes, child reads THROUGH ITS OWN (relocated) mapping.
    os.store(
        &mut ctx,
        PARENT,
        &shm.with_addr(shm.base()).unwrap(),
        b"hello-shm",
    )
    .unwrap();
    let c_shm = os.reg(CHILD, 5).unwrap();
    assert_ne!(c_shm.base(), shm.base());
    let mut b = [0u8; 9];
    os.load(
        &mut ctx,
        CHILD,
        &c_shm.with_addr(c_shm.base()).unwrap(),
        &mut b,
    )
    .unwrap();
    assert_eq!(&b, b"hello-shm");
    // Capability stores into shm are forbidden (no STORE_CAP permission).
    let cap = os.malloc(&mut ctx, CHILD, 16).unwrap();
    let err = os.store_cap(
        &mut ctx,
        CHILD,
        &c_shm.with_addr(c_shm.base()).unwrap(),
        &cap,
    );
    assert_eq!(err.unwrap_err(), Errno::Fault);
}

#[test]
fn fork_counters_match_strategy() {
    // CoPA fork must not copy the arena; Full must copy everything.
    let (mut os, mut ctx) = os_with(CopyStrategy::CoPA);
    spawn_parent(&mut os, &mut ctx);
    os.fork(&mut ctx, PARENT, CHILD).unwrap();
    let copa_eager = ctx.counters.pages_copied_eager;

    let (mut os2, mut ctx2) = os_with(CopyStrategy::Full);
    spawn_parent(&mut os2, &mut ctx2);
    os2.fork(&mut ctx2, PARENT, CHILD).unwrap();
    let full_eager = ctx2.counters.pages_copied_eager;

    assert!(copa_eager < full_eager);
    assert!(copa_eager >= 2, "GOT + allocator metadata are eager");
}

#[test]
fn isolation_none_skips_checks() {
    let cfg = UforkConfig {
        isolation: IsolationLevel::None,
        phys_mib: 64,
        ..UforkConfig::default()
    };
    let mut os = UforkOs::new(cfg);
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, PARENT, &ImageSpec::hello_world())
        .unwrap();
    // With isolation disabled, even an out-of-region capability is let
    // through to translation (and fails only if unmapped).
    let root = os.reg(PARENT, 0).unwrap();
    let wild = Capability::new_root(root.base() - 4096, 8192, Perms::data());
    let mut b = [0u8; 4];
    let r = os.load(
        &mut ctx,
        PARENT,
        &wild.with_addr(root.base()).unwrap(),
        &mut b,
    );
    assert!(r.is_ok(), "checks disabled: in-region part accessible");
    assert_eq!(ctx.counters.isolation_violations, 0);
}

#[test]
fn fork_latency_scales_with_mapped_pages() {
    // Fork cost must grow with the image size (PTE copies): the mechanism
    // behind Figure 4's growth with database size.
    let cfg = UforkConfig {
        phys_mib: 256,
        ..UforkConfig::default()
    };
    let mut os = UforkOs::new(cfg);
    let mut ctx_small = Ctx::new();
    os.spawn(&mut ctx_small, Pid(10), &ImageSpec::hello_world())
        .unwrap();
    let mut c1 = Ctx::new();
    os.fork(&mut c1, Pid(10), Pid(11)).unwrap();

    let mut ctx_big = Ctx::new();
    os.spawn(
        &mut ctx_big,
        Pid(20),
        &ImageSpec::with_heap("big", 64 << 20),
    )
    .unwrap();
    let mut c2 = Ctx::new();
    os.fork(&mut c2, Pid(20), Pid(21)).unwrap();

    assert!(
        c2.kernel_ns > c1.kernel_ns,
        "bigger image must fork slower ({} vs {})",
        c2.kernel_ns,
        c1.kernel_ns
    );
}
