//! Offline-capable test support for the μFork reproduction.
//!
//! The container this repository builds in has no network access, so the
//! test suite cannot depend on crates.io (`proptest`, `rand`, `criterion`).
//! This crate replaces the parts of those we actually use with ~300 lines
//! of deterministic, dependency-free code:
//!
//! * [`Rng`] — a SplitMix64 pseudo-random generator. Identical sequences
//!   on every platform for a given seed, which is exactly what a
//!   *replayable* differential oracle needs (`ORACLE_SEED`).
//! * [`forall`] / [`Prop`] — a miniature property-test harness: run a
//!   property over `cases` generated inputs, and on failure greedily
//!   *shrink* the failing input before reporting, printing the seed that
//!   reproduces it.
//!
//! Property suites built on this harness are gated behind the crate-local
//! `props` cargo feature, which is **on by default** — `cargo test` runs
//! them offline; `--no-default-features` skips them for a quick edit loop.

pub mod bench;
mod prop;
mod rng;

pub use prop::{forall, no_shrink, shrink_vec, CaseResult, PropConfig};
pub use rng::Rng;

/// Reads an environment variable as `u64`, with a default.
///
/// Used for `ORACLE_SEED` / `PROP_CASES` overrides so CI and humans can
/// replay a failure without recompiling.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}
