//! SplitMix64: small, fast, and statistically solid for test-case
//! generation (Steele et al., "Fast Splittable Pseudorandom Number
//! Generators", OOPSLA 2014). Chosen over a hand-rolled LCG because its
//! output passes BigCrush, and over xoshiro because seeding is trivial
//! (any u64, including 0, is a fine seed).

/// Deterministic pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences
    /// on every platform and every run.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // for astronomically large `n` is irrelevant for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fills a byte buffer with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent child generator (for sub-streams that must
    /// not perturb the parent's sequence, e.g. one per generated case).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xa076_1d64_78bd_642f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_is_independent() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
