//! A minimal wall-clock bench runner replacing `criterion` offline.
//!
//! The repository's benches already use `harness = false`, so each bench
//! target is a plain `main()` that calls [`bench`] / [`bench_with_setup`].
//! Output is one line per benchmark: median ns/iter over `BENCH_SAMPLES`
//! samples (default 20) of `BENCH_ITERS` iterations each (default
//! auto-scaled to ~2 ms per sample). No statistics beyond the median —
//! these are smoke/ballpark numbers, not publication material; the
//! simulated-time results from `ufork-bench`'s `repro` binary are the
//! figures that matter.

use std::hint::black_box;
use std::time::Instant;

fn samples() -> u64 {
    crate::env_u64("BENCH_SAMPLES", 20)
}

/// Times `f`, printing `name: <median> ns/iter`.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and iteration-count calibration (~2 ms per sample).
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_micros() < 500 {
        black_box(f());
        calib_iters += 1;
    }
    let per_iter_ns = (start.elapsed().as_nanos() as u64 / calib_iters.max(1)).max(1);
    let iters = crate::env_u64("BENCH_ITERS", (2_000_000 / per_iter_ns).clamp(1, 100_000));

    let mut medians = Vec::new();
    for _ in 0..samples() {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        medians.push(t.elapsed().as_nanos() as u64 / iters);
    }
    medians.sort_unstable();
    println!(
        "{name}: {} ns/iter ({} samples x {iters} iters)",
        medians[medians.len() / 2],
        medians.len()
    );
}

/// Times `routine` with a fresh untimed `setup()` product per iteration.
///
/// Only the `routine(&mut s)` call sits inside the timed window; both the
/// setup and the teardown (dropping `s`) run with the clock stopped.
pub fn bench_with_setup<S, T>(
    name: &str,
    setup: impl FnMut() -> S,
    routine: impl FnMut(&mut S) -> T,
) {
    bench_with_setup_ns(name, setup, routine);
}

/// Like [`bench_with_setup`], but also returns the best (minimum)
/// per-sample ns/iter so the caller can post-process the result (e.g.
/// compute speedups or emit a machine-readable `BENCH_*.json` baseline).
///
/// Each iteration times the routine call alone (per-call `Instant`, ~20 ns
/// overhead — noise for the multi-microsecond routines benched here). The
/// previous scheme timed a setup-only loop and a setup+routine loop and
/// reported the difference; when setup dwarfs the routine (building a
/// whole OS vs. one fork) that subtraction amplified host noise into
/// ±40% swings, far too unstable to gate regressions on.
///
/// The returned statistic is the *minimum* over samples: for
/// deterministic CPU-bound code, host interference (scheduling,
/// frequency shifts, cache pollution from neighbours) is strictly
/// additive, so the minimum is the most reproducible estimate of the
/// code's own cost and the right number to gate regressions on. The
/// median is still printed alongside for eyeballing spread.
pub fn bench_with_setup_ns<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(&mut S) -> T,
) -> u64 {
    let iters = crate::env_u64("BENCH_ITERS", 0).clamp(1, 1000);
    let iters = if iters == 1 { 50 } else { iters };
    let mut per_sample = Vec::new();
    for _ in 0..samples() {
        let mut total_ns = 0u64;
        for _ in 0..iters {
            let mut s = setup();
            let t = Instant::now();
            black_box(routine(&mut s));
            total_ns += t.elapsed().as_nanos() as u64;
            drop(s);
        }
        per_sample.push(total_ns / iters);
    }
    per_sample.sort_unstable();
    let best = per_sample[0];
    let median = per_sample[per_sample.len() / 2];
    println!(
        "{name}: {best} ns/iter best, {median} median ({} samples x {iters} iters, setup untimed)",
        per_sample.len()
    );
    best
}
