//! A minimal wall-clock bench runner replacing `criterion` offline.
//!
//! The repository's benches already use `harness = false`, so each bench
//! target is a plain `main()` that calls [`bench`] / [`bench_with_setup`].
//! Output is one line per benchmark: median ns/iter over `BENCH_SAMPLES`
//! samples (default 20) of `BENCH_ITERS` iterations each (default
//! auto-scaled to ~2 ms per sample). No statistics beyond the median —
//! these are smoke/ballpark numbers, not publication material; the
//! simulated-time results from `ufork-bench`'s `repro` binary are the
//! figures that matter.

use std::hint::black_box;
use std::time::Instant;

fn samples() -> u64 {
    crate::env_u64("BENCH_SAMPLES", 20)
}

/// Times `f`, printing `name: <median> ns/iter`.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up and iteration-count calibration (~2 ms per sample).
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_micros() < 500 {
        black_box(f());
        calib_iters += 1;
    }
    let per_iter_ns = (start.elapsed().as_nanos() as u64 / calib_iters.max(1)).max(1);
    let iters = crate::env_u64("BENCH_ITERS", (2_000_000 / per_iter_ns).clamp(1, 100_000));

    let mut medians = Vec::new();
    for _ in 0..samples() {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        medians.push(t.elapsed().as_nanos() as u64 / iters);
    }
    medians.sort_unstable();
    println!(
        "{name}: {} ns/iter ({} samples x {iters} iters)",
        medians[medians.len() / 2],
        medians.len()
    );
}

/// Times `routine` with a fresh untimed `setup()` product per iteration.
///
/// Setup runs inside the timing loop but its cost is measured separately
/// and subtracted, keeping the reported number close to the routine alone.
pub fn bench_with_setup<S, T>(name: &str, setup: impl FnMut() -> S, routine: impl FnMut(S) -> T) {
    bench_with_setup_ns(name, setup, routine);
}

/// Like [`bench_with_setup`], but also returns the median ns/iter so the
/// caller can post-process the result (e.g. compute speedups or emit a
/// machine-readable `BENCH_*.json` baseline).
pub fn bench_with_setup_ns<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> u64 {
    let iters = crate::env_u64("BENCH_ITERS", 0).clamp(1, 1000);
    let iters = if iters == 1 { 50 } else { iters };
    let mut medians = Vec::new();
    for _ in 0..samples() {
        // Time setup alone, then setup+routine; report the difference.
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(setup());
        }
        let setup_ns = t0.elapsed().as_nanos() as u64 / iters;
        let t1 = Instant::now();
        for _ in 0..iters {
            let s = setup();
            black_box(routine(s));
        }
        let both_ns = t1.elapsed().as_nanos() as u64 / iters;
        medians.push(both_ns.saturating_sub(setup_ns));
    }
    medians.sort_unstable();
    let median = medians[medians.len() / 2];
    println!(
        "{name}: {median} ns/iter ({} samples x {iters} iters, setup subtracted)",
        medians.len()
    );
    median
}
