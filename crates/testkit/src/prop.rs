//! A miniature property-test harness.
//!
//! `forall` runs a property over `cases` inputs drawn from a generator.
//! When a case fails, the harness greedily shrinks it: it asks the
//! caller-supplied `shrink` function for simpler candidates, keeps any
//! candidate that still fails, and repeats until no candidate fails (a
//! local minimum). The panic message contains the seed and the shrunk
//! input, so failures replay exactly with `PROP_SEED=<seed> cargo test`.

use std::fmt::Debug;

use crate::rng::Rng;

/// Outcome of checking one input: `Ok` or `Err(reason)`.
pub type CaseResult = Result<(), String>;

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct PropConfig {
    /// Number of generated cases.
    pub cases: u64,
    /// Base seed; case `i` uses a generator split from `seed + i`.
    pub seed: u64,
    /// Cap on shrink iterations (guards against pathological shrinkers).
    pub max_shrink_steps: u64,
}

impl Default for PropConfig {
    fn default() -> PropConfig {
        PropConfig {
            cases: 64,
            seed: 0,
            max_shrink_steps: 2000,
        }
    }
}

impl PropConfig {
    /// Default config with `PROP_CASES` / `PROP_SEED` environment
    /// overrides, for replaying CI failures locally.
    pub fn from_env(default_cases: u64) -> PropConfig {
        PropConfig {
            cases: crate::env_u64("PROP_CASES", default_cases),
            seed: crate::env_u64("PROP_SEED", 0),
            max_shrink_steps: 2000,
        }
    }
}

/// Shrinker that offers no simpler candidates (disables shrinking).
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Runs `check` over `cfg.cases` inputs drawn from `gen`.
///
/// On failure, shrinks via `shrink` and panics with the minimal failing
/// input, the failure reason, and the per-case seed that reproduces it.
pub fn forall<T, G, S, C>(name: &str, cfg: &PropConfig, mut gen: G, shrink: S, mut check: C)
where
    T: Debug + Clone,
    G: FnMut(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    C: FnMut(&T) -> CaseResult,
{
    for case in 0..cfg.cases {
        let case_seed = cfg
            .seed
            .wrapping_add(case)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = Rng::new(case_seed).split();
        let input = gen(&mut rng);
        if let Err(reason) = check(&input) {
            let (min_input, min_reason, steps) =
                shrink_failure(&shrink, &mut check, input, reason, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed (case {case}/{total}, seed {seed}, \
                 shrunk {steps} steps)\nreason: {min_reason}\ninput: {min_input:#?}\n\
                 replay: PROP_SEED={base} PROP_CASES={replay_cases} cargo test {name}",
                total = cfg.cases,
                seed = case_seed,
                base = cfg.seed,
                replay_cases = case + 1,
            );
        }
    }
}

fn shrink_failure<T, S, C>(
    shrink: &S,
    check: &mut C,
    mut input: T,
    mut reason: String,
    max_steps: u64,
) -> (T, String, u64)
where
    T: Debug + Clone,
    S: Fn(&T) -> Vec<T>,
    C: FnMut(&T) -> CaseResult,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in shrink(&input) {
            steps += 1;
            if steps >= max_steps {
                break 'outer;
            }
            if let Err(r) = check(&candidate) {
                input = candidate;
                reason = r;
                continue 'outer; // restart from the simpler input
            }
        }
        break; // no candidate fails: local minimum
    }
    (input, reason, steps)
}

/// Generic list shrinker: drops chunks (halves, quarters, … single
/// elements) from the failing sequence. Good enough for op-list style
/// inputs where removing an operation keeps the rest meaningful.
pub fn shrink_vec<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut chunk = n.div_ceil(2);
    while chunk >= 1 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut candidate = Vec::with_capacity(n - (end - start));
            candidate.extend_from_slice(&items[..start]);
            candidate.extend_from_slice(&items[end..]);
            out.push(candidate);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        let cfg = PropConfig {
            cases: 50,
            ..PropConfig::default()
        };
        forall(
            "below_is_bounded",
            &cfg,
            |rng| rng.below(100),
            no_shrink,
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(format!("{v} out of range"))
                }
            },
        );
    }

    #[test]
    fn failing_property_panics_with_shrunk_input() {
        let cfg = PropConfig {
            cases: 50,
            ..PropConfig::default()
        };
        let result = std::panic::catch_unwind(|| {
            forall(
                "no_large_lists",
                &cfg,
                |rng| {
                    let n = rng.index(20);
                    (0..n).map(|i| i as u64).collect::<Vec<u64>>()
                },
                |v| shrink_vec(v),
                |v| {
                    if v.len() < 3 {
                        Ok(())
                    } else {
                        Err("too long".into())
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("no_large_lists"), "got: {msg}");
        // Shrinking must reach a minimal 3-element counterexample.
        assert!(msg.contains("shrunk"), "got: {msg}");
    }

    #[test]
    fn shrink_vec_produces_strictly_shorter_candidates() {
        let v: Vec<u32> = (0..10).collect();
        for cand in shrink_vec(&v) {
            assert!(cand.len() < v.len());
        }
        assert!(shrink_vec(&Vec::<u32>::new()).is_empty());
    }

    #[test]
    fn deterministic_generation_per_case() {
        let cfg = PropConfig::default();
        let mut first_run = Vec::new();
        forall(
            "collect",
            &cfg,
            |rng| rng.next_u64(),
            no_shrink,
            |&v| {
                first_run.push(v);
                Ok(())
            },
        );
        let mut second_run = Vec::new();
        forall(
            "collect",
            &cfg,
            |rng| rng.next_u64(),
            no_shrink,
            |&v| {
                second_run.push(v);
                Ok(())
            },
        );
        assert_eq!(first_run, second_run);
    }
}
