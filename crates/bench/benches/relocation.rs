//! Relocation-engine throughput vs. pointer density — the ablation behind
//! the CoPA design: scan cost is paid per page, fix-up cost per tagged
//! capability.
//!
//! Each density is measured under both scan modes: `naive` inspects all
//! 256 granules individually (the paper's sequential sweep), `tagsummary`
//! reads the 4-word tag-occupancy bitmap first (`CLoadTags`) and only
//! visits set bits. The gap at low densities is the tentpole win; at 256
//! caps/page the two converge because every granule is tagged anyway.

use std::hint::black_box;
use ufork::reloc::{relocate_frame, ScanMode};
use ufork_cheri::{Capability, Perms};
use ufork_mem::PhysMem;
use ufork_testkit::bench::bench_with_setup;
use ufork_vmem::{Region, VirtAddr};

fn main() {
    let parent = Region {
        base: VirtAddr(0x10_0000),
        len: 0x10_0000,
    };
    let child = Region {
        base: VirtAddr(0x90_0000),
        len: 0x10_0000,
    };
    let child_root = Capability::new_root(child.base.0, child.len, Perms::data());

    for density in [0usize, 4, 16, 64, 256] {
        for (mode_name, mode) in [
            ("naive", ScanMode::Naive),
            ("tagsummary", ScanMode::TagSummary),
        ] {
            bench_with_setup(
                &format!("relocation/page/{density}caps/{mode_name}"),
                || {
                    let mut pm = PhysMem::new(4);
                    let f = pm.alloc_frame().unwrap();
                    for i in 0..density {
                        let cap = Capability::new_root(
                            parent.base.0 + (i as u64 * 64) % parent.len,
                            64,
                            Perms::data(),
                        );
                        pm.store_cap(f, i as u64 * 16, &cap).unwrap();
                    }
                    (pm, f)
                },
                |(pm, f)| {
                    let stats = relocate_frame(
                        pm,
                        *f,
                        child,
                        &child_root,
                        &|a| {
                            if a >= parent.base.0 && a < parent.base.0 + parent.len {
                                Some(parent)
                            } else {
                                None
                            }
                        },
                        mode,
                    );
                    black_box(stats)
                },
            );
        }
    }
}
