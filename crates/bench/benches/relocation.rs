//! Relocation-engine throughput vs. pointer density — the ablation behind
//! the CoPA design: scan cost is paid per page, fix-up cost per tagged
//! capability.

use std::hint::black_box;
use ufork::reloc::relocate_frame;
use ufork_cheri::{Capability, Perms};
use ufork_mem::PhysMem;
use ufork_testkit::bench::bench_with_setup;
use ufork_vmem::{Region, VirtAddr};

fn main() {
    let parent = Region {
        base: VirtAddr(0x10_0000),
        len: 0x10_0000,
    };
    let child = Region {
        base: VirtAddr(0x90_0000),
        len: 0x10_0000,
    };
    let child_root = Capability::new_root(child.base.0, child.len, Perms::data());

    for density in [0usize, 16, 64, 256] {
        bench_with_setup(
            &format!("relocation/page/{density}caps"),
            || {
                let mut pm = PhysMem::new(4);
                let f = pm.alloc_frame().unwrap();
                for i in 0..density {
                    let cap = Capability::new_root(
                        parent.base.0 + (i as u64 * 64) % parent.len,
                        64,
                        Perms::data(),
                    );
                    pm.store_cap(f, i as u64 * 16, &cap).unwrap();
                }
                (pm, f)
            },
            |(mut pm, f)| {
                let stats = relocate_frame(&mut pm, f, child, &child_root, &|a| {
                    if a >= parent.base.0 && a < parent.base.0 + parent.len {
                        Some(parent)
                    } else {
                        None
                    }
                });
                black_box(stats)
            },
        );
    }
}
