//! Wall-clock microbenchmarks of the capability model: the operations the
//! μFork hot paths (relocation, access checks, syscall gate) are built on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ufork::SyscallGate;
use ufork_cheri::{Capability, Perms};

fn bench_derivation(c: &mut Criterion) {
    let root = Capability::new_root(0x10_0000, 0x100_0000, Perms::data());
    let mut g = c.benchmark_group("capability");
    g.bench_function("with_bounds", |b| {
        b.iter(|| black_box(root.with_bounds(black_box(0x10_4000), black_box(0x1000))))
    });
    g.bench_function("check_access", |b| {
        b.iter(|| black_box(root.check_access(black_box(0x10_8000), 64, Perms::LOAD)))
    });
    g.bench_function("rebase", |b| {
        let child_root = Capability::new_root(0x90_0000, 0x100_0000, Perms::data());
        let cap = root.with_bounds(0x10_4000, 0x100).unwrap();
        b.iter(|| black_box(cap.rebase(black_box(0x80_0000), &child_root)))
    });
    g.bench_function("confined_to", |b| {
        b.iter(|| black_box(root.confined_to(black_box(0x10_0000), 0x100_0000)))
    });
    g.finish();
}

fn bench_gate(c: &mut Criterion) {
    let ktext = Capability::new_root(0xffff_0000_0000, 0x10_0000, Perms::kernel());
    let gate = SyscallGate::new(&ktext, 0xffff_0000_1000).unwrap();
    let entry = gate.user_entry();
    c.bench_function("gate/enter", |b| b.iter(|| black_box(gate.enter(&entry))));
}

criterion_group!(benches, bench_derivation, bench_gate);
criterion_main!(benches);
