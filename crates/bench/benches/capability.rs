//! Wall-clock microbenchmarks of the capability model: the operations the
//! μFork hot paths (relocation, access checks, syscall gate) are built on.

use std::hint::black_box;
use ufork::SyscallGate;
use ufork_cheri::{Capability, Perms};
use ufork_testkit::bench::bench;

fn main() {
    let root = Capability::new_root(0x10_0000, 0x100_0000, Perms::data());
    bench("capability/with_bounds", || {
        black_box(root.with_bounds(black_box(0x10_4000), black_box(0x1000)))
    });
    bench("capability/check_access", || {
        black_box(root.check_access(black_box(0x10_8000), 64, Perms::LOAD))
    });
    let child_root = Capability::new_root(0x90_0000, 0x100_0000, Perms::data());
    let cap = root.with_bounds(0x10_4000, 0x100).unwrap();
    bench("capability/rebase", || {
        black_box(cap.rebase(black_box(0x80_0000), &child_root))
    });
    bench("capability/confined_to", || {
        black_box(root.confined_to(black_box(0x10_0000), 0x100_0000))
    });

    let ktext = Capability::new_root(0xffff_0000_0000, 0x10_0000, Perms::kernel());
    let gate = SyscallGate::new(&ktext, 0xffff_0000_1000).unwrap();
    let entry = gate.user_entry();
    bench("gate/enter", || black_box(gate.enter(&entry)));
}
