//! End-to-end workload benches: host wall-clock of full simulated runs
//! (one per paper experiment family, at reduced scale).

use std::hint::black_box;
use ufork_abi::{CopyStrategy, ImageSpec, IsolationLevel};
use ufork_bench::{nginx_run, redis_run, AnyMachine, Sys};
use ufork_exec::MachineConfig;
use ufork_testkit::bench::bench;
use ufork_workloads::hello::HelloWorld;
use ufork_workloads::ubench::{Context1, SpawnBench};

const UFORK: Sys = Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault);

fn main() {
    bench("e2e/hello_fork", || {
        let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
            .unwrap();
        m.run();
        black_box(m.exit_code(pid))
    });
    bench("e2e/spawn50", || {
        let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(50)))
            .unwrap();
        m.run();
        black_box(m.exit_code(pid))
    });
    bench("e2e/context1_1k", || {
        let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
        let pid = m
            .spawn(&ImageSpec::hello_world(), Box::new(Context1::new(1000)))
            .unwrap();
        m.run();
        black_box(m.exit_code(pid))
    });
    bench("e2e/redis_1mb_snapshot", || {
        black_box(redis_run(UFORK, 10, 100_000))
    });
    bench("e2e/nginx_20ms", || black_box(nginx_run(UFORK, 1, 2, 20e6)));
}
