//! End-to-end workload benches: host wall-clock of full simulated runs
//! (one per paper experiment family, at reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ufork_abi::{CopyStrategy, ImageSpec, IsolationLevel};
use ufork_bench::{nginx_run, redis_run, AnyMachine, Sys};
use ufork_exec::MachineConfig;
use ufork_workloads::hello::HelloWorld;
use ufork_workloads::ubench::{Context1, SpawnBench};

const UFORK: Sys = Sys::Ufork(CopyStrategy::CoPA, IsolationLevel::Fault);

fn bench_hello(c: &mut Criterion) {
    c.bench_function("e2e/hello_fork", |b| {
        b.iter(|| {
            let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(HelloWorld::forking()))
                .unwrap();
            m.run();
            black_box(m.exit_code(pid))
        })
    });
}

fn bench_spawn(c: &mut Criterion) {
    c.bench_function("e2e/spawn50", |b| {
        b.iter(|| {
            let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(SpawnBench::new(50)))
                .unwrap();
            m.run();
            black_box(m.exit_code(pid))
        })
    });
}

fn bench_context1(c: &mut Criterion) {
    c.bench_function("e2e/context1_1k", |b| {
        b.iter(|| {
            let mut m = AnyMachine::build(UFORK, 64, MachineConfig::default());
            let pid = m
                .spawn(&ImageSpec::hello_world(), Box::new(Context1::new(1000)))
                .unwrap();
            m.run();
            black_box(m.exit_code(pid))
        })
    });
}

fn bench_redis(c: &mut Criterion) {
    c.bench_function("e2e/redis_1mb_snapshot", |b| {
        b.iter(|| black_box(redis_run(UFORK, 10, 100_000)))
    });
}

fn bench_nginx(c: &mut Criterion) {
    c.bench_function("e2e/nginx_20ms", |b| {
        b.iter(|| black_box(nginx_run(UFORK, 1, 2, 20e6)))
    });
}

criterion_group!(
    benches,
    bench_hello,
    bench_spawn,
    bench_context1,
    bench_redis,
    bench_nginx
);
criterion_main!(benches);
