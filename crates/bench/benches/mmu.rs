//! MMU-path microbenchmarks: checked loads/stores, CoPA fault handling,
//! and the in-μprocess allocator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{ImageSpec, Pid};
use ufork_exec::{Ctx, MemOs};

fn setup() -> (UforkOs, Ctx) {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    (os, ctx)
}

fn bench_access(c: &mut Criterion) {
    let (mut os, mut ctx) = setup();
    let buf = os.malloc(&mut ctx, Pid(1), 4096).unwrap();
    let mut g = c.benchmark_group("mmu");
    let data = [0xa5u8; 64];
    g.bench_function("store64B", |b| {
        b.iter(|| os.store(&mut ctx, Pid(1), black_box(&buf), &data).unwrap())
    });
    let mut out = [0u8; 64];
    g.bench_function("load64B", |b| {
        b.iter(|| {
            os.load(&mut ctx, Pid(1), black_box(&buf), &mut out)
                .unwrap()
        })
    });
    g.bench_function("load_cap_untagged", |b| {
        b.iter(|| black_box(os.load_cap(&mut ctx, Pid(1), &buf).unwrap()))
    });
    g.finish();
}

fn bench_copa_fault(c: &mut Criterion) {
    // Repeatedly fork and take the first CoPA fault in the child.
    c.bench_function("mmu/copa_fault_resolve", |b| {
        b.iter_with_setup(
            || {
                let (mut os, mut ctx) = setup();
                let node = os.malloc(&mut ctx, Pid(1), 64).unwrap();
                let slot = os.malloc(&mut ctx, Pid(1), 16).unwrap();
                os.store_cap(&mut ctx, Pid(1), &slot, &node).unwrap();
                os.set_reg(Pid(1), 4, slot).unwrap();
                os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
                (os, ctx)
            },
            |(mut os, mut ctx)| {
                let slot = os.reg(Pid(2), 4).unwrap();
                // Capability load in the child: triggers copy + relocate.
                black_box(os.load_cap(&mut ctx, Pid(2), &slot).unwrap())
            },
        )
    });
}

fn bench_talloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("talloc");
    g.bench_function("malloc_free", |b| {
        let (mut os, mut ctx) = setup();
        b.iter(|| {
            let cap = os.malloc(&mut ctx, Pid(1), black_box(128)).unwrap();
            os.mfree(&mut ctx, Pid(1), &cap).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access, bench_copa_fault, bench_talloc);
criterion_main!(benches);
