//! MMU-path microbenchmarks: checked loads/stores, CoPA fault handling,
//! and the in-μprocess allocator.

use std::hint::black_box;
use ufork::{UforkConfig, UforkOs};
use ufork_abi::{ImageSpec, Pid};
use ufork_exec::{Ctx, MemOs};
use ufork_testkit::bench::{bench, bench_with_setup};

fn setup() -> (UforkOs, Ctx) {
    let mut os = UforkOs::new(UforkConfig {
        phys_mib: 128,
        ..UforkConfig::default()
    });
    let mut ctx = Ctx::new();
    os.spawn(&mut ctx, Pid(1), &ImageSpec::hello_world())
        .unwrap();
    (os, ctx)
}

fn main() {
    let (mut os, mut ctx) = setup();
    let buf = os.malloc(&mut ctx, Pid(1), 4096).unwrap();
    let data = [0xa5u8; 64];
    bench("mmu/store64B", || {
        os.store(&mut ctx, Pid(1), black_box(&buf), &data).unwrap()
    });
    let mut out = [0u8; 64];
    bench("mmu/load64B", || {
        os.load(&mut ctx, Pid(1), black_box(&buf), &mut out)
            .unwrap()
    });
    bench("mmu/load_cap_untagged", || {
        black_box(os.load_cap(&mut ctx, Pid(1), &buf).unwrap())
    });

    // Repeatedly fork and take the first CoPA fault in the child.
    bench_with_setup(
        "mmu/copa_fault_resolve",
        || {
            let (mut os, mut ctx) = setup();
            let node = os.malloc(&mut ctx, Pid(1), 64).unwrap();
            let slot = os.malloc(&mut ctx, Pid(1), 16).unwrap();
            os.store_cap(&mut ctx, Pid(1), &slot, &node).unwrap();
            os.set_reg(Pid(1), 4, slot).unwrap();
            os.fork(&mut ctx, Pid(1), Pid(2)).unwrap();
            (os, ctx)
        },
        |(os, ctx)| {
            let slot = os.reg(Pid(2), 4).unwrap();
            // Capability load in the child: triggers copy + relocate.
            black_box(os.load_cap(ctx, Pid(2), &slot).unwrap())
        },
    );

    let (mut os, mut ctx) = setup();
    bench("talloc/malloc_free", || {
        let cap = os.malloc(&mut ctx, Pid(1), black_box(128)).unwrap();
        os.mfree(&mut ctx, Pid(1), &cap).unwrap();
    });
}
